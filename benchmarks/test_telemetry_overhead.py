"""Enabled-telemetry overhead budget: <5% vs the no-op path.

Runs the same seeded CrowdLearn deployment twice — once with the default
no-op telemetry and once fully instrumented — asserting (a) the outcomes
are byte-identical (instrumentation must never perturb the closed loop)
and (b) the instrumented wall time stays within the 5% overhead budget
the telemetry subsystem promises.

Timing uses interleaved repetitions and takes the minimum per mode, which
discards scheduler noise rather than averaging it in; a small absolute
slack keeps the assertion robust on very short smoke-mode runs where a
single scheduling hiccup exceeds 5% of the total.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import BENCH_SEED, is_fast
from repro.eval.runner import build_crowdlearn, prepare
from repro.telemetry import Telemetry

#: Interleaved repetitions per mode (min is taken).
REPS = 3

#: Absolute slack (seconds) on top of the 5% budget, for sub-second runs.
ABS_SLACK_SECONDS = 0.1


def _run(setup, telemetry):
    system = build_crowdlearn(
        setup, platform_name="tel-overhead", telemetry=telemetry
    )
    stream = setup.make_stream("tel-overhead")
    started = time.perf_counter()
    outcome = system.run(stream)
    return time.perf_counter() - started, outcome


def test_enabled_overhead_under_5_percent(save_artifact):
    # A dedicated (fast-sized) world: overhead is a property of the loop
    # machinery, not of the paper-scale models, and the identical-seed
    # requirement means both modes must share one setup.
    setup = prepare(seed=BENCH_SEED, fast=True)

    off_times, on_times = [], []
    baseline_outcome = enabled_outcome = None
    for _ in range(REPS):
        t_off, baseline_outcome = _run(setup, telemetry=None)
        t_on, enabled_outcome = _run(setup, telemetry=Telemetry())
        off_times.append(t_off)
        on_times.append(t_on)

    # (a) instrumentation never changes the computation.
    assert len(enabled_outcome.cycles) == len(baseline_outcome.cycles)
    for ca, cb in zip(enabled_outcome.cycles, baseline_outcome.cycles):
        np.testing.assert_array_equal(ca.final_labels, cb.final_labels)
        np.testing.assert_array_equal(ca.final_scores, cb.final_scores)
        assert ca.cost_cents == cb.cost_cents

    # (b) the 5% overhead budget.
    t_off, t_on = min(off_times), min(on_times)
    budget = t_off * 1.05 + ABS_SLACK_SECONDS
    save_artifact(
        "telemetry_overhead",
        "Telemetry overhead (identical seeded runs, min of "
        f"{REPS} interleaved reps{', smoke mode' if is_fast() else ''})\n"
        f"no-op path:   {t_off:.3f}s\n"
        f"instrumented: {t_on:.3f}s\n"
        f"overhead:     {100.0 * (t_on - t_off) / t_off:+.2f}%"
        f" (budget 5% + {ABS_SLACK_SECONDS:.1f}s slack)",
    )
    assert t_on <= budget, (
        f"telemetry overhead too high: {t_on:.3f}s instrumented vs "
        f"{t_off:.3f}s no-op ({100.0 * (t_on - t_off) / t_off:.1f}%)"
    )
