"""Figure 5: crowd response time vs incentive across temporal contexts.

Paper shape: delay falls steadily with incentive in the morning/afternoon;
in the evening/midnight all mid-range incentives perform alike, with only
the lowest (slower) and highest (slightly faster) levels standing out.
"""

from repro.eval.experiments import run_fig5
from repro.utils.clock import TemporalContext


def test_fig5_response_time(benchmark, setup_full, save_artifact, full_scale):
    data = benchmark.pedantic(run_fig5, args=(setup_full,), rounds=1, iterations=1)
    save_artifact("fig5_response_time", data.render())
    if not full_scale:
        return

    morning = data.delays[TemporalContext.MORNING]
    afternoon = data.delays[TemporalContext.AFTERNOON]
    evening = data.delays[TemporalContext.EVENING]
    midnight = data.delays[TemporalContext.MIDNIGHT]

    # Daytime: monotone-ish decrease; endpoints must differ by > 2x.
    assert morning[0] > 2 * morning[-1]
    assert afternoon[0] > 2 * afternoon[-1]

    # Night: mid-range levels flat (within 25%), lowest level clearly slower.
    for series in (evening, midnight):
        mid = series[1:-1]
        assert max(mid) < 1.25 * min(mid)
        assert series[0] > 1.5 * min(mid)

    # Daytime mid-range is slower than night mid-range (worker scarcity).
    assert morning[3] > evening[3]
