"""Figures 10 & 11: impact of the crowdsourcing budget.

Paper shape: classification performance is poor at the lowest budget
(1c/task depresses crowd quality), then saturates once the budget passes a
few cents per task; crowd delay likewise improves with budget and then
flattens.
"""

import numpy as np
import pytest

from repro.eval.experiments import run_budget_sweep

_cache = {}


@pytest.fixture(scope="module")
def sweep(setup_full):
    if "sweep" not in _cache:
        _cache["sweep"] = run_budget_sweep(setup_full)
    return _cache["sweep"]


def test_fig10_budget_f1(benchmark, setup_full, save_artifact, sweep, full_scale):
    benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    save_artifact("fig10_budget_f1", sweep.render_fig10())
    if not full_scale:
        return

    f1 = np.array(sweep.f1)
    # The cheapest budget is the weakest configuration.
    assert f1[0] <= min(f1[2:]) + 0.02
    # Performance saturates: the top half of the sweep moves very little
    # (paper: +0.018 F1 from 8 to 40 USD).
    saturated = f1[len(f1) // 2 :]
    assert saturated.max() - saturated.min() < 0.05


def test_fig11_budget_delay(benchmark, save_artifact, sweep, full_scale):
    benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    save_artifact("fig11_budget_delay", sweep.render_fig11())
    if not full_scale:
        return

    delay = np.array(sweep.crowd_delay)
    assert np.isfinite(delay).all()
    # The cheapest budget is clearly the slowest configuration (paper: the
    # 2 USD point sits far above the rest)...
    assert delay[0] > 1.5 * delay[-1]
    # ...delay improves monotonically-ish with budget (each point no worse
    # than 15% above its predecessor)...
    assert all(b < 1.15 * a for a, b in zip(delay, delay[1:]))
    # ...and the top of the sweep saturates.
    saturated = delay[-3:]
    assert saturated.max() < 1.5 * saturated.min()
