"""Ablation benches for the design choices DESIGN.md calls out.

- **QSS**: committee-entropy + ε-greedy selection vs pure-greedy (ε=0) vs
  pure-random (ε=1) query selection.
- **CQC**: gradient boosting with vs without the questionnaire evidence.
- **MIC**: the full calibrator vs disabling each of its three strategies.
- **IPD**: the contextual UCB-ALP bandit vs a context-free ε-greedy bandit.
"""

import dataclasses

import numpy as np

from repro.bandit.budget import BudgetLedger
from repro.bandit.epsilon import EpsilonGreedyBandit
from repro.core.cqc import CrowdQualityControl
from repro.core.ipd import IncentivePolicyDesigner
from repro.eval.reporting import format_table
from repro.eval.runner import build_crowdlearn, scheme_result_from_run
from repro.metrics.classification import macro_f1
from repro.utils.clock import TemporalContext


def crowdlearn_f1(setup, tag, **config_overrides):
    config = dataclasses.replace(setup.config, **config_overrides)
    system = build_crowdlearn(setup, config=config)
    outcome = system.run(setup.make_stream(f"ablation-{tag}"))
    result = scheme_result_from_run("CrowdLearn", outcome)
    return macro_f1(result.y_true, result.y_pred), result


class TestQssAblation:
    def test_ablation_qss(self, benchmark, setup_full, save_artifact, full_scale):
        def run():
            rows = []
            for name, epsilon in [
                ("epsilon-greedy (paper, eps=0.2)", 0.2),
                ("pure greedy (eps=0)", 0.0),
                ("pure random (eps=1)", 1.0),
            ]:
                f1, _ = crowdlearn_f1(
                    setup_full, f"qss-{epsilon}", qss_epsilon=epsilon
                )
                rows.append([name, f1])
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        save_artifact(
            "ablation_qss",
            format_table(["QSS strategy", "F1"], rows, title="Ablation: QSS"),
        )
        if not full_scale:
            return
        values = {name: f1 for name, f1 in rows}
        # Every strategy still produces a working system.
        assert all(v > 0.5 for v in values.values())
        # The paper's mix is competitive with the best pure strategy.
        assert values["epsilon-greedy (paper, eps=0.2)"] >= (
            max(values.values()) - 0.05
        )


class TestCqcAblation:
    def test_ablation_cqc(self, benchmark, setup_full, save_artifact, full_scale):
        pilot_results, pilot_labels = setup_full.pilot.all_labeled_results()
        pilot_labels = np.array(pilot_labels)
        platform = setup_full.make_platform("ablation-cqc")
        rng = setup_full.seeds.get("ablation-cqc")

        # Build an archetype-rich evaluation batch: the committee's most
        # uncertain images plus every deceptive image (which ε-exploration
        # surfaces in deployment) — the questionnaire channel's entire value
        # lies in recovering the deceptive ones.
        entropy = setup_full.base_committee.committee_entropy(setup_full.test_set)
        hard = np.argsort(-entropy)[:40]
        deceptive = np.array(
            [
                i
                for i, meta in enumerate(setup_full.test_set.metadata())
                if meta.is_deceptive
            ],
            dtype=np.int64,
        )
        random_share = rng.choice(len(setup_full.test_set), 20, replace=False)
        chosen = np.concatenate([hard, deceptive, random_share])
        results, truths = [], []
        for index in chosen:
            image = setup_full.test_set[int(index)]
            results.append(
                platform.post_query(image.metadata, 6.0, TemporalContext.EVENING)
            )
            truths.append(int(image.true_label))
        truths = np.array(truths)

        def run():
            rows = []
            for name, use_questionnaire in [
                ("labels + questionnaire (paper)", True),
                ("labels only", False),
            ]:
                cqc = CrowdQualityControl(use_questionnaire=use_questionnaire)
                cqc.fit(pilot_results, pilot_labels, rng=np.random.default_rng(0))
                acc = float(np.mean(cqc.truthful_labels(results) == truths))
                rows.append([name, acc])
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        save_artifact(
            "ablation_cqc",
            format_table(
                ["CQC features", "accuracy"], rows, title="Ablation: CQC"
            ),
        )
        if not full_scale:
            return
        values = {name: acc for name, acc in rows}
        assert values["labels + questionnaire (paper)"] >= (
            values["labels only"]
        )


class TestMicAblation:
    def test_ablation_mic(self, benchmark, setup_full, save_artifact, full_scale):
        def run():
            rows = []
            for name, overrides in [
                ("full MIC (paper)", {}),
                ("no crowd offloading", {"mic_offload": False}),
                ("no expert reweighting", {"mic_reweight": False}),
                ("no model retraining", {"mic_retrain": False}),
            ]:
                f1, _ = crowdlearn_f1(setup_full, f"mic-{name}", **overrides)
                rows.append([name, f1])
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        save_artifact(
            "ablation_mic",
            format_table(["MIC variant", "F1"], rows, title="Ablation: MIC"),
        )
        if not full_scale:
            return
        values = {name: f1 for name, f1 in rows}
        full = values["full MIC (paper)"]
        # Offloading is the load-bearing strategy: removing it must hurt.
        assert full > values["no crowd offloading"]
        # The full calibrator is at least as good as any single ablation.
        assert full >= max(values.values()) - 0.03


class TestIpdAblation:
    def test_ablation_ipd(self, benchmark, setup_full, save_artifact, full_scale):
        config = setup_full.config

        def run_policy(name, policy):
            ledger = BudgetLedger(config.budget_cents)
            ipd = IncentivePolicyDesigner(
                arms=config.incentive_levels,
                ledger=ledger,
                total_queries=max(config.total_queries, 1),
                policy=policy,
                queries_per_context=config.queries_per_context(),
            )
            ipd.warm_start(setup_full.pilot)
            platform = setup_full.make_platform(f"ablation-ipd-{name}")
            stream = setup_full.make_stream(f"ablation-ipd-{name}")
            rng = setup_full.seeds.get(f"ablation-ipd-{name}")
            delays = []
            for cycle in stream:
                dataset = cycle.dataset()
                n = min(config.queries_per_cycle, len(dataset))
                for index in rng.choice(len(dataset), n, replace=False):
                    arm, incentive = ipd.price_query(cycle.context)
                    if not ledger.can_afford(incentive):
                        break
                    result = platform.post_query(
                        dataset[int(index)].metadata,
                        incentive,
                        cycle.context,
                        ledger=ledger,
                    )
                    ipd.observe(cycle.context, arm, result.mean_delay)
                    delays.append(result.mean_delay)
            return float(np.mean(delays))

        def run():
            from repro.bandit.ccmb import UCBALPBandit

            n_contexts = len(TemporalContext.ordered())
            arms = config.incentive_levels
            contextual = UCBALPBandit(
                n_contexts, arms, rng=setup_full.seeds.get("abl-ipd-ctx")
            )
            context_free = EpsilonGreedyBandit(
                n_contexts,
                arms,
                setup_full.seeds.get("abl-ipd-free"),
                epsilon=0.1,
                contextual=False,
            )
            return [
                ["contextual UCB-ALP (paper)", run_policy("ctx", contextual)],
                ["context-free bandit", run_policy("free", context_free)],
            ]

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        save_artifact(
            "ablation_ipd",
            format_table(
                ["IPD policy", "mean crowd delay (s)"],
                rows,
                title="Ablation: IPD",
                float_format="{:.1f}",
            ),
        )
        if not full_scale:
            return
        values = {name: delay for name, delay in rows}
        # Context awareness must pay: the contextual bandit is faster.
        assert values["contextual UCB-ALP (paper)"] < (
            values["context-free bandit"]
        )
