"""Figure 9: size of the query set vs classification performance.

Paper shape: CrowdLearn's F1 grows with the query fraction (human
intelligence pays off), while Hybrid-AL and Hybrid-Para stay roughly flat
because they never fix the AI's innate failures; at 0% CrowdLearn degrades
to the AI-only committee; at 100% it still beats the other hybrids thanks
to CQC's aggregation.
"""

from repro.eval.experiments import run_fig9


def test_fig9_query_size(benchmark, setup_full, save_artifact, full_scale):
    data = benchmark.pedantic(run_fig9, args=(setup_full,), rounds=1, iterations=1)
    save_artifact("fig9_query_size", data.render())
    if not full_scale:
        return

    crowdlearn = data.f1["CrowdLearn"]
    al = data.f1["Hybrid-AL"]
    para = data.f1["Hybrid-Para"]

    # CrowdLearn improves substantially from 0% to 100% queries.
    cl_gain = crowdlearn[-1] - crowdlearn[0]
    assert cl_gain > 0.05
    # The other hybrids gain far less across the sweep (near-flat curves).
    assert cl_gain > 1.4 * (al[-1] - al[0])
    assert cl_gain > 1.4 * (para[-1] - para[0])
    # At full query size, CrowdLearn beats both hybrids (CQC > voting).
    assert crowdlearn[-1] > al[-1]
    assert crowdlearn[-1] > para[-1]
    # The gain over the hybrids widens as the query set grows.
    start_gap = crowdlearn[0] - max(al[0], para[0])
    end_gap = crowdlearn[-1] - max(al[-1], para[-1])
    assert end_gap > start_gap
