"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on the
full-scale deployment (960 images, 40 cycles) and saves the rendered artifact
under ``benchmarks/results/``.  Set ``REPRO_FAST=1`` to smoke-run the whole
harness on the miniature deployment instead (useful in CI).

The expensive shared world — dataset, trained committee, pilot study — is
built once per session.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval.runner import prepare

RESULTS_DIR = Path(__file__).parent / "results"

#: Root seed for all recorded benchmark numbers (EXPERIMENTS.md uses it too).
BENCH_SEED = 1


def is_fast() -> bool:
    """Whether the harness runs in smoke mode."""
    return os.environ.get("REPRO_FAST", "") == "1"


@pytest.fixture(scope="session")
def setup_full():
    """The shared full-scale evaluation world (or fast world in smoke mode)."""
    return prepare(seed=BENCH_SEED, fast=is_fast())


@pytest.fixture(scope="session")
def full_scale() -> bool:
    """True when paper-shape assertions should be enforced.

    In ``REPRO_FAST=1`` smoke mode the miniature models are too noisy to
    rank, so benchmarks only check structure, not shapes.
    """
    return not is_fast()


@pytest.fixture(scope="session")
def save_artifact():
    """Persist a rendered table/figure under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save
