"""BENCH_cycle: per-stage wall time of the closed loop + cache A/B.

Runs :func:`repro.eval.bench.run_bench` on the seeded deployment and saves
the JSON artifact CI archives (``benchmarks/results/BENCH_cycle.json``).
Wall-clock numbers are machine-dependent, so assertions cover structure
and the cache's ordering guarantees only: every closed-loop stage shows up
in the span table, the loop serves committee votes from the shared
prediction cache, and the cached vote path is never slower than computing
votes from scratch (it skips the entire feature-encode + forward pass, so
even noisy CI machines clear this by orders of magnitude).
"""

from __future__ import annotations

from conftest import BENCH_SEED, RESULTS_DIR, is_fast
from repro.eval.bench import run_bench, write_bench

#: Stages every cycle must pass through (subset of the span table).
EXPECTED_STAGES = ("cycle", "cycle.committee", "cycle.qss", "cycle.cqc")


def test_bench_cycle_artifact():
    report = run_bench(seed=BENCH_SEED, fast=is_fast(), repeats=3)
    path = write_bench(report, RESULTS_DIR / "BENCH_cycle.json")
    print(f"\nwrote {path}")

    loop = report["loop"]
    assert loop["cycles"] > 0
    for stage in EXPECTED_STAGES:
        assert stage in loop["stages"], sorted(loop["stages"])
        assert loop["stages"][stage]["count"] == loop["cycles"]

    # The loop must actually exercise the shared cache...
    assert loop["cache"]["prediction_hits"] > 0, loop["cache"]
    assert loop["cache"]["feature_hits"] > 0, loop["cache"]

    # ...and serving cached votes must never lose to recomputing them.
    vote = report["committee_vote"]
    assert vote["cached_best_seconds"] <= vote["uncached_best_seconds"], vote
    assert vote["cache"]["prediction_hits"] >= vote["repeats"], vote["cache"]
