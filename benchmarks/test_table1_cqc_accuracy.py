"""Table I: aggregated label accuracy — CQC vs Voting / TD-EM / Filtering.

Paper shape: CQC wins in every temporal context, beating the best
alternative aggregator by ~5 points overall (0.935 vs 0.8775) thanks to the
questionnaire evidence channel.
"""

from repro.eval.experiments import run_table1


def test_table1_cqc_accuracy(benchmark, setup_full, save_artifact, full_scale):
    data = benchmark.pedantic(
        run_table1, args=(setup_full,), rounds=1, iterations=1
    )
    save_artifact("table1_cqc_accuracy", data.render())
    if not full_scale:
        return

    overall = {name: data.overall(name) for name in data.accuracy}
    best_alternative = max(
        v for name, v in overall.items() if name != "CQC"
    )
    # CQC beats every alternative aggregator overall.
    assert overall["CQC"] > best_alternative
    # ... by a real margin (paper: +5.75 points; accept anything >= 2).
    assert overall["CQC"] - best_alternative >= 0.02
    # All aggregators stay in a plausible crowd-accuracy band.
    for name, value in overall.items():
        assert 0.6 <= value <= 1.0, (name, value)
