"""Figure 8: crowd delay per temporal context — IPD vs fixed vs random.

Paper shape: the IPD bandit achieves the lowest delay with the least
variation across contexts; random incentives are the worst during the day;
all policies converge at night where delay is incentive-insensitive.
"""

import numpy as np

from repro.eval.experiments import run_fig8
from repro.utils.clock import TemporalContext


def test_fig8_context_delay(benchmark, setup_full, save_artifact, full_scale):
    data = benchmark.pedantic(run_fig8, args=(setup_full,), rounds=1, iterations=1)
    save_artifact("fig8_context_delay", data.render())
    if not full_scale:
        return

    contexts = TemporalContext.ordered()
    ipd = np.array([data.delays["CrowdLearn (IPD)"][c] for c in contexts])
    fixed = np.array([data.delays["Fixed"][c] for c in contexts])
    random_ = np.array([data.delays["Random"][c] for c in contexts])

    # IPD has the lowest mean delay.
    assert ipd.mean() < fixed.mean()
    assert ipd.mean() < random_.mean()

    # ... and the least variation across contexts.
    assert ipd.std() < fixed.std()
    assert ipd.std() < random_.std()

    # Random is the worst policy during the day, where incentives matter.
    day = slice(0, 2)  # morning, afternoon
    assert random_[day].mean() > fixed[day].mean() > ipd[day].mean()
