"""Chaos benchmark: graceful degradation under injected platform faults.

Expected shape: the resilient closed loop completes every sensing cycle at
every fault intensity and retains most of its fault-free F1 at the moderate
intensity (20% abandonment, spam/adversarial workers, one outage window),
while the naive (pre-resilience) loop is truncated by the first unhandled
fault.  Under a full-deployment platform blackout the resilient system
degrades to committee-only labels — finishing the run with zero crowd spend
and an F1 in the AI-only Ensemble's ballpark — instead of crashing.
"""

from repro.crowd.faults import FaultInjector, FaultPlan
from repro.eval.baselines import EnsembleScheme
from repro.eval.experiments import run_chaos
from repro.eval.runner import build_crowdlearn
from repro.metrics.classification import macro_f1


def test_chaos_degradation_curve(benchmark, setup_full, save_artifact, full_scale):
    data = benchmark.pedantic(
        run_chaos, args=(setup_full,), rounds=1, iterations=1
    )
    save_artifact("chaos_degradation", data.render())

    n_cycles = setup_full.config.n_cycles
    # The resilient loop completes the whole deployment at every intensity.
    assert all(c == n_cycles for c in data.cycles_completed["CrowdLearn"])
    # No faults at intensity zero; faults actually fire at the top intensity.
    assert data.fault_events[0] == 0
    assert data.fault_events[-1] > 0
    # The naive loop is truncated by the outage window.
    assert data.cycles_completed["CrowdLearn-naive"][-1] < n_cycles
    # The resilient run logged interventions (retries or drops) at the top.
    top = data.resilience[-1]
    assert top["retries"] + top["dropped_queries"] + top["fallbacks"] > 0
    if not full_scale:
        return

    # Moderate faults cost the resilient loop at most 10% of fault-free F1.
    fault_free = data.f1["CrowdLearn"][0]
    assert data.f1["CrowdLearn"][-1] >= 0.9 * fault_free
    # Resilience pays: more of the deployment survives than under naive.
    assert (
        data.cycles_completed["CrowdLearn"][-1]
        > data.cycles_completed["CrowdLearn-naive"][-1]
    )


def test_chaos_total_blackout(setup_full, save_artifact, full_scale):
    plan = FaultPlan(outage_windows=((0, 10**9),))
    injector = FaultInjector(plan, rng=setup_full.seeds.get("blackout-faults"))
    system = build_crowdlearn(
        setup_full, faults=injector, platform_name="blackout"
    )
    outcome = system.run(setup_full.make_stream("blackout"))

    ensemble = EnsembleScheme(setup_full.base_committee.experts, setup_full.train_set)
    ensemble_result = ensemble.run(setup_full.make_stream("blackout-ensemble"))
    ensemble_f1 = macro_f1(ensemble_result.y_true, ensemble_result.y_pred)
    blackout_f1 = macro_f1(outcome.y_true(), outcome.y_pred())

    totals = outcome.resilience_totals()
    save_artifact(
        "chaos_blackout",
        "Chaos: full-deployment platform blackout\n"
        f"cycles completed : {len(outcome.cycles)}/{setup_full.config.n_cycles}\n"
        f"macro-F1         : {blackout_f1:.3f} (Ensemble {ensemble_f1:.3f})\n"
        f"crowd spend      : {system.ledger.spent:.2f} cents\n"
        f"queries dropped  : {totals.dropped_queries}\n"
        f"outages hit      : {totals.outages_hit}",
    )

    # The run survives a 100% outage: every cycle completes, nothing is
    # charged, every query is dropped back to the AI.
    assert len(outcome.cycles) == setup_full.config.n_cycles
    assert system.ledger.spent == 0.0
    assert totals.dropped_queries > 0
    assert not any(c.query_indices.size for c in outcome.cycles)
    if not full_scale:
        return

    # Committee-only labels stay in the AI-only Ensemble's ballpark
    # (matching it up to noise) — degraded, not broken.
    assert blackout_f1 >= ensemble_f1 - 0.03
