"""Table II + Figure 7 + Table III: the headline scheme comparison.

Paper shapes:

- Table II — CrowdLearn wins on every metric; Hybrid-AL is the best
  baseline; BoVW is the weakest expert; DDM beats VGG16; the ensemble
  beats its members.
- Figure 7 — CrowdLearn's macro-average ROC dominates (highest AUC).
- Table III — crowd delay dominates the total for hybrid schemes, and
  CrowdLearn's IPD cuts it well below the fixed-incentive hybrids
  (paper: 343s vs 528-589s, a ~35% reduction).
"""

import pytest

from repro.eval.experiments import run_table2_suite
from repro.eval.experiments.table2 import SCHEME_ORDER

pytestmark = pytest.mark.usefixtures("setup_full")

_suite_cache = {}


@pytest.fixture(scope="module")
def suite(setup_full):
    if "suite" not in _suite_cache:
        _suite_cache["suite"] = run_table2_suite(setup_full)
    return _suite_cache["suite"]


def test_table2_classification(benchmark, setup_full, save_artifact, suite, full_scale):
    benchmark.pedantic(lambda: suite, rounds=1, iterations=1)
    save_artifact("table2_classification", suite.table2.render())
    if not full_scale:
        return

    acc = {name: suite.table2.reports[name].accuracy for name in SCHEME_ORDER}
    f1 = {name: suite.table2.reports[name].f1 for name in SCHEME_ORDER}

    # CrowdLearn wins outright.
    for name in SCHEME_ORDER[1:]:
        assert acc["CrowdLearn"] > acc[name], name
        assert f1["CrowdLearn"] > f1[name], name
    # ... by a real margin over the best baseline (paper: +5.3 F1 points).
    best_baseline_f1 = max(v for k, v in f1.items() if k != "CrowdLearn")
    assert f1["CrowdLearn"] - best_baseline_f1 >= 0.03
    # BoVW is the weakest expert; DDM the strongest AI-only single model.
    assert acc["BoVW"] == min(acc.values())
    assert acc["DDM"] > acc["BoVW"]


def test_fig7_roc(benchmark, save_artifact, suite, full_scale):
    benchmark.pedantic(lambda: suite.fig7, rounds=1, iterations=1)
    save_artifact("fig7_roc", suite.fig7.render())
    if not full_scale:
        return
    auc = {name: curve.auc for name, curve in suite.fig7.curves.items()}
    # CrowdLearn's macro-ROC dominates in AUC (Figure 7's visual claim).
    assert auc["CrowdLearn"] == max(auc.values())
    assert all(0.5 < v <= 1.0 for v in auc.values())


def test_table3_delay(benchmark, save_artifact, suite, full_scale):
    benchmark.pedantic(lambda: suite.table3, rounds=1, iterations=1)
    save_artifact("table3_delay", suite.table3.render())
    if not full_scale:
        return
    algo = suite.table3.algorithm_delay
    crowd = suite.table3.crowd_delay

    # Algorithm delays preserve the paper's ordering.
    assert algo["BoVW"] < algo["VGG16"] < algo["DDM"]
    assert algo["DDM"] < algo["CrowdLearn"] < algo["Ensemble"] < algo["Hybrid-Para"]

    # Crowd delay dominates the life cycle for every hybrid scheme.
    for name in ("CrowdLearn", "Hybrid-Para", "Hybrid-AL"):
        assert crowd[name] is not None
        assert crowd[name] > algo[name]
    # AI-only schemes have no crowd delay.
    for name in ("VGG16", "BoVW", "DDM", "Ensemble"):
        assert crowd[name] is None

    # CrowdLearn's IPD clearly undercuts the fixed-incentive hybrids
    # (paper: ~35% lower; accept anything >= 15%).
    fixed_mean = (crowd["Hybrid-Para"] + crowd["Hybrid-AL"]) / 2
    assert crowd["CrowdLearn"] < 0.85 * fixed_mean
