"""Figure 6: crowd label quality vs incentive.

Paper shape: very low incentives (1-2c) depress quality; above ~2c quality
plateaus around the workers' intrinsic ~80% accuracy (Wilcoxon tests between
adjacent mid-range levels are non-significant).
"""

import numpy as np
from scipy import stats

from repro.eval.experiments import run_fig6


def test_fig6_label_quality(benchmark, setup_full, save_artifact, full_scale):
    data = benchmark.pedantic(run_fig6, args=(setup_full,), rounds=1, iterations=1)
    save_artifact("fig6_label_quality", data.render())
    if not full_scale:
        return

    quality = data.quality
    # 1 cent is the clear low point.
    assert quality[0] < min(quality[2:]) - 0.02
    # The plateau: mid-range levels within a few points of each other.
    plateau = quality[2:]
    assert max(plateau) - min(plateau) < 0.08
    # Paying 20c buys almost nothing over 4c.
    assert quality[-1] - quality[2] < 0.08


def test_fig6_wilcoxon_nonsignificance(benchmark, setup_full, save_artifact, full_scale):
    """The paper's statistical claim: adjacent mid-range levels do not
    differ significantly in per-query label accuracy."""
    pilot = benchmark.pedantic(lambda: setup_full.pilot, rounds=1, iterations=1)
    levels = pilot.incentive_levels

    def per_query_accuracy(level):
        values = []
        for context_level, cell in pilot.cells.items():
            if context_level[1] != level:
                continue
            for result, truth in zip(cell.results, cell.true_labels):
                labels = result.labels()
                values.append(float(np.mean(labels == truth)))
        return np.array(values)

    lines = ["Wilcoxon rank-sum p-values between adjacent incentive levels:"]
    mid_pairs = [(4.0, 6.0), (6.0, 8.0), (8.0, 10.0)]
    for low, high in mid_pairs:
        if low not in levels or high not in levels:
            continue
        a, b = per_query_accuracy(low), per_query_accuracy(high)
        p_value = stats.ranksums(a, b).pvalue
        lines.append(f"  {low:.0f}c vs {high:.0f}c: p = {p_value:.3f}")
        if full_scale:
            assert p_value > 0.05, f"{low}c vs {high}c unexpectedly significant"
    save_artifact("fig6_wilcoxon", "\n".join(lines))
