"""CrowdLearn reproduction: a crowd-AI hybrid system for deep learning-based
disaster damage assessment (Zhang et al., ICDCS 2019).

Public entry points:

- :class:`repro.core.CrowdLearnSystem` — the assembled closed-loop system;
- :func:`repro.data.build_dataset` / :func:`repro.data.train_test_split` —
  the synthetic Ecuador-earthquake stand-in dataset;
- :class:`repro.crowd.CrowdsourcingPlatform` — the simulated MTurk;
- :mod:`repro.eval` — baselines and the per-table/figure experiment drivers.
"""

from repro.core import CrowdLearnConfig, CrowdLearnSystem
from repro.data import build_dataset, train_test_split

__version__ = "1.0.0"

__all__ = [
    "CrowdLearnConfig",
    "CrowdLearnSystem",
    "build_dataset",
    "train_test_split",
    "__version__",
]
