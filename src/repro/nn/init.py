"""Weight initializers for the numpy neural-network substrate."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["glorot_uniform", "he_normal", "zeros", "Initializer"]

#: An initializer maps (shape, rng) to a float64 array.
Initializer = Callable[[Sequence[int], np.random.Generator], np.ndarray]


def _fans(shape: Sequence[int]) -> tuple[int, int]:
    """Fan-in/fan-out for dense ((in, out)) and conv ((out, in, kh, kw)) shapes."""
    if len(shape) == 2:
        return int(shape[0]), int(shape[1])
    if len(shape) == 4:
        receptive = int(np.prod(shape[2:]))
        return int(shape[1]) * receptive, int(shape[0]) * receptive
    size = int(np.prod(shape))
    return size, size


def glorot_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization, suited to tanh/softmax layers."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def he_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He normal initialization, suited to ReLU layers."""
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(np.float64)


def zeros(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """All-zeros initialization (biases)."""
    del rng  # deterministic; signature kept uniform with other initializers
    return np.zeros(shape, dtype=np.float64)
