"""Loss functions with fused gradients for the numpy NN substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["Loss", "SoftmaxCrossEntropy", "MeanSquaredError", "softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class Loss:
    """Base class: ``forward`` returns the scalar loss, ``backward`` dL/dlogits."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        raise NotImplementedError


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross-entropy fused for a stable, simple gradient.

    Accepts integer class labels or one-hot/dense target distributions, so it
    also supports the soft crowd labels produced by CQC during retraining.
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(
                f"label_smoothing must be in [0, 1), got {label_smoothing}"
            )
        self.label_smoothing = label_smoothing
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def _dense_targets(self, targets: np.ndarray, n_classes: int) -> np.ndarray:
        targets = np.asarray(targets)
        if targets.ndim == 1:
            if targets.min(initial=0) < 0 or targets.max(initial=0) >= n_classes:
                raise ValueError("integer targets out of range for logits")
            dense = np.zeros((targets.size, n_classes), dtype=np.float64)
            dense[np.arange(targets.size), targets.astype(np.int64)] = 1.0
        elif targets.ndim == 2 and targets.shape[1] == n_classes:
            dense = targets.astype(np.float64)
            sums = dense.sum(axis=1, keepdims=True)
            if np.any(sums <= 0):
                raise ValueError("target distributions must have positive mass")
            dense = dense / sums
        else:
            raise ValueError(
                f"targets must be (n,) ints or (n, {n_classes}) distributions, "
                f"got shape {targets.shape}"
            )
        if self.label_smoothing > 0.0:
            smooth = self.label_smoothing
            dense = dense * (1.0 - smooth) + smooth / n_classes
        return dense

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        if predictions.ndim != 2:
            raise ValueError(f"logits must be 2-D, got shape {predictions.shape}")
        probs = softmax(predictions)
        dense = self._dense_targets(targets, predictions.shape[1])
        self._probs = probs
        self._targets = dense
        log_probs = np.log(np.clip(probs, 1e-12, None))
        return float(-(dense * log_probs).sum(axis=1).mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        batch = self._probs.shape[0]
        return (self._probs - self._targets) / batch


class MeanSquaredError(Loss):
    """Mean squared error over all elements."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: predictions {predictions.shape} "
                f"vs targets {targets.shape}"
            )
        self._diff = predictions - targets
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size
