"""Minibatch training loop for :class:`~repro.nn.model.Sequential` models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.nn.losses import Loss
from repro.nn.model import Sequential
from repro.nn.optim import Optimizer
from repro.telemetry.runtime import Telemetry, get_telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports nn)
    from repro.core.guards import DivergenceSentinel

__all__ = ["TrainingHistory", "Trainer"]


@dataclass
class TrainingHistory:
    """Per-epoch loss/accuracy traces collected during training."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.train_loss)


class Trainer:
    """Trains a model with shuffled minibatches and optional validation.

    Parameters
    ----------
    model, loss, optimizer:
        The usual trio.  The optimizer must have been constructed over the
        model's own ``params()``/``grads()`` lists.
    rng:
        Source of shuffling randomness (training is deterministic given it).
    telemetry:
        Optional :class:`~repro.telemetry.runtime.Telemetry`; ``None``
        resolves the process default, so ``repro trace`` runs see training
        spans from trainers constructed deep inside the models.
    sentinel:
        Optional :class:`~repro.core.guards.DivergenceSentinel`; ``None``
        resolves the process default (installed by
        :class:`~repro.core.guards.ModelGuard` around guarded retrains,
        absent otherwise).  With a sentinel active, an epoch whose loss
        goes non-finite or whose update norm explodes is rolled back to
        its pre-epoch weights and retried once at a reduced learning rate
        before the fit gives up cleanly.
    """

    def __init__(
        self,
        model: Sequential,
        loss: Loss,
        optimizer: Optimizer,
        rng: np.random.Generator,
        batch_size: int = 32,
        telemetry: Telemetry | None = None,
        sentinel: "DivergenceSentinel | None" = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.model = model
        self.loss = loss
        self.optimizer = optimizer
        self.rng = rng
        self.batch_size = batch_size
        self.telemetry = telemetry
        self.sentinel = sentinel

    def train_epoch(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        """One pass over the data; returns (mean loss, accuracy)."""
        n = x.shape[0]
        if n == 0:
            raise ValueError("cannot train on an empty dataset")
        order = self.rng.permutation(n)
        total_loss = 0.0
        correct = 0
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            xb, yb = x[idx], y[idx]
            logits = self.model.forward(xb, training=True)
            batch_loss = self.loss.forward(logits, yb)
            self.model.zero_grad()
            self.model.backward(self.loss.backward())
            self.optimizer.step()
            total_loss += batch_loss * len(idx)
            predicted = np.argmax(logits, axis=-1)
            correct += int(np.sum(predicted == self._hard_labels(yb)))
        return total_loss / n, correct / n

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        """(mean loss, accuracy) on held-out data, without updating weights."""
        n = x.shape[0]
        if n == 0:
            raise ValueError("cannot evaluate on an empty dataset")
        total_loss = 0.0
        correct = 0
        for start in range(0, n, self.batch_size):
            xb = x[start : start + self.batch_size]
            yb = y[start : start + self.batch_size]
            logits = self.model.forward(xb, training=False)
            total_loss += self.loss.forward(logits, yb) * len(xb)
            predicted = np.argmax(logits, axis=-1)
            correct += int(np.sum(predicted == self._hard_labels(yb)))
        return total_loss / n, correct / n

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
        patience: int | None = None,
    ) -> TrainingHistory:
        """Train for up to ``epochs`` epochs with optional early stopping.

        Early stopping triggers when validation loss has not improved for
        ``patience`` consecutive epochs (requires validation data); the
        model is then restored to its best-validation snapshot, so stopping
        early can never return strictly worse weights than the best epoch
        seen.  A fit that runs to its epoch budget keeps the final weights,
        matching plain (non-early-stopped) training.

        When a divergence sentinel is active (explicit or installed as the
        process default), each epoch is additionally guarded: a divergent
        epoch is rolled back and retried once at a reduced learning rate,
        and a second divergence ends the fit with the last good weights in
        place (the history then holds only the completed good epochs).
        """
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        has_val = x_val is not None and y_val is not None
        if patience is not None and not has_val:
            raise ValueError("early stopping requires validation data")
        tel = self.telemetry if self.telemetry is not None else get_telemetry()
        sentinel = self.sentinel
        if sentinel is None:
            from repro.core.guards import get_divergence_sentinel

            sentinel = get_divergence_sentinel()
        if sentinel is not None and not sentinel.enabled:
            sentinel = None
        history = TrainingHistory()
        best_val = np.inf
        best_state: list[dict[str, np.ndarray]] | None = None
        stale = 0
        with tel.span("trainer.fit", epochs=epochs, samples=len(x)) as span:
            for _ in range(epochs):
                with tel.span("trainer.epoch"):
                    if sentinel is None:
                        epoch_result = self.train_epoch(x, y)
                    else:
                        epoch_result = self._guarded_epoch(x, y, sentinel, tel)
                if epoch_result is None:
                    break  # sentinel gave up: keep the last good weights
                train_loss, train_acc = epoch_result
                history.train_loss.append(train_loss)
                history.train_accuracy.append(train_acc)
                if has_val:
                    val_loss, val_acc = self.evaluate(x_val, y_val)
                    history.val_loss.append(val_loss)
                    history.val_accuracy.append(val_acc)
                    if patience is not None:
                        if val_loss < best_val - 1e-9:
                            best_val = val_loss
                            stale = 0
                            best_state = [
                                {k: v.copy() for k, v in layer_state.items()}
                                for layer_state in self.model.state()
                            ]
                        else:
                            stale += 1
                            if stale >= patience:
                                if best_state is not None:
                                    self.model.load_state(best_state)
                                break
            if tel.enabled:
                span.set(epochs_run=history.epochs)
                tel.counter(
                    "trainer_epochs_total", help="training epochs executed"
                ).inc(history.epochs)
        return history

    def _guarded_epoch(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sentinel: "DivergenceSentinel",
        tel: Telemetry,
    ) -> tuple[float, float] | None:
        """One epoch under the divergence sentinel.

        Returns the epoch's ``(loss, accuracy)``, or ``None`` when both the
        epoch and its reduced-learning-rate retry diverged; the model is
        left at its pre-epoch weights in that case.  Optimizer moments are
        deliberately *not* restored — if they were poisoned (e.g. by an inf
        gradient), the retry fails too and the fit stops cleanly, leaving
        recovery to the expert-level snapshot rollback one layer up.
        """
        saved = [
            {key: value.copy() for key, value in layer_state.items()}
            for layer_state in self.model.state()
        ]
        params_before = [p.copy() for p in self.model.params()]
        train_loss, train_acc = self.train_epoch(x, y)
        if not sentinel.diverged(train_loss, params_before, self.model.params()):
            return train_loss, train_acc
        sentinel.aborts += 1
        if tel.enabled:
            tel.counter(
                "trainer_sentinel_aborts_total",
                help="epochs aborted by the divergence sentinel",
            ).inc()
        self.model.load_state(saved)
        original_lr = self.optimizer.lr
        self.optimizer.lr = original_lr * sentinel.lr_backoff_factor
        try:
            sentinel.retries += 1
            train_loss, train_acc = self.train_epoch(x, y)
            if not sentinel.diverged(
                train_loss, params_before, self.model.params()
            ):
                return train_loss, train_acc
            sentinel.failures += 1
            if tel.enabled:
                tel.counter(
                    "trainer_sentinel_failures_total",
                    help="fits abandoned after a failed sentinel retry",
                ).inc()
            self.model.load_state(saved)
            return None
        finally:
            self.optimizer.lr = original_lr

    @staticmethod
    def _hard_labels(y: np.ndarray) -> np.ndarray:
        """Integer labels from either int labels or target distributions."""
        y = np.asarray(y)
        if y.ndim == 2:
            return np.argmax(y, axis=-1)
        return y.astype(np.int64)
