"""Optimizers that update parameter arrays in place."""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over parallel (params, grads) lists."""

    def __init__(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads must be parallel lists")
        for p, g in zip(params, grads):
            if p.shape != g.shape:
                raise ValueError(
                    f"param/grad shape mismatch: {p.shape} vs {g.shape}"
                )
        self.params = params
        self.grads = grads

    def step(self) -> None:
        """Apply one update using the currently accumulated gradients."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Reset all gradients to zero."""
        for g in self.grads:
            g[...] = 0.0


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, grads)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p) for p in params]

    def step(self) -> None:
        for p, g, v in zip(self.params, self.grads, self._velocity):
            update = g + self.weight_decay * p
            if self.momentum > 0:
                v *= self.momentum
                v += update
                update = v
            p -= self.lr * update


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, grads)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(self.params, self.grads, self._m, self._v):
            grad = g + self.weight_decay * p
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad**2
            m_hat = m / bc1
            v_hat = v / bc2
            p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
