"""From-scratch numpy deep-learning substrate.

Provides the layers, losses, optimizers and training loop the DDA expert
models (:mod:`repro.models`) are built on.  No autograd: every layer carries
its own hand-written backward pass, verified against numerical gradients in
the test suite.
"""

from repro.nn.init import glorot_uniform, he_normal, zeros
from repro.nn.layers import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAveragePool,
    Layer,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    col2im,
    im2col,
)
from repro.nn.losses import Loss, MeanSquaredError, SoftmaxCrossEntropy, softmax
from repro.nn.model import Sequential
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.trainer import Trainer, TrainingHistory

__all__ = [
    "glorot_uniform",
    "he_normal",
    "zeros",
    "AvgPool2D",
    "BatchNorm",
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "GlobalAveragePool",
    "Layer",
    "MaxPool2D",
    "ReLU",
    "Sigmoid",
    "Softmax",
    "Tanh",
    "col2im",
    "im2col",
    "Loss",
    "MeanSquaredError",
    "SoftmaxCrossEntropy",
    "softmax",
    "Sequential",
    "SGD",
    "Adam",
    "Optimizer",
    "Trainer",
    "TrainingHistory",
]
