"""Neural-network layers with explicit forward/backward passes.

All layers operate on float64 numpy arrays.  Convolutions use NCHW layout
(batch, channels, height, width) and are implemented with im2col so the heavy
lifting is a single matrix multiply.  Each layer exposes:

- ``forward(x, training)`` — compute outputs, caching what backward needs;
- ``backward(grad)`` — gradient w.r.t. inputs, accumulating parameter grads;
- ``params()`` / ``grads()`` — parallel lists consumed by the optimizers.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import Initializer, glorot_uniform, he_normal, zeros

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAveragePool",
    "Sigmoid",
    "Tanh",
    "ReLU",
    "Flatten",
    "Dropout",
    "BatchNorm",
    "Softmax",
    "FusedConvReLU",
    "FusedConvReLUPool",
    "fuse_layers",
    "unfuse_layers",
    "im2col",
    "col2im",
]


class Layer:
    """Base class for all layers; parameter-free layers inherit the no-ops."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> list[np.ndarray]:
        """Trainable parameter arrays (mutated in place by optimizers)."""
        return []

    def grads(self) -> list[np.ndarray]:
        """Gradient arrays parallel to :meth:`params`."""
        return []

    def zero_grad(self) -> None:
        """Reset accumulated gradients to zero."""
        for g in self.grads():
            g[...] = 0.0

    def state(self) -> dict[str, np.ndarray]:
        """Serializable layer state (parameters + running statistics)."""
        return {f"param{i}": p for i, p in enumerate(self.params())}

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state`."""
        for i, p in enumerate(self.params()):
            p[...] = state[f"param{i}"]

    def reseed(self, rng: np.random.Generator) -> None:
        """Point any internal randomness at ``rng`` (no-op by default)."""
        return None


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        weight_init: Initializer = glorot_uniform,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Dense layer dimensions must be positive")
        self.weight = weight_init((in_features, out_features), rng)
        self.bias = zeros((out_features,), rng)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.weight.shape[0]:
            raise ValueError(
                f"Dense expected (batch, {self.weight.shape[0]}), got {x.shape}"
            )
        self._input = x if training else None
        return x @ self.weight + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before a training forward pass")
        self.grad_weight += self._input.T @ grad
        self.grad_bias += grad.sum(axis=0)
        return grad @ self.weight.T

    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


def im2col(
    x: np.ndarray, kernel: int, stride: int, pad: int
) -> tuple[np.ndarray, int, int]:
    """Unfold NCHW input into (N*OH*OW, C*kernel*kernel) patch rows.

    Returns the patch matrix along with the output spatial dims (OH, OW).
    """
    n, c, h, w = x.shape
    out_h = (h + 2 * pad - kernel) // stride + 1
    out_w = (w + 2 * pad - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {kernel} with stride {stride}, pad {pad} does not fit "
            f"input of spatial size {h}x{w}"
        )
    padded = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    cols = np.empty((n, c, kernel, kernel, out_h, out_w), dtype=x.dtype)
    for ky in range(kernel):
        y_end = ky + stride * out_h
        for kx in range(kernel):
            x_end = kx + stride * out_w
            cols[:, :, ky, kx, :, :] = padded[:, :, ky:y_end:stride, kx:x_end:stride]
    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)
    return cols, out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold patch rows back into an NCHW gradient (inverse of :func:`im2col`)."""
    n, c, h, w = x_shape
    out_h = (h + 2 * pad - kernel) // stride + 1
    out_w = (w + 2 * pad - kernel) // stride + 1
    cols = cols.reshape(n, out_h, out_w, c, kernel, kernel).transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for ky in range(kernel):
        y_end = ky + stride * out_h
        for kx in range(kernel):
            x_end = kx + stride * out_w
            padded[:, :, ky:y_end:stride, kx:x_end:stride] += cols[:, :, ky, kx, :, :]
    if pad == 0:
        return padded
    return padded[:, :, pad:-pad, pad:-pad]


class Conv2D(Layer):
    """2-D convolution (cross-correlation) over NCHW inputs via im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        rng: np.random.Generator,
        stride: int = 1,
        pad: int = 0,
        weight_init: Initializer = he_normal,
    ) -> None:
        if min(in_channels, out_channels, kernel, stride) <= 0 or pad < 0:
            raise ValueError("Conv2D hyperparameters must be positive (pad >= 0)")
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self.weight = weight_init((out_channels, in_channels, kernel, kernel), rng)
        self.bias = zeros((out_channels,), rng)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.weight.shape[1]:
            raise ValueError(
                f"Conv2D expected (batch, {self.weight.shape[1]}, H, W), "
                f"got {x.shape}"
            )
        cols, out_h, out_w = im2col(x, self.kernel, self.stride, self.pad)
        out_channels = self.weight.shape[0]
        flat_w = self.weight.reshape(out_channels, -1)
        out = cols @ flat_w.T + self.bias
        out = out.reshape(x.shape[0], out_h, out_w, out_channels)
        if training:
            self._cols = cols
            self._x_shape = x.shape
        else:
            self._cols = None
            self._x_shape = None
        return out.transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        out_channels = self.weight.shape[0]
        grad_flat = grad.transpose(0, 2, 3, 1).reshape(-1, out_channels)
        self.grad_weight += (grad_flat.T @ self._cols).reshape(self.weight.shape)
        self.grad_bias += grad_flat.sum(axis=0)
        grad_cols = grad_flat @ self.weight.reshape(out_channels, -1)
        return col2im(grad_cols, self._x_shape, self.kernel, self.stride, self.pad)

    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class MaxPool2D(Layer):
    """Max pooling with square window and equal stride over NCHW inputs."""

    def __init__(self, size: int = 2) -> None:
        if size <= 0:
            raise ValueError(f"pool size must be positive, got {size}")
        self.size = size
        self._mask: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(
                f"MaxPool2D size {s} must evenly divide spatial dims {h}x{w}"
            )
        # Reorder to (n, c, h//s, w//s, s, s) so each window is contiguous.
        blocks = x.reshape(n, c, h // s, s, w // s, s).transpose(0, 1, 2, 4, 3, 5)
        out = blocks.max(axis=(4, 5))
        if training:
            flat = (blocks == out[..., None, None]).reshape(
                n, c, h // s, w // s, s * s
            )
            # Break ties so exactly one element per window routes the gradient.
            first = flat.argmax(axis=-1)
            mask = np.zeros_like(flat, dtype=bool)
            np.put_along_axis(mask, first[..., None], True, axis=-1)
            self._mask = mask
            self._x_shape = x.shape
        else:
            self._mask = None
            self._x_shape = None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None or self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        n, c, h, w = self._x_shape
        s = self.size
        spread = self._mask * grad[..., None]
        spread = spread.reshape(n, c, h // s, w // s, s, s)
        return spread.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h, w)


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return x * mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training forward pass")
        return grad * self._mask


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before a training forward pass")
        return grad.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask

    def reseed(self, rng: np.random.Generator) -> None:
        self._rng = rng


class BatchNorm(Layer):
    """Batch normalization over the feature axis of 2-D inputs.

    For 4-D (NCHW) inputs, statistics are computed per channel over the
    batch and spatial axes.
    """

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5):
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.gamma = np.ones(num_features, dtype=np.float64)
        self.beta = np.zeros(num_features, dtype=np.float64)
        self.grad_gamma = np.zeros_like(self.gamma)
        self.grad_beta = np.zeros_like(self.beta)
        self.running_mean = np.zeros(num_features, dtype=np.float64)
        self.running_var = np.ones(num_features, dtype=np.float64)
        self.momentum = momentum
        self.eps = eps
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._was_4d = False

    def _to_2d(self, x: np.ndarray) -> np.ndarray:
        if x.ndim == 2:
            self._was_4d = False
            return x
        if x.ndim == 4:
            self._was_4d = True
            self._shape4 = x.shape
            return x.transpose(0, 2, 3, 1).reshape(-1, x.shape[1])
        raise ValueError(f"BatchNorm supports 2-D or 4-D inputs, got {x.ndim}-D")

    def _from_2d(self, x: np.ndarray) -> np.ndarray:
        if not self._was_4d:
            return x
        n, c, h, w = self._shape4
        return x.reshape(n, h, w, c).transpose(0, 3, 1, 2)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        flat = self._to_2d(x)
        if training:
            mean = flat.mean(axis=0)
            var = flat.var(axis=0)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
            std = np.sqrt(var + self.eps)
            normed = (flat - mean) / std
            self._cache = (normed, std, flat - mean)
        else:
            std = np.sqrt(self.running_var + self.eps)
            normed = (flat - self.running_mean) / std
            self._cache = None
        return self._from_2d(normed * self.gamma + self.beta)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        grad_flat = self._to_2d(grad)
        normed, std, centered = self._cache
        n = grad_flat.shape[0]
        self.grad_gamma += (grad_flat * normed).sum(axis=0)
        self.grad_beta += grad_flat.sum(axis=0)
        gxn = grad_flat * self.gamma
        grad_in = (
            gxn - gxn.mean(axis=0) - normed * (gxn * normed).mean(axis=0)
        ) / std
        del n, centered
        return self._from_2d(grad_in)

    def params(self) -> list[np.ndarray]:
        return [self.gamma, self.beta]

    def grads(self) -> list[np.ndarray]:
        return [self.grad_gamma, self.grad_beta]

    def state(self) -> dict[str, np.ndarray]:
        return {
            "gamma": self.gamma,
            "beta": self.beta,
            "running_mean": self.running_mean,
            "running_var": self.running_var,
        }

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        self.gamma[...] = state["gamma"]
        self.beta[...] = state["beta"]
        self.running_mean[...] = state["running_mean"]
        self.running_var[...] = state["running_var"]


class Softmax(Layer):
    """Numerically stable softmax over the last axis.

    Typically combined with cross-entropy via the fused loss in
    :mod:`repro.nn.losses`; keep this layer out of the model when using
    :class:`~repro.nn.losses.SoftmaxCrossEntropy`.
    """

    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        out = exp / exp.sum(axis=-1, keepdims=True)
        if training:
            self._output = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before a training forward pass")
        s = self._output
        dot = (grad * s).sum(axis=-1, keepdims=True)
        return s * (grad - dot)


class AvgPool2D(Layer):
    """Average pooling with square window and equal stride over NCHW inputs."""

    def __init__(self, size: int = 2) -> None:
        if size <= 0:
            raise ValueError(f"pool size must be positive, got {size}")
        self.size = size
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(
                f"AvgPool2D size {s} must evenly divide spatial dims {h}x{w}"
            )
        if training:
            self._x_shape = x.shape
        blocks = x.reshape(n, c, h // s, s, w // s, s)
        return blocks.mean(axis=(3, 5))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        n, c, h, w = self._x_shape
        s = self.size
        spread = np.repeat(np.repeat(grad, s, axis=2), s, axis=3)
        return spread / (s * s)


class GlobalAveragePool(Layer):
    """Collapse NCHW feature maps to (N, C) by spatial averaging."""

    def __init__(self) -> None:
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"expected NCHW input, got {x.ndim}-D")
        if training:
            self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        n, c, h, w = self._x_shape
        return np.broadcast_to(
            grad[:, :, None, None] / (h * w), (n, c, h, w)
        ).copy()


class Sigmoid(Layer):
    """Logistic activation."""

    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))
        if training:
            self._output = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before a training forward pass")
        return grad * self._output * (1.0 - self._output)


class Tanh(Layer):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.tanh(x)
        if training:
            self._output = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before a training forward pass")
        return grad * (1.0 - self._output**2)


class _FusedConvBase(Layer):
    """Shared plumbing for fused conv blocks.

    A fused block *wraps* the original :class:`Conv2D` instance rather than
    copying its parameters, so weight/bias/grad arrays stay shared with any
    optimizer that captured them before fusion, and :func:`unfuse_layers`
    can hand the untouched layer objects back.

    The im2col patch matrix and the col2im gradient accumulator are written
    into preallocated scratch buffers reused across minibatches and epochs
    (the patch layout is built directly in ``(n, oh, ow, c, k, k)`` order,
    skipping the transpose-copy the reference :func:`im2col` pays).  Every
    arithmetic op matches the layer-by-layer chain operand for operand, so
    the fused path is bit-identical to running the separate layers.

    Scratch and caches are transient: they are dropped on pickling, so
    guard snapshots and checkpoints of fused models stay lean and restore
    cleanly.
    """

    def __init__(self, conv: Conv2D) -> None:
        if type(conv) is not Conv2D:
            raise TypeError(
                f"fused blocks wrap a plain Conv2D, got {type(conv).__name__}"
            )
        self.conv = conv
        # The wrapped layer's backward cache is stale the moment it is
        # fused over — drop it so snapshots/checkpoints of fused models do
        # not carry the last pre-fusion minibatch around forever.
        conv._cols = None
        conv._x_shape = None
        self._scratch: dict[str, np.ndarray] = {}
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def params(self) -> list[np.ndarray]:
        return self.conv.params()

    def grads(self) -> list[np.ndarray]:
        return self.conv.grads()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_scratch"] = {}
        for key in ("_cols", "_x_shape", "_mask", "_routing", "_act_shape"):
            if key in state:
                state[key] = None
        return state

    def _buf(
        self, name: str, shape: tuple[int, ...], dtype, zeroed: bool = False
    ) -> np.ndarray:
        buf = self._scratch.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            alloc = np.zeros if zeroed else np.empty
            buf = alloc(shape, dtype=dtype)
            self._scratch[name] = buf
        return buf

    def _conv_forward(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """im2col + matmul; returns (patch matrix, NCHW conv output)."""
        conv = self.conv
        if x.ndim != 4 or x.shape[1] != conv.weight.shape[1]:
            raise ValueError(
                f"Conv2D expected (batch, {conv.weight.shape[1]}, H, W), "
                f"got {x.shape}"
            )
        k, s, p = conv.kernel, conv.stride, conv.pad
        n, c, h, w = x.shape
        out_h = (h + 2 * p - k) // s + 1
        out_w = (w + 2 * p - k) // s + 1
        if out_h <= 0 or out_w <= 0:
            raise ValueError(
                f"kernel {k} with stride {s}, pad {p} does not fit "
                f"input of spatial size {h}x{w}"
            )
        if p:
            # Borders are zeroed once at allocation and never written after,
            # so refilling only the interior keeps the zero padding intact.
            padded = self._buf("pad", (n, c, h + 2 * p, w + 2 * p), x.dtype,
                               zeroed=True)
            padded[:, :, p:p + h, p:p + w] = x
        else:
            padded = x
        # The patch matrix holds exact element copies of the padded input,
        # so the gather strategy is free to differ from :func:`im2col` as
        # long as the same values land in the same positions — the result
        # is bit-identical either way.  Wide patches (c*k*k large) gather
        # fastest in ONE strided pass: a zero-copy sliding-window view of
        # ``padded``, transposed to patch-row order and written straight
        # into reusable scratch (half of im2col's memory traffic).  Narrow
        # patches (e.g. 3-channel input blocks) have too little contiguous
        # run per window for that to pay off, so they keep im2col's
        # two-pass pattern, just into preallocated scratch.
        cols = self._buf("cols", (n * out_h * out_w, c * k * k), x.dtype)
        cols6 = cols.reshape(n, out_h, out_w, c, k, k)
        if c * k * k >= 64:
            sn, sc, sh, sw = padded.strides
            windows = np.lib.stride_tricks.as_strided(
                padded,
                shape=(n, c, k, k, out_h, out_w),
                strides=(sn, sc, sh, sw, sh * s, sw * s),
                writeable=False,
            )
            np.copyto(cols6, windows.transpose(0, 4, 5, 1, 2, 3))
        else:
            patches = self._buf("patches", (n, c, k, k, out_h, out_w), x.dtype)
            for ky in range(k):
                y_end = ky + s * out_h
                for kx in range(k):
                    x_end = kx + s * out_w
                    patches[:, :, ky, kx, :, :] = padded[
                        :, :, ky:y_end:s, kx:x_end:s
                    ]
            np.copyto(cols6, patches.transpose(0, 4, 5, 1, 2, 3))
        out_channels = conv.weight.shape[0]
        flat_w = conv.weight.reshape(out_channels, -1)
        out = cols @ flat_w.T + conv.bias
        out = out.reshape(n, out_h, out_w, out_channels)
        return cols, out.transpose(0, 3, 1, 2)

    def _conv_backward(self, g: np.ndarray) -> np.ndarray:
        """Parameter grads + input grad from the post-activation grad ``g``."""
        conv = self.conv
        n, c, h, w = self._x_shape
        k, s, p = conv.kernel, conv.stride, conv.pad
        out_channels = conv.weight.shape[0]
        grad_flat = g.transpose(0, 2, 3, 1).reshape(-1, out_channels)
        conv.grad_weight += (grad_flat.T @ self._cols).reshape(conv.weight.shape)
        conv.grad_bias += grad_flat.sum(axis=0)
        grad_cols = grad_flat @ conv.weight.reshape(out_channels, -1)
        out_h = (h + 2 * p - k) // s + 1
        out_w = (w + 2 * p - k) // s + 1
        gpad = self._buf("gpad", (n, c, h + 2 * p, w + 2 * p), grad_cols.dtype)
        gpad[...] = 0.0
        # Identical accumulation order to :func:`col2im`.
        rcols = grad_cols.reshape(n, out_h, out_w, c, k, k).transpose(0, 3, 4, 5, 1, 2)
        for ky in range(k):
            y_end = ky + s * out_h
            for kx in range(k):
                x_end = kx + s * out_w
                gpad[:, :, ky:y_end:s, kx:x_end:s] += rcols[:, :, ky, kx, :, :]
        if p == 0:
            return gpad
        return gpad[:, :, p:-p, p:-p]


class FusedConvReLU(_FusedConvBase):
    """Single-pass ``Conv2D -> ReLU`` (forward and backward)."""

    def __init__(self, conv: Conv2D, relu: ReLU | None = None) -> None:
        super().__init__(conv)
        self.relu = relu if relu is not None else ReLU()
        self.relu._mask = None
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        cols, conv_out = self._conv_forward(x)
        mask = conv_out > 0
        out = conv_out * mask
        if training:
            self._cols = cols
            self._x_shape = x.shape
            self._mask = mask
        else:
            self._cols = None
            self._x_shape = None
            self._mask = None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cols is None or self._mask is None:
            raise RuntimeError("backward called before a training forward pass")
        return self._conv_backward(grad * self._mask)


class FusedConvReLUPool(_FusedConvBase):
    """Single-pass ``Conv2D -> ReLU -> MaxPool2D``.

    Backward routes the pooled gradient through one combined boolean mask
    (``pool-argmax AND relu``) instead of two sequential mask multiplies;
    masks are 0/1 selections, so the composition is exact.
    """

    def __init__(
        self,
        conv: Conv2D,
        pool: MaxPool2D | None = None,
        relu: ReLU | None = None,
    ) -> None:
        super().__init__(conv)
        self.relu = relu if relu is not None else ReLU()
        self.pool = pool if pool is not None else MaxPool2D()
        if type(self.pool) is not MaxPool2D:
            raise TypeError(
                f"fused blocks pool with MaxPool2D, got {type(self.pool).__name__}"
            )
        self.relu._mask = None
        self.pool._mask = None
        self.pool._x_shape = None
        self._routing: np.ndarray | None = None
        self._act_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        cols, conv_out = self._conv_forward(x)
        relu_mask = conv_out > 0
        act = conv_out * relu_mask
        n, c, h, w = act.shape
        s = self.pool.size
        if h % s or w % s:
            raise ValueError(
                f"MaxPool2D size {s} must evenly divide spatial dims {h}x{w}"
            )
        blocks = act.reshape(n, c, h // s, s, w // s, s).transpose(0, 1, 2, 4, 3, 5)
        out = blocks.max(axis=(4, 5))
        if training:
            flat = (blocks == out[..., None, None]).reshape(
                n, c, h // s, w // s, s * s
            )
            # Break ties so exactly one element per window routes the gradient.
            first = flat.argmax(axis=-1)
            pool_mask = np.zeros_like(flat, dtype=bool)
            np.put_along_axis(pool_mask, first[..., None], True, axis=-1)
            relu_windows = relu_mask.reshape(
                n, c, h // s, s, w // s, s
            ).transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h // s, w // s, s * s)
            self._routing = pool_mask & relu_windows
            self._cols = cols
            self._x_shape = x.shape
            self._act_shape = act.shape
        else:
            self._cols = None
            self._x_shape = None
            self._routing = None
            self._act_shape = None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cols is None or self._routing is None:
            raise RuntimeError("backward called before a training forward pass")
        n, c, h, w = self._act_shape
        s = self.pool.size
        spread = self._routing * grad[..., None]
        spread = spread.reshape(n, c, h // s, w // s, s, s)
        g = spread.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h, w)
        return self._conv_backward(g)


def fuse_layers(layers: list[Layer], keep_last_conv: bool = False) -> list[Layer]:
    """Collapse ``Conv2D -> ReLU [-> MaxPool2D]`` runs into fused blocks.

    Only exact base-class instances fuse (subclasses may override behavior).
    ``keep_last_conv`` leaves the final :class:`Conv2D` of the stack — and
    its following layers — untouched, preserving per-layer access to its
    pre-activation output (Grad-CAM hooks the last conv by index).
    Layer instances are shared, never copied, so optimizer parameter lists
    captured before fusing remain valid.
    """
    layers = list(layers)
    protected = -1
    if keep_last_conv:
        for i, layer in enumerate(layers):
            if type(layer) is Conv2D:
                protected = i
    fused: list[Layer] = []
    i = 0
    while i < len(layers):
        layer = layers[i]
        nxt = layers[i + 1] if i + 1 < len(layers) else None
        if type(layer) is Conv2D and i != protected and type(nxt) is ReLU:
            after = layers[i + 2] if i + 2 < len(layers) else None
            if type(after) is MaxPool2D:
                fused.append(FusedConvReLUPool(layer, pool=after, relu=nxt))
                i += 3
            else:
                fused.append(FusedConvReLU(layer, relu=nxt))
                i += 2
        else:
            fused.append(layer)
            i += 1
    return fused


def unfuse_layers(layers: list[Layer]) -> list[Layer]:
    """Expand fused blocks back into the original layer instances."""
    out: list[Layer] = []
    for layer in layers:
        if isinstance(layer, FusedConvReLUPool):
            out += [layer.conv, layer.relu, layer.pool]
        elif isinstance(layer, FusedConvReLU):
            out += [layer.conv, layer.relu]
        else:
            out.append(layer)
    return out
