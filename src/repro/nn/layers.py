"""Neural-network layers with explicit forward/backward passes.

All layers operate on float64 numpy arrays.  Convolutions use NCHW layout
(batch, channels, height, width) and are implemented with im2col so the heavy
lifting is a single matrix multiply.  Each layer exposes:

- ``forward(x, training)`` — compute outputs, caching what backward needs;
- ``backward(grad)`` — gradient w.r.t. inputs, accumulating parameter grads;
- ``params()`` / ``grads()`` — parallel lists consumed by the optimizers.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import Initializer, glorot_uniform, he_normal, zeros

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAveragePool",
    "Sigmoid",
    "Tanh",
    "ReLU",
    "Flatten",
    "Dropout",
    "BatchNorm",
    "Softmax",
    "im2col",
    "col2im",
]


class Layer:
    """Base class for all layers; parameter-free layers inherit the no-ops."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> list[np.ndarray]:
        """Trainable parameter arrays (mutated in place by optimizers)."""
        return []

    def grads(self) -> list[np.ndarray]:
        """Gradient arrays parallel to :meth:`params`."""
        return []

    def zero_grad(self) -> None:
        """Reset accumulated gradients to zero."""
        for g in self.grads():
            g[...] = 0.0

    def state(self) -> dict[str, np.ndarray]:
        """Serializable layer state (parameters + running statistics)."""
        return {f"param{i}": p for i, p in enumerate(self.params())}

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state`."""
        for i, p in enumerate(self.params()):
            p[...] = state[f"param{i}"]


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        weight_init: Initializer = glorot_uniform,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Dense layer dimensions must be positive")
        self.weight = weight_init((in_features, out_features), rng)
        self.bias = zeros((out_features,), rng)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.weight.shape[0]:
            raise ValueError(
                f"Dense expected (batch, {self.weight.shape[0]}), got {x.shape}"
            )
        self._input = x if training else None
        return x @ self.weight + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before a training forward pass")
        self.grad_weight += self._input.T @ grad
        self.grad_bias += grad.sum(axis=0)
        return grad @ self.weight.T

    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


def im2col(
    x: np.ndarray, kernel: int, stride: int, pad: int
) -> tuple[np.ndarray, int, int]:
    """Unfold NCHW input into (N*OH*OW, C*kernel*kernel) patch rows.

    Returns the patch matrix along with the output spatial dims (OH, OW).
    """
    n, c, h, w = x.shape
    out_h = (h + 2 * pad - kernel) // stride + 1
    out_w = (w + 2 * pad - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {kernel} with stride {stride}, pad {pad} does not fit "
            f"input of spatial size {h}x{w}"
        )
    padded = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    cols = np.empty((n, c, kernel, kernel, out_h, out_w), dtype=x.dtype)
    for ky in range(kernel):
        y_end = ky + stride * out_h
        for kx in range(kernel):
            x_end = kx + stride * out_w
            cols[:, :, ky, kx, :, :] = padded[:, :, ky:y_end:stride, kx:x_end:stride]
    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)
    return cols, out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold patch rows back into an NCHW gradient (inverse of :func:`im2col`)."""
    n, c, h, w = x_shape
    out_h = (h + 2 * pad - kernel) // stride + 1
    out_w = (w + 2 * pad - kernel) // stride + 1
    cols = cols.reshape(n, out_h, out_w, c, kernel, kernel).transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for ky in range(kernel):
        y_end = ky + stride * out_h
        for kx in range(kernel):
            x_end = kx + stride * out_w
            padded[:, :, ky:y_end:stride, kx:x_end:stride] += cols[:, :, ky, kx, :, :]
    if pad == 0:
        return padded
    return padded[:, :, pad:-pad, pad:-pad]


class Conv2D(Layer):
    """2-D convolution (cross-correlation) over NCHW inputs via im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        rng: np.random.Generator,
        stride: int = 1,
        pad: int = 0,
        weight_init: Initializer = he_normal,
    ) -> None:
        if min(in_channels, out_channels, kernel, stride) <= 0 or pad < 0:
            raise ValueError("Conv2D hyperparameters must be positive (pad >= 0)")
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self.weight = weight_init((out_channels, in_channels, kernel, kernel), rng)
        self.bias = zeros((out_channels,), rng)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.weight.shape[1]:
            raise ValueError(
                f"Conv2D expected (batch, {self.weight.shape[1]}, H, W), "
                f"got {x.shape}"
            )
        cols, out_h, out_w = im2col(x, self.kernel, self.stride, self.pad)
        out_channels = self.weight.shape[0]
        flat_w = self.weight.reshape(out_channels, -1)
        out = cols @ flat_w.T + self.bias
        out = out.reshape(x.shape[0], out_h, out_w, out_channels)
        if training:
            self._cols = cols
            self._x_shape = x.shape
        else:
            self._cols = None
            self._x_shape = None
        return out.transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        out_channels = self.weight.shape[0]
        grad_flat = grad.transpose(0, 2, 3, 1).reshape(-1, out_channels)
        self.grad_weight += (grad_flat.T @ self._cols).reshape(self.weight.shape)
        self.grad_bias += grad_flat.sum(axis=0)
        grad_cols = grad_flat @ self.weight.reshape(out_channels, -1)
        return col2im(grad_cols, self._x_shape, self.kernel, self.stride, self.pad)

    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class MaxPool2D(Layer):
    """Max pooling with square window and equal stride over NCHW inputs."""

    def __init__(self, size: int = 2) -> None:
        if size <= 0:
            raise ValueError(f"pool size must be positive, got {size}")
        self.size = size
        self._mask: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(
                f"MaxPool2D size {s} must evenly divide spatial dims {h}x{w}"
            )
        # Reorder to (n, c, h//s, w//s, s, s) so each window is contiguous.
        blocks = x.reshape(n, c, h // s, s, w // s, s).transpose(0, 1, 2, 4, 3, 5)
        out = blocks.max(axis=(4, 5))
        if training:
            flat = (blocks == out[..., None, None]).reshape(
                n, c, h // s, w // s, s * s
            )
            # Break ties so exactly one element per window routes the gradient.
            first = flat.argmax(axis=-1)
            mask = np.zeros_like(flat, dtype=bool)
            np.put_along_axis(mask, first[..., None], True, axis=-1)
            self._mask = mask
            self._x_shape = x.shape
        else:
            self._mask = None
            self._x_shape = None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None or self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        n, c, h, w = self._x_shape
        s = self.size
        spread = self._mask * grad[..., None]
        spread = spread.reshape(n, c, h // s, w // s, s, s)
        return spread.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h, w)


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return x * mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training forward pass")
        return grad * self._mask


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before a training forward pass")
        return grad.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


class BatchNorm(Layer):
    """Batch normalization over the feature axis of 2-D inputs.

    For 4-D (NCHW) inputs, statistics are computed per channel over the
    batch and spatial axes.
    """

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5):
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.gamma = np.ones(num_features, dtype=np.float64)
        self.beta = np.zeros(num_features, dtype=np.float64)
        self.grad_gamma = np.zeros_like(self.gamma)
        self.grad_beta = np.zeros_like(self.beta)
        self.running_mean = np.zeros(num_features, dtype=np.float64)
        self.running_var = np.ones(num_features, dtype=np.float64)
        self.momentum = momentum
        self.eps = eps
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._was_4d = False

    def _to_2d(self, x: np.ndarray) -> np.ndarray:
        if x.ndim == 2:
            self._was_4d = False
            return x
        if x.ndim == 4:
            self._was_4d = True
            self._shape4 = x.shape
            return x.transpose(0, 2, 3, 1).reshape(-1, x.shape[1])
        raise ValueError(f"BatchNorm supports 2-D or 4-D inputs, got {x.ndim}-D")

    def _from_2d(self, x: np.ndarray) -> np.ndarray:
        if not self._was_4d:
            return x
        n, c, h, w = self._shape4
        return x.reshape(n, h, w, c).transpose(0, 3, 1, 2)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        flat = self._to_2d(x)
        if training:
            mean = flat.mean(axis=0)
            var = flat.var(axis=0)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
            std = np.sqrt(var + self.eps)
            normed = (flat - mean) / std
            self._cache = (normed, std, flat - mean)
        else:
            std = np.sqrt(self.running_var + self.eps)
            normed = (flat - self.running_mean) / std
            self._cache = None
        return self._from_2d(normed * self.gamma + self.beta)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        grad_flat = self._to_2d(grad)
        normed, std, centered = self._cache
        n = grad_flat.shape[0]
        self.grad_gamma += (grad_flat * normed).sum(axis=0)
        self.grad_beta += grad_flat.sum(axis=0)
        gxn = grad_flat * self.gamma
        grad_in = (
            gxn - gxn.mean(axis=0) - normed * (gxn * normed).mean(axis=0)
        ) / std
        del n, centered
        return self._from_2d(grad_in)

    def params(self) -> list[np.ndarray]:
        return [self.gamma, self.beta]

    def grads(self) -> list[np.ndarray]:
        return [self.grad_gamma, self.grad_beta]

    def state(self) -> dict[str, np.ndarray]:
        return {
            "gamma": self.gamma,
            "beta": self.beta,
            "running_mean": self.running_mean,
            "running_var": self.running_var,
        }

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        self.gamma[...] = state["gamma"]
        self.beta[...] = state["beta"]
        self.running_mean[...] = state["running_mean"]
        self.running_var[...] = state["running_var"]


class Softmax(Layer):
    """Numerically stable softmax over the last axis.

    Typically combined with cross-entropy via the fused loss in
    :mod:`repro.nn.losses`; keep this layer out of the model when using
    :class:`~repro.nn.losses.SoftmaxCrossEntropy`.
    """

    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        out = exp / exp.sum(axis=-1, keepdims=True)
        if training:
            self._output = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before a training forward pass")
        s = self._output
        dot = (grad * s).sum(axis=-1, keepdims=True)
        return s * (grad - dot)


class AvgPool2D(Layer):
    """Average pooling with square window and equal stride over NCHW inputs."""

    def __init__(self, size: int = 2) -> None:
        if size <= 0:
            raise ValueError(f"pool size must be positive, got {size}")
        self.size = size
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(
                f"AvgPool2D size {s} must evenly divide spatial dims {h}x{w}"
            )
        if training:
            self._x_shape = x.shape
        blocks = x.reshape(n, c, h // s, s, w // s, s)
        return blocks.mean(axis=(3, 5))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        n, c, h, w = self._x_shape
        s = self.size
        spread = np.repeat(np.repeat(grad, s, axis=2), s, axis=3)
        return spread / (s * s)


class GlobalAveragePool(Layer):
    """Collapse NCHW feature maps to (N, C) by spatial averaging."""

    def __init__(self) -> None:
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"expected NCHW input, got {x.ndim}-D")
        if training:
            self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        n, c, h, w = self._x_shape
        return np.broadcast_to(
            grad[:, :, None, None] / (h * w), (n, c, h, w)
        ).copy()


class Sigmoid(Layer):
    """Logistic activation."""

    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))
        if training:
            self._output = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before a training forward pass")
        return grad * self._output * (1.0 - self._output)


class Tanh(Layer):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.tanh(x)
        if training:
            self._output = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before a training forward pass")
        return grad * (1.0 - self._output**2)
