"""Sequential model container for the numpy NN substrate."""

from __future__ import annotations

import pickle
from pathlib import Path

import numpy as np

from repro.nn.layers import Layer, _FusedConvBase, fuse_layers, unfuse_layers
from repro.nn.losses import softmax

__all__ = ["Sequential"]


class Sequential:
    """A linear stack of layers with shared forward/backward plumbing.

    The model outputs raw logits; use :meth:`predict_proba` for softmax
    probabilities (the "expert vote" distribution of Definition 6).
    """

    def __init__(self, layers: list[Layer]) -> None:
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run a forward pass through every layer."""
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad`` (dL/doutput) through every layer."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def params(self) -> list[np.ndarray]:
        """All trainable parameters, in layer order."""
        return [p for layer in self.layers for p in layer.params()]

    def grads(self) -> list[np.ndarray]:
        """All gradients, parallel to :meth:`params`."""
        return [g for layer in self.layers for g in layer.grads()]

    def zero_grad(self) -> None:
        """Reset all accumulated gradients."""
        for layer in self.layers:
            layer.zero_grad()

    def n_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.params())

    def reseed(self, rng: np.random.Generator) -> None:
        """Point every stochastic layer (Dropout) at ``rng``."""
        for layer in self.layers:
            layer.reseed(rng)

    # -- kernel fusion -----------------------------------------------------

    @property
    def is_fused(self) -> bool:
        """Whether any layer is a fused conv block."""
        return any(isinstance(layer, _FusedConvBase) for layer in self.layers)

    def fuse(self, keep_last_conv: bool = False) -> "Sequential":
        """Fuse ``Conv2D -> ReLU [-> MaxPool2D]`` runs in place.

        Parameter arrays are shared with the wrapped layers, so optimizers
        built before fusing keep working; outputs and gradients are
        bit-identical to the unfused stack.  Idempotent.
        """
        self.layers = fuse_layers(self.layers, keep_last_conv=keep_last_conv)
        return self

    def unfuse(self) -> "Sequential":
        """Restore the original per-layer stack in place.  Idempotent."""
        self.layers = unfuse_layers(self.layers)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Softmax class probabilities for a batch of inputs."""
        return softmax(self.forward(x, training=False))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Argmax class labels for a batch of inputs."""
        return np.argmax(self.forward(x, training=False), axis=-1)

    # -- serialization -----------------------------------------------------

    def state(self) -> list[dict[str, np.ndarray]]:
        """Per-layer state dicts (parameters and running statistics)."""
        return [layer.state() for layer in self.layers]

    def load_state(self, state: list[dict[str, np.ndarray]]) -> None:
        """Restore state captured by :meth:`state` into this architecture."""
        if len(state) != len(self.layers):
            raise ValueError(
                f"state has {len(state)} layer entries, model has "
                f"{len(self.layers)} layers"
            )
        for layer, layer_state in zip(self.layers, state):
            layer.load_state(layer_state)

    def save(self, path: str | Path) -> None:
        """Persist the model state to ``path`` (architecture not included)."""
        with open(path, "wb") as fh:
            pickle.dump(self.state(), fh)

    def load(self, path: str | Path) -> None:
        """Load state previously written by :meth:`save`."""
        with open(path, "rb") as fh:
            self.load_state(pickle.load(fh))
