"""Synthetic disaster-image rendering.

Images are 32x32 RGB arrays in [0, 1] whose *low-level statistics* separate
the three damage classes the way real disaster photos do:

- **no damage** — smooth sky gradient over intact structures: low edge
  density, bright and regular.
- **moderate damage** — the same scene with a few cracks and debris patches:
  medium edge density.
- **severe damage** — rubble: high-frequency texture, collapsed (tilted)
  structure edges, dust desaturation.

A renderer draws the scene for an *apparent* label; the failure-archetype
injectors in :mod:`repro.data.archetypes` exploit the gap between apparent
and true labels.  Pixel-only classifiers can learn this distribution well but
are structurally blind to the metadata, which is exactly the regime
CrowdLearn targets.
"""

from __future__ import annotations

import numpy as np

from repro.data.metadata import DamageLabel, SceneType

__all__ = ["IMAGE_SIZE", "render_scene", "render_image"]

#: Side length of every synthetic image.
IMAGE_SIZE = 32


def _sky_gradient(rng: np.random.Generator, size: int) -> np.ndarray:
    """A bright vertical gradient with slight color jitter (the sky)."""
    top = np.array([0.55, 0.70, 0.90]) + rng.normal(0, 0.03, 3)
    bottom = np.array([0.75, 0.80, 0.88]) + rng.normal(0, 0.03, 3)
    ramp = np.linspace(0.0, 1.0, size)[:, None, None]
    column = (1 - ramp) * top[None, None, :] + ramp * bottom[None, None, :]
    return np.broadcast_to(column, (size, size, 3))


def _structure_color(rng: np.random.Generator, scene: SceneType) -> np.ndarray:
    base = {
        SceneType.ROAD: np.array([0.45, 0.45, 0.47]),
        SceneType.BUILDING: np.array([0.65, 0.60, 0.52]),
        SceneType.BRIDGE: np.array([0.55, 0.52, 0.50]),
        SceneType.VEHICLE: np.array([0.50, 0.20, 0.20]),
        SceneType.PEOPLE: np.array([0.60, 0.50, 0.42]),
    }[scene]
    return np.clip(base + rng.normal(0, 0.04, 3), 0.0, 1.0)


def _draw_intact_structure(
    canvas: np.ndarray, rng: np.random.Generator, scene: SceneType
) -> None:
    """Rectangular structure blocks with clean horizontal/vertical edges."""
    size = canvas.shape[0]
    horizon = size // 2 + int(rng.integers(-3, 4))
    color = _structure_color(rng, scene)
    canvas[horizon:, :, :] = color[None, None, :]
    # A few vertical facade lines / lane markings: regular, low-frequency.
    n_lines = int(rng.integers(2, 5))
    for _ in range(n_lines):
        x = int(rng.integers(2, size - 2))
        shade = np.clip(color * rng.uniform(0.75, 1.2), 0, 1)
        canvas[horizon:, x : x + 1, :] = shade[None, None, :]


def _add_cracks(
    canvas: np.ndarray, rng: np.random.Generator, n_cracks: int, darkness: float
) -> None:
    """Dark jagged polylines (cracks) over the lower half."""
    size = canvas.shape[0]
    for _ in range(n_cracks):
        y = int(rng.integers(size // 2, size - 1))
        x = int(rng.integers(0, size))
        length = int(rng.integers(size // 4, size))
        for _ in range(length):
            canvas[y, x, :] *= 1.0 - darkness
            y += int(rng.integers(-1, 2))
            x += int(rng.integers(-1, 2))
            y = min(max(y, size // 2), size - 1)
            x = min(max(x, 0), size - 1)


def _add_rubble(
    canvas: np.ndarray, rng: np.random.Generator, intensity: float
) -> None:
    """High-frequency gray rubble texture over the lower half + dust haze."""
    size = canvas.shape[0]
    lower = canvas[size // 2 :, :, :]
    noise = rng.normal(0.0, intensity, lower.shape[:2])
    lower += noise[:, :, None] * np.array([1.0, 0.95, 0.9])[None, None, :]
    # Dark debris blocks with random tilts (collapsed structure).
    n_blocks = int(3 + 6 * intensity * 10)
    for _ in range(n_blocks):
        by = int(rng.integers(size // 2, size - 3))
        bx = int(rng.integers(0, size - 3))
        bh = int(rng.integers(2, 5))
        bw = int(rng.integers(2, 6))
        shade = rng.uniform(0.15, 0.45)
        canvas[by : by + bh, bx : bx + bw, :] = shade
    # Dust desaturates and dims the whole frame slightly.
    gray = canvas.mean(axis=2, keepdims=True)
    canvas[...] = 0.75 * canvas + 0.25 * gray
    np.clip(canvas, 0.0, 1.0, out=canvas)


def render_scene(
    apparent_label: DamageLabel,
    scene: SceneType,
    rng: np.random.Generator,
    size: int = IMAGE_SIZE,
) -> np.ndarray:
    """Render a scene whose pixels express ``apparent_label``.

    Returns an ``(size, size, 3)`` float array in [0, 1].
    """
    if size < 8:
        raise ValueError(f"size must be >= 8, got {size}")
    canvas = _sky_gradient(rng, size).copy()
    _draw_intact_structure(canvas, rng, scene)
    # Damage parameters overlap between adjacent severities so the classes
    # are genuinely ambiguous at the boundary, as real photos are.
    if apparent_label is DamageLabel.MODERATE:
        _add_cracks(
            canvas,
            rng,
            n_cracks=int(rng.integers(2, 7)),
            darkness=float(rng.uniform(0.40, 0.60)),
        )
        _add_rubble(canvas, rng, intensity=float(rng.uniform(0.03, 0.09)))
    elif apparent_label is DamageLabel.SEVERE:
        _add_cracks(
            canvas,
            rng,
            n_cracks=int(rng.integers(4, 10)),
            darkness=float(rng.uniform(0.55, 0.75)),
        )
        _add_rubble(canvas, rng, intensity=float(rng.uniform(0.07, 0.17)))
    # Global lighting jitter and sensor noise on every image.
    canvas *= rng.uniform(0.85, 1.15)
    canvas += rng.normal(0.0, 0.02, canvas.shape)
    np.clip(canvas, 0.0, 1.0, out=canvas)
    return canvas


def render_image(
    apparent_label: DamageLabel,
    scene: SceneType,
    rng: np.random.Generator,
    size: int = IMAGE_SIZE,
) -> np.ndarray:
    """Alias for :func:`render_scene` kept for API symmetry."""
    return render_scene(apparent_label, scene, rng, size=size)
