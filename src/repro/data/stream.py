"""Sensing-cycle streams (Definition 1).

The DDA application runs over T sensing cycles, each delivering a batch of
new (unseen) images.  The paper's deployment runs 40 ten-minute cycles, 10
per temporal context, with 10 test images per cycle.  The stream partitions a
test set accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.data.dataset import DisasterDataset, DisasterImage
from repro.utils.clock import TemporalContext

__all__ = ["SensingCycle", "SensingCycleStream"]


@dataclass(frozen=True)
class SensingCycle:
    """One sensing cycle: its index, temporal context and fresh images."""

    index: int
    context: TemporalContext
    images: tuple[DisasterImage, ...]

    def dataset(self) -> DisasterDataset:
        """The cycle's images as a dataset (for batch feature extraction)."""
        return DisasterDataset(list(self.images))

    def __len__(self) -> int:
        return len(self.images)


class SensingCycleStream:
    """Splits a test set into consecutive sensing cycles.

    Parameters
    ----------
    test_set:
        Pool of unseen images; consumed without replacement, in a shuffled
        order determined by ``rng``.
    n_cycles:
        Total sensing cycles (paper: 40).
    images_per_cycle:
        Images arriving per cycle (paper: 10).
    cycles_per_context:
        Consecutive cycles sharing one temporal context (paper: 10); the
        stream walks contexts in the paper's order morning → afternoon →
        evening → midnight, wrapping if ``n_cycles`` exceeds 4x this value.
    """

    def __init__(
        self,
        test_set: DisasterDataset,
        n_cycles: int = 40,
        images_per_cycle: int = 10,
        cycles_per_context: int = 10,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_cycles <= 0 or images_per_cycle <= 0 or cycles_per_context <= 0:
            raise ValueError("stream sizes must be positive")
        required = n_cycles * images_per_cycle
        if len(test_set) < required:
            raise ValueError(
                f"test set has {len(test_set)} images but the stream needs "
                f"{required} ({n_cycles} cycles x {images_per_cycle})"
            )
        if rng is None:
            rng = np.random.default_rng()
        self.n_cycles = n_cycles
        self.images_per_cycle = images_per_cycle
        self.cycles_per_context = cycles_per_context
        order = rng.permutation(len(test_set))[:required]
        self._images = [test_set[int(i)] for i in order]

    def context_of_cycle(self, cycle_index: int) -> TemporalContext:
        """The temporal context cycle ``cycle_index`` runs in."""
        if not 0 <= cycle_index < self.n_cycles:
            raise IndexError(f"cycle {cycle_index} out of range")
        contexts = TemporalContext.ordered()
        return contexts[(cycle_index // self.cycles_per_context) % len(contexts)]

    def cycle(self, cycle_index: int) -> SensingCycle:
        """Materialize cycle ``cycle_index``."""
        context = self.context_of_cycle(cycle_index)
        start = cycle_index * self.images_per_cycle
        images = tuple(self._images[start : start + self.images_per_cycle])
        return SensingCycle(index=cycle_index, context=context, images=images)

    def __iter__(self) -> Iterator[SensingCycle]:
        for t in range(self.n_cycles):
            yield self.cycle(t)

    def __len__(self) -> int:
        return self.n_cycles

    def all_images(self) -> DisasterDataset:
        """Every image the stream will deliver, in arrival order."""
        return DisasterDataset(list(self._images))
