"""Synthetic disaster-image dataset: the Ecuador-earthquake stand-in."""

from repro.data.archetypes import (
    ARCHETYPE_MAKERS,
    make_closeup,
    make_fake,
    make_implicit,
    make_low_resolution,
    make_regular,
)
from repro.data.export import export_dataset_sample, save_ppm, to_ppm
from repro.data.dataset import (
    DisasterDataset,
    DisasterImage,
    build_dataset,
    train_test_split,
)
from repro.data.images import IMAGE_SIZE, render_scene
from repro.data.metadata import (
    DamageLabel,
    FailureArchetype,
    ImageMetadata,
    SceneType,
)
from repro.data.stream import SensingCycle, SensingCycleStream

__all__ = [
    "export_dataset_sample",
    "save_ppm",
    "to_ppm",
    "ARCHETYPE_MAKERS",
    "make_closeup",
    "make_fake",
    "make_implicit",
    "make_low_resolution",
    "make_regular",
    "DisasterDataset",
    "DisasterImage",
    "build_dataset",
    "train_test_split",
    "IMAGE_SIZE",
    "render_scene",
    "DamageLabel",
    "FailureArchetype",
    "ImageMetadata",
    "SceneType",
    "SensingCycle",
    "SensingCycleStream",
]
