"""Failure-archetype injection: the images that fool pixel-only AI.

Each injector produces (pixels, metadata) pairs reproducing one of the AI
failure cases in the paper's Figure 1:

- :func:`make_fake` — pixels rendered as severe damage, truth is NO_DAMAGE
  (photoshopped disaster), metadata flags ``is_fake``;
- :func:`make_closeup` — a harmless crack close-up whose texture reads as
  severe, truth NO_DAMAGE;
- :func:`make_low_resolution` — a genuine scene blurred down to 4x4 effective
  resolution, label preserved;
- :func:`make_implicit` — a visually calm scene whose story (people being
  carried from a damaged area) makes the truth SEVERE.
"""

from __future__ import annotations

import numpy as np

from repro.data.images import IMAGE_SIZE, render_scene
from repro.data.metadata import (
    DamageLabel,
    FailureArchetype,
    ImageMetadata,
    SceneType,
)

__all__ = [
    "make_regular",
    "make_fake",
    "make_closeup",
    "make_low_resolution",
    "make_implicit",
    "ARCHETYPE_MAKERS",
]


def _pick_scene(rng: np.random.Generator) -> SceneType:
    return list(SceneType)[int(rng.integers(len(SceneType)))]


def make_regular(
    image_id: int,
    true_label: DamageLabel,
    rng: np.random.Generator,
    size: int = IMAGE_SIZE,
) -> tuple[np.ndarray, ImageMetadata]:
    """An honest image: pixels express the true label."""
    scene = _pick_scene(rng)
    pixels = render_scene(true_label, scene, rng, size=size)
    meta = ImageMetadata(
        image_id=image_id,
        true_label=true_label,
        archetype=FailureArchetype.NONE,
        scene=scene,
        is_fake=False,
        people_in_danger=bool(
            true_label is DamageLabel.SEVERE and rng.random() < 0.3
        ),
        apparent_label=true_label,
    )
    return pixels, meta


def make_fake(
    image_id: int,
    true_label: DamageLabel,
    rng: np.random.Generator,
    size: int = IMAGE_SIZE,
) -> tuple[np.ndarray, ImageMetadata]:
    """A photoshopped image: severe-looking pixels, NO_DAMAGE truth.

    ``true_label`` is ignored (fakes are by definition not real damage);
    accepted for a uniform maker signature.
    """
    del true_label
    scene = _pick_scene(rng)
    # Pixel-identical to a genuine severe-damage photo: the photoshopping is
    # only detectable from the story (metadata), never from low-level
    # features — this is what makes the failure *innate* to pixel-only AI.
    pixels = render_scene(DamageLabel.SEVERE, scene, rng, size=size)
    meta = ImageMetadata(
        image_id=image_id,
        true_label=DamageLabel.NO_DAMAGE,
        archetype=FailureArchetype.FAKE,
        scene=scene,
        is_fake=True,
        people_in_danger=False,
        apparent_label=DamageLabel.SEVERE,
    )
    return pixels, meta


def make_closeup(
    image_id: int,
    true_label: DamageLabel,
    rng: np.random.Generator,
    size: int = IMAGE_SIZE,
) -> tuple[np.ndarray, ImageMetadata]:
    """A close-up of a minor crack: severe texture, NO_DAMAGE truth."""
    del true_label
    # The crack close-up's low-level statistics (edge density, dark jagged
    # texture) are those of a severe-damage photo; only the story — "this is
    # a harmless pavement crack" — reveals the truth.  Rendered through the
    # severe pathway so pixel-only AI cannot separate it.
    canvas = render_scene(DamageLabel.SEVERE, SceneType.ROAD, rng, size=size)
    meta = ImageMetadata(
        image_id=image_id,
        true_label=DamageLabel.NO_DAMAGE,
        archetype=FailureArchetype.CLOSEUP,
        scene=SceneType.ROAD,
        is_fake=False,
        people_in_danger=False,
        apparent_label=DamageLabel.SEVERE,
    )
    return canvas, meta


def make_low_resolution(
    image_id: int,
    true_label: DamageLabel,
    rng: np.random.Generator,
    size: int = IMAGE_SIZE,
) -> tuple[np.ndarray, ImageMetadata]:
    """A genuine scene degraded to ~4x4 effective resolution + noise."""
    scene = _pick_scene(rng)
    pixels = render_scene(true_label, scene, rng, size=size)
    factor = size // 4
    coarse = pixels.reshape(4, factor, 4, factor, 3).mean(axis=(1, 3))
    pixels = np.repeat(np.repeat(coarse, factor, axis=0), factor, axis=1)
    pixels += rng.normal(0.0, 0.08, pixels.shape)
    np.clip(pixels, 0.0, 1.0, out=pixels)
    meta = ImageMetadata(
        image_id=image_id,
        true_label=true_label,
        archetype=FailureArchetype.LOW_RESOLUTION,
        scene=scene,
        is_fake=False,
        people_in_danger=bool(true_label is DamageLabel.SEVERE),
        apparent_label=true_label,
    )
    return pixels, meta


def make_implicit(
    image_id: int,
    true_label: DamageLabel,
    rng: np.random.Generator,
    size: int = IMAGE_SIZE,
) -> tuple[np.ndarray, ImageMetadata]:
    """A calm-looking scene whose story makes the truth SEVERE."""
    del true_label
    # The image shows no damage texture at all (e.g. injured kids being
    # carried away from the area): pixels say NO_DAMAGE, the story says
    # SEVERE.  Rendered through the honest no-damage pathway so pixel-only
    # AI cannot separate it.
    pixels = render_scene(DamageLabel.NO_DAMAGE, SceneType.PEOPLE, rng, size=size)
    meta = ImageMetadata(
        image_id=image_id,
        true_label=DamageLabel.SEVERE,
        archetype=FailureArchetype.IMPLICIT,
        scene=SceneType.PEOPLE,
        is_fake=False,
        people_in_danger=True,
        apparent_label=DamageLabel.NO_DAMAGE,
    )
    return pixels, meta


#: Maker function per archetype (regular images under ``NONE``).
ARCHETYPE_MAKERS = {
    FailureArchetype.NONE: make_regular,
    FailureArchetype.FAKE: make_fake,
    FailureArchetype.CLOSEUP: make_closeup,
    FailureArchetype.LOW_RESOLUTION: make_low_resolution,
    FailureArchetype.IMPLICIT: make_implicit,
}
