"""Export synthetic images for visual inspection (pure-Python PPM/PGM).

The synthetic dataset is the reproduction's most load-bearing substitution,
so users should be able to *look* at it.  PPM (portable pixmap) needs no
imaging dependency and opens in any viewer; :func:`export_dataset_sample`
dumps a labeled contact sheet of images per class and archetype.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.data.dataset import DisasterDataset
from repro.data.metadata import FailureArchetype

__all__ = ["to_ppm", "save_ppm", "export_dataset_sample"]


def to_ppm(image: np.ndarray) -> bytes:
    """Encode an (H, W, 3) float image in [0, 1] as binary PPM (P6)."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) image, got shape {image.shape}")
    if not np.all(np.isfinite(image)):
        raise ValueError("image contains non-finite values")
    pixels = np.clip(np.round(image * 255.0), 0, 255).astype(np.uint8)
    height, width = pixels.shape[:2]
    header = f"P6\n{width} {height}\n255\n".encode("ascii")
    return header + pixels.tobytes()


def save_ppm(image: np.ndarray, path: str | Path) -> Path:
    """Write one image to ``path`` as PPM; returns the path."""
    path = Path(path)
    path.write_bytes(to_ppm(image))
    return path


def export_dataset_sample(
    dataset: DisasterDataset,
    directory: str | Path,
    per_group: int = 4,
) -> list[Path]:
    """Dump up to ``per_group`` example images per failure archetype.

    Files are named ``<archetype>_<truelabel>_<imageid>.ppm``; returns the
    written paths.
    """
    if per_group <= 0:
        raise ValueError(f"per_group must be positive, got {per_group}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    counts = {archetype: 0 for archetype in FailureArchetype}
    for image in dataset:
        archetype = image.metadata.archetype
        if counts[archetype] >= per_group:
            continue
        counts[archetype] += 1
        name = (
            f"{archetype.value}_{image.metadata.true_label.name.lower()}"
            f"_{image.image_id:04d}.ppm"
        )
        written.append(save_ppm(image.pixels, directory / name))
    return written
