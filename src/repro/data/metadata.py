"""Labels, failure archetypes, and image metadata.

Each synthetic image carries two kinds of information:

- **pixels** — all the AI experts ever see;
- **metadata** — the high-level "story" of the image (is it fake? what event
  is actually happening?), which only crowd workers can read, mirroring the
  paper's observation that humans assess context the CNNs cannot.

The four failure archetypes are exactly the AI failure cases of the paper's
Figure 1: fake images and close-ups that *look* severely damaged, and
low-resolution or implicit images whose damage the pixels hide.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, IntEnum

__all__ = ["DamageLabel", "FailureArchetype", "SceneType", "ImageMetadata"]


class DamageLabel(IntEnum):
    """The three output severity levels of the DDA application (Figure 2)."""

    NO_DAMAGE = 0
    MODERATE = 1
    SEVERE = 2

    @classmethod
    def count(cls) -> int:
        """Number of damage classes."""
        return len(cls)


class FailureArchetype(str, Enum):
    """Why an image is hard for pixel-only classifiers (paper Figure 1).

    - ``NONE`` — a regular image whose pixels honestly reflect its label.
    - ``FAKE`` — photoshopped: pixels scream severe damage, truth is none.
    - ``CLOSEUP`` — a harmless close-up (e.g. a pavement crack) whose texture
      reads as severe damage.
    - ``LOW_RESOLUTION`` — a genuine disaster scene too degraded for
      low-level features.
    - ``IMPLICIT`` — damage conveyed by the story (injured people being
      carried away), not by damage texture.
    """

    NONE = "none"
    FAKE = "fake"
    CLOSEUP = "closeup"
    LOW_RESOLUTION = "low_resolution"
    IMPLICIT = "implicit"

    @classmethod
    def deceptive(cls) -> tuple["FailureArchetype", ...]:
        """Archetypes whose pixels actively mislead the AI."""
        return (cls.FAKE, cls.CLOSEUP, cls.IMPLICIT)


class SceneType(str, Enum):
    """What the image depicts; one of the questionnaire's fixed answers."""

    ROAD = "road"
    BUILDING = "building"
    BRIDGE = "bridge"
    VEHICLE = "vehicle"
    PEOPLE = "people"


@dataclass(frozen=True)
class ImageMetadata:
    """The human-readable context of an image.

    Attributes
    ----------
    image_id:
        Unique id within its dataset.
    true_label:
        Ground-truth damage severity.
    archetype:
        The failure archetype (``NONE`` for regular images).
    scene:
        What the image shows.
    is_fake:
        Whether the image is photoshopped/staged (True only for ``FAKE``).
    people_in_danger:
        Whether the story involves people at risk (drives ``IMPLICIT``).
    apparent_label:
        The label the *pixels* suggest — equals ``true_label`` for honest
        images and differs for deceptive archetypes.  Used by the image
        synthesizer and by tests; never shown to models or workers.
    """

    image_id: int
    true_label: DamageLabel
    archetype: FailureArchetype
    scene: SceneType
    is_fake: bool
    people_in_danger: bool
    apparent_label: DamageLabel

    def __post_init__(self) -> None:
        if self.is_fake != (self.archetype is FailureArchetype.FAKE):
            raise ValueError("is_fake must be True exactly for FAKE archetype")
        if self.archetype is FailureArchetype.NONE and (
            self.apparent_label != self.true_label
        ):
            raise ValueError("honest images must have apparent == true label")

    @property
    def is_deceptive(self) -> bool:
        """Whether pixels actively contradict the true label."""
        return self.archetype in FailureArchetype.deceptive()
