"""Dataset construction: the synthetic Ecuador-earthquake stand-in.

The paper uses 960 labeled social-media images (560 train / 400 test) with
balanced class labels.  :func:`build_dataset` reproduces that structure
synthetically, injecting a configurable fraction of failure-archetype images
while keeping the three damage classes balanced overall.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.data.archetypes import ARCHETYPE_MAKERS
from repro.data.images import IMAGE_SIZE
from repro.data.metadata import DamageLabel, FailureArchetype, ImageMetadata

__all__ = ["DisasterImage", "DisasterDataset", "build_dataset", "train_test_split"]


@dataclass(frozen=True)
class DisasterImage:
    """One image: the pixels (AI's view) plus the metadata (the human story)."""

    pixels: np.ndarray
    metadata: ImageMetadata

    @property
    def image_id(self) -> int:
        return self.metadata.image_id

    @property
    def true_label(self) -> DamageLabel:
        return self.metadata.true_label


@dataclass
class DisasterDataset:
    """An ordered collection of :class:`DisasterImage`."""

    images: list[DisasterImage] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int) -> DisasterImage:
        return self.images[index]

    def __iter__(self):
        return iter(self.images)

    def subset(self, indices: np.ndarray | list[int]) -> "DisasterDataset":
        """A new dataset containing the images at ``indices`` (in order)."""
        return DisasterDataset([self.images[int(i)] for i in indices])

    def pixels_nchw(self) -> np.ndarray:
        """All pixels as an ``(n, 3, H, W)`` batch for the CNN experts."""
        if not self.images:
            raise ValueError("dataset is empty")
        stacked = np.stack([img.pixels for img in self.images])
        return stacked.transpose(0, 3, 1, 2)

    def pixels_hwc(self) -> np.ndarray:
        """All pixels as an ``(n, H, W, 3)`` batch for feature extractors."""
        if not self.images:
            raise ValueError("dataset is empty")
        return np.stack([img.pixels for img in self.images])

    def labels(self) -> np.ndarray:
        """Ground-truth labels as an int array."""
        return np.array([int(img.true_label) for img in self.images], dtype=np.int64)

    def metadata(self) -> list[ImageMetadata]:
        """Metadata of every image, in order."""
        return [img.metadata for img in self.images]

    def class_counts(self) -> dict[DamageLabel, int]:
        """Images per ground-truth class."""
        counts = Counter(img.true_label for img in self.images)
        return {label: counts.get(label, 0) for label in DamageLabel}

    def archetype_counts(self) -> dict[FailureArchetype, int]:
        """Images per failure archetype."""
        counts = Counter(img.metadata.archetype for img in self.images)
        return {a: counts.get(a, 0) for a in FailureArchetype}


#: How the archetype budget is split among the deceptive/hard cases.
_ARCHETYPE_MIX = (
    (FailureArchetype.FAKE, 0.3),
    (FailureArchetype.CLOSEUP, 0.2),
    (FailureArchetype.LOW_RESOLUTION, 0.25),
    (FailureArchetype.IMPLICIT, 0.25),
)


def build_dataset(
    n_images: int = 960,
    archetype_fraction: float = 0.18,
    rng: np.random.Generator | None = None,
    size: int = IMAGE_SIZE,
) -> DisasterDataset:
    """Build a class-balanced synthetic dataset with failure archetypes.

    Parameters
    ----------
    n_images:
        Total images (paper: 960).
    archetype_fraction:
        Fraction of images drawn from the four failure archetypes; the rest
        are honest renders.  The class balance is restored by choosing the
        honest images' labels to offset the archetypes' skew.
    rng:
        Randomness source; a fresh default generator when omitted.
    """
    if n_images < DamageLabel.count():
        raise ValueError(f"need at least {DamageLabel.count()} images")
    if not 0.0 <= archetype_fraction <= 0.5:
        raise ValueError(
            f"archetype_fraction must be in [0, 0.5], got {archetype_fraction}"
        )
    if rng is None:
        rng = np.random.default_rng()

    n_archetype = int(round(n_images * archetype_fraction))
    per_class_target = n_images // DamageLabel.count()
    images: list[DisasterImage] = []
    next_id = 0

    # 1. Archetype images.
    for archetype, share in _ARCHETYPE_MIX:
        count = int(round(n_archetype * share))
        maker = ARCHETYPE_MAKERS[archetype]
        for _ in range(count):
            if archetype is FailureArchetype.LOW_RESOLUTION:
                label = DamageLabel(int(rng.integers(DamageLabel.count())))
            else:
                label = DamageLabel.NO_DAMAGE  # ignored by deceptive makers
            pixels, meta = maker(next_id, label, rng, size=size)
            images.append(DisasterImage(pixels, meta))
            next_id += 1

    # 2. Honest images chosen to restore class balance.
    counts = Counter(img.true_label for img in images)
    remaining = n_images - len(images)
    deficits = {
        label: max(per_class_target - counts.get(label, 0), 0)
        for label in DamageLabel
    }
    total_deficit = sum(deficits.values())
    plan: list[DamageLabel] = []
    for label in DamageLabel:
        if total_deficit > 0:
            quota = int(round(remaining * deficits[label] / total_deficit))
        else:
            quota = remaining // DamageLabel.count()
        plan.extend([label] * quota)
    # Round-off: top up with cycling labels until the plan is full.
    cycle = 0
    while len(plan) < remaining:
        plan.append(DamageLabel(cycle % DamageLabel.count()))
        cycle += 1
    plan = plan[:remaining]
    maker = ARCHETYPE_MAKERS[FailureArchetype.NONE]
    for label in plan:
        pixels, meta = maker(next_id, label, rng, size=size)
        images.append(DisasterImage(pixels, meta))
        next_id += 1

    order = rng.permutation(len(images))
    return DisasterDataset([images[int(i)] for i in order])


def train_test_split(
    dataset: DisasterDataset,
    n_train: int = 560,
    rng: np.random.Generator | None = None,
) -> tuple[DisasterDataset, DisasterDataset]:
    """Stratified train/test split preserving class proportions.

    The paper uses 560 training and 400 test images out of 960.
    """
    n = len(dataset)
    if not 0 < n_train < n:
        raise ValueError(f"n_train must be in (0, {n}), got {n_train}")
    if rng is None:
        rng = np.random.default_rng()
    labels = dataset.labels()
    train_idx: list[int] = []
    test_idx: list[int] = []
    train_fraction = n_train / n
    for label in np.unique(labels):
        members = np.flatnonzero(labels == label)
        members = rng.permutation(members)
        cut = int(round(train_fraction * len(members)))
        train_idx.extend(members[:cut].tolist())
        test_idx.extend(members[cut:].tolist())
    # Stratified rounding can drift by a couple of samples; rebalance exactly.
    while len(train_idx) > n_train:
        test_idx.append(train_idx.pop())
    while len(train_idx) < n_train:
        train_idx.append(test_idx.pop())
    return dataset.subset(rng.permutation(train_idx)), dataset.subset(
        rng.permutation(test_idx)
    )
