"""Experiment orchestration shared by all table/figure drivers.

:func:`prepare` builds the whole evaluation world once — dataset, split,
trained committee, worker population, pilot study — and the per-experiment
drivers then derive schemes, streams and platforms from it.  Everything is
seeded through one :class:`~repro.utils.rng.SeedSequencer`, so a driver is
reproducible from ``(seed, config)`` alone.

``fast=True`` shrinks the dataset, stream and models by roughly an order of
magnitude; it exists for the test suite and for smoke-running the benchmark
drivers, and is *not* used for the recorded EXPERIMENTS.md numbers.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.core.committee import Committee
from repro.core.config import CrowdLearnConfig
from repro.core.guards import GuardPolicy, ModelGuard
from repro.core.resilience import ResiliencePolicy
from repro.core.system import CrowdLearnSystem, RunOutcome
from repro.crowd.delay import DelayModel
from repro.crowd.faults import FaultInjector
from repro.crowd.pilot import PilotResult, run_pilot_study
from repro.crowd.platform import CrowdsourcingPlatform
from repro.crowd.population import WorkerPopulation
from repro.crowd.quality import QualityModel
from repro.data.dataset import DisasterDataset, build_dataset, train_test_split
from repro.data.stream import SensingCycleStream
from repro.eval.baselines import (
    AIOnlyScheme,
    EnsembleScheme,
    HybridALScheme,
    HybridParaScheme,
    SchemeResult,
)
from repro.models.registry import create_model, default_committee_names
from repro.telemetry.runtime import Telemetry
from repro.utils.rng import SeedSequencer

__all__ = ["ExperimentSetup", "prepare", "fast_config", "run_all_schemes"]

#: Model-constructor overrides used in fast mode (smaller, fewer epochs).
_FAST_MODEL_KWARGS: dict[str, dict] = {
    "VGG16": {"epochs": 3, "width": 4},
    "BoVW": {"epochs": 8, "vocabulary_size": 8},
    "DDM": {"epochs": 3, "width": 4, "head_epochs": 10},
}


def fast_config() -> CrowdLearnConfig:
    """A miniature deployment for tests and smoke runs."""
    return CrowdLearnConfig(
        n_cycles=8,
        images_per_cycle=5,
        cycles_per_context=2,
        budget_usd=4.0,
        pilot_queries_per_cell=4,
        n_workers=40,
        mic_replay_size=10,
    )


@dataclass
class ExperimentSetup:
    """The shared evaluation world for one (seed, config) pair."""

    config: CrowdLearnConfig
    seed: int
    seeds: SeedSequencer
    train_set: DisasterDataset
    test_set: DisasterDataset
    base_committee: Committee
    population: WorkerPopulation
    pilot: PilotResult
    fast: bool

    def make_platform(self, name: str) -> CrowdsourcingPlatform:
        """A fresh platform sharing the worker population (per-scheme RNG)."""
        return CrowdsourcingPlatform(
            population=self.population,
            delay_model=DelayModel(),
            quality_model=QualityModel(),
            rng=self.seeds.get(f"platform-{name}"),
            workers_per_query=self.config.workers_per_query,
        )

    def make_stream(self, name: str = "stream") -> SensingCycleStream:
        """A sensing-cycle stream over the test set (per-use RNG)."""
        return SensingCycleStream(
            self.test_set,
            n_cycles=self.config.n_cycles,
            images_per_cycle=self.config.images_per_cycle,
            cycles_per_context=self.config.cycles_per_context,
            rng=self.seeds.get(f"stream-{name}"),
        )

    def clone_committee(self) -> Committee:
        """An independent deep copy of the trained committee.

        Schemes that mutate their models (CrowdLearn, Hybrid-AL) each get
        their own copy so runs do not contaminate one another.
        """
        return copy.deepcopy(self.base_committee)

    def fixed_incentive_cents(self) -> float:
        """The fixed baselines' incentive: total budget / total queries."""
        return self.config.budget_cents / max(self.config.total_queries, 1)


def prepare(
    seed: int = 0,
    config: CrowdLearnConfig | None = None,
    fast: bool = False,
    n_images: int = 960,
    n_train: int = 560,
) -> ExperimentSetup:
    """Build the shared evaluation world.

    Parameters
    ----------
    seed:
        Root seed; every stochastic component derives from it by name.
    config:
        Deployment configuration; the paper's defaults when omitted
        (or :func:`fast_config` when ``fast`` is set).
    fast:
        Shrink dataset/stream/models for tests and smoke runs.
    n_images, n_train:
        Dataset size and split (paper: 960 / 560); overridden in fast mode.
    """
    if config is None:
        config = fast_config() if fast else CrowdLearnConfig()
    if fast:
        n_images, n_train = 180, 120
    required = config.n_cycles * config.images_per_cycle
    if n_images - n_train < required:
        raise ValueError(
            f"test split ({n_images - n_train}) cannot feed "
            f"{config.n_cycles}x{config.images_per_cycle} cycles"
        )
    seeds = SeedSequencer(seed)
    dataset = build_dataset(n_images=n_images, rng=seeds.get("dataset"))
    train_set, test_set = train_test_split(
        dataset, n_train=n_train, rng=seeds.get("split")
    )
    model_kwargs = _FAST_MODEL_KWARGS if fast else {}
    experts = [
        create_model(name, **model_kwargs.get(name, {}))
        for name in default_committee_names()
    ]
    committee = Committee(experts).fit(train_set, seeds.get("committee"))
    population = WorkerPopulation(config.n_workers, seeds.get("population"))
    pilot_platform = CrowdsourcingPlatform(
        population=population,
        delay_model=DelayModel(),
        quality_model=QualityModel(),
        rng=seeds.get("pilot-platform"),
        workers_per_query=config.workers_per_query,
    )
    pilot = run_pilot_study(
        pilot_platform,
        train_set,
        seeds.get("pilot"),
        incentive_levels=config.incentive_levels,
        queries_per_cell=config.pilot_queries_per_cell,
    )
    return ExperimentSetup(
        config=config,
        seed=seed,
        seeds=seeds,
        train_set=train_set,
        test_set=test_set,
        base_committee=committee,
        population=population,
        pilot=pilot,
        fast=fast,
    )


def scheme_result_from_run(name: str, outcome: RunOutcome) -> SchemeResult:
    """Convert a CrowdLearn :class:`RunOutcome` into a :class:`SchemeResult`."""
    delays = [c.crowd_delay for c in outcome.cycles if c.query_indices.size]
    contexts = [c.context for c in outcome.cycles if c.query_indices.size]
    return SchemeResult(
        name=name,
        y_true=outcome.y_true(),
        y_pred=outcome.y_pred(),
        scores=outcome.scores(),
        crowd_delays=delays,
        crowd_delay_contexts=contexts,
        cost_cents=outcome.total_cost_cents(),
    )


def build_crowdlearn(
    setup: ExperimentSetup,
    config: CrowdLearnConfig | None = None,
    resilience: ResiliencePolicy | None = None,
    faults: FaultInjector | None = None,
    platform_name: str = "crowdlearn",
    guards: "ModelGuard | GuardPolicy | None" = None,
    telemetry: "Telemetry | None" = None,
    seed: int | None = None,
    event_id: str | None = None,
    cache: "PredictionCache | None" = None,
) -> CrowdLearnSystem:
    """Assemble a CrowdLearn system from the shared setup.

    ``faults`` attaches a :class:`~repro.crowd.faults.FaultInjector` to the
    system's (fresh) platform and ``resilience`` selects the degradation
    policy — both used by the chaos experiments; the defaults reproduce the
    original fault-free, fully-resilient (but never-triggered) deployment.
    ``guards`` selects the learning-loop guardrail policy (see
    :mod:`repro.core.guards`); ``None`` follows the config.
    ``telemetry`` instruments the system and its platform (see
    :mod:`repro.telemetry`); ``None`` keeps the no-op default.
    ``seed`` overrides the setup's root seed for the system's own named
    streams (the serving layer derives one per event); ``event_id`` and
    ``cache`` let the serving layer give each deployment a namespaced
    view of one shared prediction cache (see :mod:`repro.serve`).
    """
    platform = setup.make_platform(platform_name)
    if faults is not None:
        platform.faults = faults
    if telemetry is not None:
        platform.telemetry = telemetry
    return CrowdLearnSystem.build(
        training_set=setup.train_set,
        config=config or setup.config,
        seed=setup.seed if seed is None else seed,
        committee=setup.clone_committee(),
        platform=platform,
        pilot=setup.pilot,
        resilience=resilience,
        guards=guards,
        telemetry=telemetry,
        cache=cache,
        event_id=event_id,
    )


def run_all_schemes(setup: ExperimentSetup) -> dict[str, SchemeResult]:
    """Run all seven compared schemes (Table II's rows) on fresh streams.

    Every scheme sees an identically-distributed (same test pool, same
    config) stream; streams use per-scheme RNG, as different schemes on
    MTurk could not share workers' exact draws anyway.
    """
    config = setup.config
    results: dict[str, SchemeResult] = {}

    # CrowdLearn.
    system = build_crowdlearn(setup)
    outcome = system.run(setup.make_stream("crowdlearn"))
    results["CrowdLearn"] = scheme_result_from_run("CrowdLearn", outcome)

    # AI-only experts (reuse the trained base committee, never mutated here).
    for expert in setup.base_committee.experts:
        scheme = AIOnlyScheme(expert)
        results[scheme.name] = scheme.run(setup.make_stream(scheme.name))

    # Ensemble.
    ensemble = EnsembleScheme(setup.base_committee.experts, setup.train_set)
    results["Ensemble"] = ensemble.run(setup.make_stream("ensemble"))

    # Hybrid-Para (its AI half is the single VGG16 expert, as in [53]-style
    # parallel systems that pair one model with the crowd).
    vgg = next(e for e in setup.base_committee.experts if e.name == "VGG16")
    para = HybridParaScheme(
        model=vgg,
        platform=setup.make_platform("hybrid-para"),
        incentive_cents=setup.fixed_incentive_cents(),
        queries_per_cycle=config.queries_per_cycle,
        rng=setup.seeds.get("hybrid-para"),
    )
    results["Hybrid-Para"] = para.run(setup.make_stream("hybrid-para"))

    # Hybrid-AL retrains a single classifier (Laws et al. use one supervised
    # learner), so its committee is one retrainable clone of VGG16.
    al = HybridALScheme(
        committee=Committee([copy.deepcopy(vgg)]),
        platform=setup.make_platform("hybrid-al"),
        incentive_cents=setup.fixed_incentive_cents(),
        queries_per_cycle=config.queries_per_cycle,
        replay_pool=setup.train_set,
        rng=setup.seeds.get("hybrid-al"),
        replay_size=2 * config.mic_replay_size,
    )
    results["Hybrid-AL"] = al.run(setup.make_stream("hybrid-al"))
    return results
