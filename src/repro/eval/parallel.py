"""Parallel execution of independent experiment arms.

Experiment drivers like the chaos sweep run several *arms* — one fault
intensity, one scheme, one policy — that share nothing at runtime: each arm
builds its own world from ``(seed, arm name)`` through the
:class:`~repro.utils.rng.SeedSequencer`, so arms are embarrassingly
parallel.  :func:`run_arms` executes a list of :class:`ArmSpec` across
worker processes (or serially, which must produce identical results — the
test suite asserts it) and collects each arm's return value plus its
telemetry counters.

Design constraints:

- **Arm functions must be module-level** (picklable by reference).  An
  :class:`ArmSpec` carries the function plus keyword arguments; everything
  an arm needs is rebuilt inside the worker from those arguments.
- **Only counters are compared across runs.**  Each arm runs under a fresh
  :class:`~repro.telemetry.runtime.Telemetry`; its counter values are
  deterministic functions of the arm's seed, while span-duration histograms
  are wall-time measurements and therefore excluded from
  :attr:`ArmResult.telemetry`.
- **Failures are data, not crashes.**  An arm that raises produces an
  :class:`ArmResult` with ``error`` set to the traceback; the other arms
  complete normally.
"""

from __future__ import annotations

import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.crowd.faults import FaultInjector
from repro.telemetry.runtime import Telemetry, use_telemetry

__all__ = [
    "ArmSpec",
    "ArmResult",
    "run_arms",
    "chaos_arm",
    "run_chaos_arms",
]


@dataclass(frozen=True)
class ArmSpec:
    """One independent experiment arm: a module-level callable + kwargs."""

    name: str
    runner: Callable[..., Any]
    kwargs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("arm name must be non-empty")
        if not callable(self.runner):
            raise TypeError(f"runner for arm {self.name!r} is not callable")


@dataclass(frozen=True)
class ArmResult:
    """What one arm produced.

    ``result`` is the runner's return value (``None`` on failure),
    ``telemetry`` maps counter names (with label suffixes) to values from
    the arm's private registry, and ``error`` carries the formatted
    traceback when the runner raised.
    """

    name: str
    result: Any = None
    telemetry: dict[str, float] = field(default_factory=dict)
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _counter_values(telemetry: Telemetry) -> dict[str, float]:
    """Counter name (+ label suffix) -> value, sorted for stable equality."""
    values = {
        instrument.name + instrument.label_suffix(): instrument.value
        for instrument in telemetry.registry
        if instrument.kind == "counter"
    }
    return dict(sorted(values.items()))


def _execute_arm(spec: ArmSpec) -> ArmResult:
    """Run one arm under a fresh process-default telemetry.

    Module-level so worker processes can import it by reference; also the
    serial path, so serial and parallel runs share every instruction.
    """
    telemetry = Telemetry()
    try:
        with use_telemetry(telemetry):
            result = spec.runner(**spec.kwargs)
    except Exception:  # noqa: BLE001 - failures become data
        return ArmResult(
            name=spec.name,
            telemetry=_counter_values(telemetry),
            error=traceback.format_exc(),
        )
    return ArmResult(
        name=spec.name, result=result, telemetry=_counter_values(telemetry)
    )


def run_arms(
    specs: list[ArmSpec], max_workers: int | None = None
) -> list[ArmResult]:
    """Execute ``specs`` and return their results in spec order.

    ``max_workers`` caps the worker-process pool; ``None`` uses one worker
    per arm, and values <= 1 run serially in-process.  Results are ordered
    by spec, not by completion, so callers can zip them with their specs.
    """
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"arm names must be unique, got {names}")
    if not specs:
        return []
    if max_workers is None:
        max_workers = len(specs)
    if max_workers <= 1:
        return [_execute_arm(spec) for spec in specs]
    with ProcessPoolExecutor(max_workers=min(max_workers, len(specs))) as pool:
        return list(pool.map(_execute_arm, specs))


# ---------------------------------------------------------------------------
# A self-contained chaos arm (the parallel twin of run_chaos's sweep body)
# ---------------------------------------------------------------------------


def chaos_arm(
    seed: int, intensity: float, fast: bool = True
) -> dict[str, float]:
    """Run the resilient CrowdLearn loop at one chaos intensity.

    Self-contained: builds the evaluation world from ``seed`` inside the
    (possibly worker) process, scales the default fault plan by
    ``intensity`` and runs the full deployment.  Seeding matches
    :func:`repro.eval.experiments.chaos.run_chaos`'s per-intensity naming
    scheme prefixed with ``chaos-arm``, so arms never share RNG streams.
    """
    from repro.eval.experiments.chaos import _metrics, default_chaos_plan
    from repro.eval.runner import build_crowdlearn, prepare

    setup = prepare(seed=seed, fast=fast)
    tag = f"chaos-arm-{intensity:.2f}"
    plan = default_chaos_plan(setup).scaled(intensity)
    faults = FaultInjector(plan, rng=setup.seeds.get(f"{tag}-faults"))
    system = build_crowdlearn(
        setup, faults=faults, platform_name=f"{tag}-resilient"
    )
    outcome = system.run(setup.make_stream(f"{tag}-resilient"))
    f1, delay, n_cycles = _metrics(outcome)
    resilience = outcome.resilience_totals()
    return {
        "intensity": float(intensity),
        "macro_f1": float(f1),
        "mean_crowd_delay": float(delay),
        "cycles_completed": int(n_cycles),
        "fault_events": int(faults.total_events()),
        "retries": float(resilience.retries),
        "dropped_queries": float(resilience.dropped_queries),
        "refunds": float(resilience.refunds),
        "cost_cents": float(outcome.total_cost_cents()),
    }


def run_chaos_arms(
    seed: int = 0,
    intensities: tuple[float, ...] = (0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0),
    fast: bool = True,
    max_workers: int | None = None,
) -> list[ArmResult]:
    """Run one :func:`chaos_arm` per intensity, optionally in parallel.

    With ``max_workers <= 1`` the arms run serially in-process; either way
    the per-arm results are identical, because every arm derives all of
    its randomness from ``(seed, intensity)`` alone.
    """
    specs = [
        ArmSpec(
            name=f"chaos-arm-{intensity:.2f}",
            runner=chaos_arm,
            kwargs={"seed": seed, "intensity": intensity, "fast": fast},
        )
        for intensity in intensities
    ]
    return run_arms(specs, max_workers=max_workers)
