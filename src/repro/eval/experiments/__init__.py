"""Per-table/figure experiment drivers (see DESIGN.md's experiment index)."""

from repro.eval.experiments.chaos import (
    DEFAULT_INTENSITIES,
    ChaosData,
    GuardChaosData,
    adversarial_label_plan,
    default_chaos_plan,
    run_chaos,
    run_guard_chaos,
)
from repro.eval.experiments.fig8 import Fig8Data, run_fig8
from repro.eval.experiments.fig9 import DEFAULT_FRACTIONS, Fig9Data, run_fig9
from repro.eval.experiments.fig10_11 import (
    DEFAULT_BUDGETS_USD,
    BudgetSweepData,
    run_budget_sweep,
)
from repro.eval.experiments.pilot_experiments import (
    Fig5Data,
    Fig6Data,
    run_fig5,
    run_fig6,
)
from repro.eval.experiments.table1 import Table1Data, run_table1
from repro.eval.experiments.table2 import (
    SCHEME_ORDER,
    Fig7Data,
    Table2Data,
    Table3Data,
    run_table2_suite,
)

__all__ = [
    "DEFAULT_INTENSITIES",
    "ChaosData",
    "GuardChaosData",
    "adversarial_label_plan",
    "default_chaos_plan",
    "run_chaos",
    "run_guard_chaos",
    "Fig8Data",
    "run_fig8",
    "DEFAULT_FRACTIONS",
    "Fig9Data",
    "run_fig9",
    "DEFAULT_BUDGETS_USD",
    "BudgetSweepData",
    "run_budget_sweep",
    "Fig5Data",
    "Fig6Data",
    "run_fig5",
    "run_fig6",
    "Table1Data",
    "run_table1",
    "SCHEME_ORDER",
    "Fig7Data",
    "Table2Data",
    "Table3Data",
    "run_table2_suite",
]
