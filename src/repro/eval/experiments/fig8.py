"""Figure 8: crowd delay per temporal context — IPD vs fixed vs random.

Each incentive policy prices the same volume of queries (one stream's worth)
under the same total budget; the crowd's realized delays per context are the
figure's bars.  The IPD bandit is warm-started from the pilot, as in the
deployed system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bandit.base import ContextualPolicy
from repro.bandit.budget import BudgetExhausted, BudgetLedger
from repro.bandit.policies import FixedIncentivePolicy, RandomIncentivePolicy
from repro.core.ipd import IncentivePolicyDesigner
from repro.eval.reporting import format_series
from repro.eval.runner import ExperimentSetup
from repro.utils.clock import TemporalContext

__all__ = ["Fig8Data", "run_fig8"]


@dataclass(frozen=True)
class Fig8Data:
    """Mean crowd delay per context for each incentive policy."""

    delays: dict[str, dict[TemporalContext, float]]

    def render(self) -> str:
        contexts = TemporalContext.ordered()
        series = {
            name: [per_context[c] for c in contexts]
            for name, per_context in self.delays.items()
        }
        return format_series(
            "context",
            [c.value for c in contexts],
            series,
            title="Figure 8: crowd delay (s) at different temporal contexts",
            float_format="{:.1f}",
        )


def _nearest_arm(arms: tuple[float, ...], value: float) -> int:
    return int(np.argmin([abs(a - value) for a in arms]))


def _run_policy(
    setup: ExperimentSetup,
    name: str,
    policy: ContextualPolicy,
    warm_start: bool,
) -> dict[TemporalContext, float]:
    config = setup.config
    ledger = BudgetLedger(config.budget_cents)
    ipd = IncentivePolicyDesigner(
        arms=config.incentive_levels,
        ledger=ledger,
        total_queries=max(config.total_queries, 1),
        policy=policy,
        queries_per_context=config.queries_per_context(),
    )
    if warm_start:
        ipd.warm_start(setup.pilot)
    platform = setup.make_platform(f"fig8-{name}")
    stream = setup.make_stream(f"fig8-{name}")
    rng = setup.seeds.get(f"fig8-{name}")
    delays: dict[TemporalContext, list[float]] = {}
    for cycle in stream:
        dataset = cycle.dataset()
        n_queries = min(config.queries_per_cycle, len(dataset))
        if n_queries == 0:
            continue
        chosen = rng.choice(len(dataset), size=n_queries, replace=False)
        cycle_delays = []
        for index in chosen:
            arm, incentive = ipd.price_query(cycle.context)
            try:
                result = platform.post_query(
                    dataset[int(index)].metadata,
                    incentive,
                    cycle.context,
                    ledger=ledger,
                )
            except BudgetExhausted:
                break
            ipd.observe(cycle.context, arm, result.mean_delay)
            cycle_delays.append(result.mean_delay)
        if cycle_delays:
            delays.setdefault(cycle.context, []).append(
                float(np.mean(cycle_delays))
            )
    return {context: float(np.mean(v)) for context, v in delays.items()}


def run_fig8(setup: ExperimentSetup) -> Fig8Data:
    """Regenerate Figure 8's three policies on identical workloads."""
    config = setup.config
    n_contexts = len(TemporalContext.ordered())
    arms = config.incentive_levels
    fixed_arm = _nearest_arm(arms, setup.fixed_incentive_cents())

    from repro.bandit.ccmb import UCBALPBandit

    policies: dict[str, tuple[ContextualPolicy, bool]] = {
        "CrowdLearn (IPD)": (
            UCBALPBandit(n_contexts, arms, rng=setup.seeds.get("fig8-ipd")),
            True,
        ),
        "Fixed": (FixedIncentivePolicy(n_contexts, arms, arm=fixed_arm), False),
        "Random": (
            RandomIncentivePolicy(n_contexts, arms, setup.seeds.get("fig8-rand")),
            False,
        ),
    }
    delays = {
        name: _run_policy(setup, name, policy, warm)
        for name, (policy, warm) in policies.items()
    }
    return Fig8Data(delays=delays)
