"""Figures 5 & 6: the pilot study's delay and quality characterization."""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.reporting import format_series
from repro.eval.runner import ExperimentSetup
from repro.utils.clock import TemporalContext

__all__ = ["Fig5Data", "Fig6Data", "run_fig5", "run_fig6"]


@dataclass(frozen=True)
class Fig5Data:
    """Crowd response time vs incentive, one series per temporal context."""

    incentive_levels: tuple[float, ...]
    delays: dict[TemporalContext, list[float]]

    def render(self) -> str:
        series = {
            context.value: self.delays[context]
            for context in TemporalContext.ordered()
        }
        return format_series(
            "incentive_cents",
            list(self.incentive_levels),
            series,
            title="Figure 5: crowd response time (s) vs incentive, per context",
            float_format="{:.1f}",
        )


@dataclass(frozen=True)
class Fig6Data:
    """Label quality vs incentive (pooled over contexts)."""

    incentive_levels: tuple[float, ...]
    quality: list[float]

    def render(self) -> str:
        return format_series(
            "incentive_cents",
            list(self.incentive_levels),
            {"label_accuracy": self.quality},
            title="Figure 6: crowd label quality vs incentive",
        )


def run_fig5(setup: ExperimentSetup) -> Fig5Data:
    """Regenerate Figure 5 from the setup's pilot study."""
    return Fig5Data(
        incentive_levels=setup.pilot.incentive_levels,
        delays=setup.pilot.delay_table(),
    )


def run_fig6(setup: ExperimentSetup) -> Fig6Data:
    """Regenerate Figure 6 from the setup's pilot study."""
    return Fig6Data(
        incentive_levels=setup.pilot.incentive_levels,
        quality=setup.pilot.quality_table(),
    )
