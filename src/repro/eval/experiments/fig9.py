"""Figure 9: query-set size vs classification performance.

Sweeps the fraction of each cycle's images sent to the crowd from 0% (pure
AI) to 100% (pure crowd) and reports macro-F1 for CrowdLearn and the two
hybrid baselines, with the best AI-only scheme (Ensemble) as a flat
reference, exactly as in the paper.
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass

from repro.core.committee import Committee
from repro.eval.baselines import HybridALScheme, HybridParaScheme, EnsembleScheme
from repro.eval.reporting import format_series
from repro.eval.runner import ExperimentSetup, build_crowdlearn, scheme_result_from_run
from repro.metrics.classification import macro_f1

__all__ = ["Fig9Data", "run_fig9", "DEFAULT_FRACTIONS"]

DEFAULT_FRACTIONS: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


@dataclass(frozen=True)
class Fig9Data:
    """Macro-F1 per scheme over query-set fractions."""

    fractions: tuple[float, ...]
    f1: dict[str, list[float]]

    def render(self) -> str:
        return format_series(
            "query_fraction",
            list(self.fractions),
            self.f1,
            title="Figure 9: size of query set vs classification performance (F1)",
        )


def run_fig9(
    setup: ExperimentSetup, fractions: tuple[float, ...] = DEFAULT_FRACTIONS
) -> Fig9Data:
    """Regenerate Figure 9 by sweeping the query fraction."""
    if setup.fast and len(fractions) > 4:
        fractions = (0.0, 0.4, 0.8, 1.0)
    base_config = setup.config
    ensemble = EnsembleScheme(setup.base_committee.experts, setup.train_set)
    ensemble_result = ensemble.run(setup.make_stream("fig9-ensemble"))
    ensemble_f1 = macro_f1(ensemble_result.y_true, ensemble_result.y_pred)
    vgg = next(e for e in setup.base_committee.experts if e.name == "VGG16")

    f1: dict[str, list[float]] = {
        "CrowdLearn": [],
        "Hybrid-AL": [],
        "Hybrid-Para": [],
        "Ensemble": [],
    }
    for fraction in fractions:
        config = dataclasses.replace(base_config, query_fraction=fraction)
        tag = f"fig9-{fraction:.2f}"

        system = build_crowdlearn(setup, config=config)
        outcome = system.run(setup.make_stream(f"{tag}-cl"))
        cl = scheme_result_from_run("CrowdLearn", outcome)
        f1["CrowdLearn"].append(macro_f1(cl.y_true, cl.y_pred))

        incentive = config.budget_cents / max(config.total_queries, 1)
        al = HybridALScheme(
            committee=Committee([copy.deepcopy(vgg)]),
            platform=setup.make_platform(f"{tag}-al"),
            incentive_cents=incentive,
            queries_per_cycle=config.queries_per_cycle,
            replay_pool=setup.train_set,
            rng=setup.seeds.get(f"{tag}-al"),
            replay_size=2 * config.mic_replay_size,
        )
        al_result = al.run(setup.make_stream(f"{tag}-al"))
        f1["Hybrid-AL"].append(macro_f1(al_result.y_true, al_result.y_pred))

        para = HybridParaScheme(
            model=vgg,
            platform=setup.make_platform(f"{tag}-para"),
            incentive_cents=incentive,
            queries_per_cycle=config.queries_per_cycle,
            rng=setup.seeds.get(f"{tag}-para"),
        )
        para_result = para.run(setup.make_stream(f"{tag}-para"))
        f1["Hybrid-Para"].append(macro_f1(para_result.y_true, para_result.y_pred))

        f1["Ensemble"].append(ensemble_f1)
    return Fig9Data(fractions=tuple(fractions), f1=f1)
