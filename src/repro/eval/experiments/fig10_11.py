"""Figures 10 & 11: impact of the crowdsourcing budget on F1 and delay.

Sweeps the total budget from 2 USD (1 cent per query on average) to 40 USD
(20 cents per query) and runs the full CrowdLearn system at each point,
reporting macro-F1 (Figure 10) and mean per-cycle crowd delay (Figure 11).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.eval.reporting import format_series
from repro.eval.runner import ExperimentSetup, build_crowdlearn, scheme_result_from_run
from repro.metrics.classification import macro_f1

__all__ = ["BudgetSweepData", "run_budget_sweep", "DEFAULT_BUDGETS_USD"]

DEFAULT_BUDGETS_USD: tuple[float, ...] = (2.0, 4.0, 6.0, 8.0, 16.0, 24.0, 40.0)


@dataclass(frozen=True)
class BudgetSweepData:
    """F1 and crowd delay of CrowdLearn at each budget point."""

    budgets_usd: tuple[float, ...]
    f1: list[float]
    crowd_delay: list[float]

    def render_fig10(self) -> str:
        return format_series(
            "budget_usd",
            list(self.budgets_usd),
            {"CrowdLearn F1": self.f1},
            title="Figure 10: budget vs F1",
        )

    def render_fig11(self) -> str:
        return format_series(
            "budget_usd",
            list(self.budgets_usd),
            {"CrowdLearn crowd delay (s)": self.crowd_delay},
            title="Figure 11: budget vs crowd delay",
            float_format="{:.1f}",
        )


def run_budget_sweep(
    setup: ExperimentSetup,
    budgets_usd: tuple[float, ...] = DEFAULT_BUDGETS_USD,
) -> BudgetSweepData:
    """Regenerate Figures 10 and 11 by sweeping the total budget.

    In the paper the x-axis is the budget for the same 200-query deployment;
    the per-query average incentive is budget / 200.  Fast setups shrink both
    the deployment and the sweep, but keep the same per-query averages.
    """
    base_config = setup.config
    if setup.fast and len(budgets_usd) > 4:
        budgets_usd = (2.0, 6.0, 16.0, 40.0)
    # Rescale budgets so the *per-query average* matches the paper's sweep
    # even when the deployment is smaller than 200 queries.
    paper_queries = 200
    scale = max(base_config.total_queries, 1) / paper_queries

    f1: list[float] = []
    delay: list[float] = []
    actual_budgets: list[float] = []
    for budget in budgets_usd:
        scaled = max(budget * scale, 0.01)
        config = dataclasses.replace(base_config, budget_usd=scaled)
        system = build_crowdlearn(setup, config=config)
        outcome = system.run(setup.make_stream(f"budget-{budget:.0f}"))
        result = scheme_result_from_run("CrowdLearn", outcome)
        f1.append(macro_f1(result.y_true, result.y_pred))
        mean_delay = result.mean_crowd_delay()
        delay.append(float("nan") if mean_delay is None else mean_delay)
        actual_budgets.append(budget)
    return BudgetSweepData(
        budgets_usd=tuple(actual_budgets), f1=f1, crowd_delay=delay
    )
