"""Table I: aggregated label accuracy of CQC vs Voting / TD-EM / Filtering.

For each temporal context a batch of test images is posted to the platform;
each aggregator turns the same raw responses into labels, scored against the
golden truth.  The Filtering baseline's worker histories are primed with a
graded warm-up phase on training images (on real MTurk, requesters grade
earlier HITs the same way).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cqc import CrowdQualityControl
from repro.crowd.platform import CrowdsourcingPlatform
from repro.crowd.tasks import QueryResult
from repro.eval.reporting import format_context_table
from repro.eval.runner import ExperimentSetup
from repro.truth.filtering import QualityFilter
from repro.truth.tdem import TruthDiscoveryEM
from repro.truth.voting import aggregate_by_voting
from repro.utils.clock import TemporalContext

__all__ = ["Table1Data", "run_table1"]

_INCENTIVE = 6.0  # a plateau-range incentive; quality barely varies past 2c


@dataclass(frozen=True)
class Table1Data:
    """Per-context aggregated label accuracy for each quality-control scheme."""

    accuracy: dict[str, dict[str, float]]  # scheme -> context value -> accuracy

    def overall(self, scheme: str) -> float:
        values = self.accuracy[scheme]
        return float(np.mean(list(values.values())))

    def render(self) -> str:
        return format_context_table(
            "Scheme",
            self.accuracy,
            [c.value for c in TemporalContext.ordered()],
            title="Table I: aggregated label accuracy",
        )


def _prime_worker_histories(
    platform: CrowdsourcingPlatform,
    setup: ExperimentSetup,
    rng: np.random.Generator,
    n_queries: int,
) -> None:
    """Post graded warm-up queries so Filtering has worker track records."""
    n_queries = min(n_queries, len(setup.train_set))
    chosen = rng.choice(len(setup.train_set), size=n_queries, replace=False)
    for index in chosen:
        image = setup.train_set[int(index)]
        for context in TemporalContext.ordered():
            result = platform.post_query(image.metadata, _INCENTIVE, context)
            platform.reveal_ground_truth(
                result.query.query_id, int(image.true_label)
            )


def run_table1(
    setup: ExperimentSetup, queries_per_context: int = 50
) -> Table1Data:
    """Regenerate Table I.

    Parameters
    ----------
    queries_per_context:
        Test queries posted per temporal context (shrunk in fast setups).
    """
    if setup.fast:
        queries_per_context = min(queries_per_context, 12)
    queries_per_context = min(queries_per_context, len(setup.test_set))
    rng = setup.seeds.get("table1")
    platform = setup.make_platform("table1")
    _prime_worker_histories(platform, setup, rng, n_queries=20)

    cqc = CrowdQualityControl(use_questionnaire=setup.config.cqc_use_questionnaire)
    pilot_results, pilot_labels = setup.pilot.all_labeled_results()
    cqc.fit(pilot_results, np.array(pilot_labels), rng=setup.seeds.get("table1-cqc"))
    quality_filter = QualityFilter(platform=platform)

    # The paper scores aggregation on the queries the deployment actually
    # sends — QSS's picks, not random images.  Mimic that mix: mostly the
    # committee's most-uncertain test images, plus the ε share of random
    # ones.
    entropy = setup.base_committee.committee_entropy(setup.test_set)
    ranked = np.argsort(-entropy, kind="stable")
    epsilon = setup.config.qss_epsilon
    n_uncertain = int(round((1.0 - epsilon) * queries_per_context))
    uncertain_pool = ranked[: max(4 * queries_per_context, n_uncertain)]

    accuracy: dict[str, dict[str, float]] = {
        name: {} for name in ("CQC", "Voting", "TD-EM", "Filtering")
    }
    for context in TemporalContext.ordered():
        uncertain = rng.choice(uncertain_pool, size=n_uncertain, replace=False)
        explore = rng.choice(
            len(setup.test_set),
            size=queries_per_context - n_uncertain,
            replace=False,
        )
        chosen = np.concatenate([uncertain, explore])
        results: list[QueryResult] = []
        truths: list[int] = []
        for index in chosen:
            image = setup.test_set[int(index)]
            results.append(
                platform.post_query(image.metadata, _INCENTIVE, context)
            )
            truths.append(int(image.true_label))
        golden = np.array(truths, dtype=np.int64)
        estimates = {
            "CQC": cqc.truthful_labels(results),
            "Voting": aggregate_by_voting(results),
            "TD-EM": TruthDiscoveryEM().aggregate(results),
            "Filtering": quality_filter.aggregate(results),
        }
        for name, labels in estimates.items():
            accuracy[name][context.value] = float(np.mean(labels == golden))
    return Table1Data(accuracy=accuracy)
