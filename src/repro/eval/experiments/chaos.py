"""Degradation curves under injected crowd-platform faults.

The chaos experiment answers the robustness question the paper never poses:
*how gracefully does the closed loop degrade when the crowd misbehaves?*
It sweeps a fault intensity knob from 0 (fault-free) upward, scaling a base
:class:`~repro.crowd.faults.FaultPlan` (worker abandonment, spam and
adversarial workers, delay spikes, duplicates, malformed responses, one
platform outage window), and compares three schemes at each intensity:

- **CrowdLearn** — the resilient closed loop (default
  :class:`~repro.core.resilience.ResiliencePolicy`): retries outages with
  backoff, refunds failed queries, falls back to committee labels;
- **CrowdLearn-naive** — the same loop with resilience disabled
  (:meth:`ResiliencePolicy.naive`): the first unhandled platform fault
  truncates its deployment, exactly as the pre-resilience reproduction
  would have crashed;
- **Ensemble** — the best AI-only baseline, fault-independent by
  construction (a flat reference line).

Reported per intensity: macro-F1, mean crowd delay, sensing cycles
completed, injected fault events and the resilient run's intervention
counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import field as dataclass_field
from dataclasses import fields as dataclass_fields

import numpy as np

from repro.core.guards import GuardCounters, GuardPolicy
from repro.core.resilience import ResilienceCounters, ResiliencePolicy
from repro.core.system import RunOutcome
from repro.crowd.faults import FaultInjector, FaultPlan, PlatformUnavailable
from repro.eval.baselines import EnsembleScheme
from repro.eval.reporting import format_series, format_table
from repro.eval.runner import ExperimentSetup, build_crowdlearn
from repro.metrics.classification import macro_f1
from repro.telemetry.runtime import Telemetry

__all__ = [
    "ChaosData",
    "GuardChaosData",
    "default_chaos_plan",
    "adversarial_label_plan",
    "run_chaos",
    "run_guard_chaos",
    "DEFAULT_INTENSITIES",
]

DEFAULT_INTENSITIES: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Chaos-run schemes, in reporting order.
CHAOS_SCHEMES: tuple[str, ...] = ("CrowdLearn", "CrowdLearn-naive", "Ensemble")


@dataclass(frozen=True)
class ChaosData:
    """Degradation curves: per-scheme metrics over fault intensities."""

    intensities: tuple[float, ...]
    f1: dict[str, list[float]]
    crowd_delay: dict[str, list[float]]
    cycles_completed: dict[str, list[int]]
    n_cycles: int
    fault_events: list[int]
    resilience: list[dict[str, float]]
    #: Per-intensity registry counter snapshots of the resilient run
    #: (``resilience_*_total`` bridged through :class:`Telemetry`).
    telemetry: list[dict[str, float]] = dataclass_field(default_factory=list)

    def render(self) -> str:
        parts = [
            format_series(
                "fault_intensity",
                list(self.intensities),
                self.f1,
                title="Chaos: classification performance (macro-F1) vs fault intensity",
            ),
            format_series(
                "fault_intensity",
                list(self.intensities),
                self.crowd_delay,
                title="Chaos: mean crowd delay (s) vs fault intensity",
            ),
        ]
        # Intervention counts come from the telemetry registry snapshots
        # (``resilience_*_total``); the per-outcome counters remain as a
        # fallback for data recorded before telemetry existed.
        counters = self.telemetry or self.resilience
        counter_names = sorted(counters[0]) if counters else []
        rows = [
            [
                float(intensity),
                self.cycles_completed["CrowdLearn"][i],
                self.cycles_completed["CrowdLearn-naive"][i],
                self.fault_events[i],
                *[float(counters[i][name]) for name in counter_names],
            ]
            for i, intensity in enumerate(self.intensities)
        ]
        parts.append(
            format_table(
                ["intensity", "cycles(resilient)", "cycles(naive)",
                 "fault_events", *counter_names],
                rows,
                title=(
                    f"Chaos telemetry: completion (of {self.n_cycles} cycles)"
                    " and resilience interventions (MetricsRegistry)"
                ),
            )
        )
        return "\n\n".join(parts)


@dataclass(frozen=True)
class GuardChaosData:
    """Guards-on vs guards-off under a hostile-label fault plan.

    Both arms run the *same* adversarial plan to completion (no outages,
    so neither run truncates); the only difference is the learning-loop
    guardrail policy (:meth:`GuardPolicy.hardened` vs
    :meth:`GuardPolicy.disabled`).  ``final_f1`` is the macro-F1 of the
    deployment's last half of cycles — the window where accumulated
    label poisoning shows up in an unguarded loop.
    """

    arms: tuple[str, ...]
    f1: dict[str, float]
    final_f1: dict[str, float]
    cycles_completed: dict[str, int]
    n_cycles: int
    fault_events: dict[str, int]
    #: The guards-on arm's aggregated intervention counters.
    guards: dict[str, float]
    #: ``guard_*_total`` registry snapshot of the guards-on arm.
    telemetry: dict[str, float] = dataclass_field(default_factory=dict)

    def render(self) -> str:
        rows = [
            [
                arm,
                round(self.f1[arm], 4),
                round(self.final_f1[arm], 4),
                self.cycles_completed[arm],
                self.fault_events[arm],
            ]
            for arm in self.arms
        ]
        parts = [
            format_table(
                ["arm", "macro_f1", "final_half_f1", "cycles", "fault_events"],
                rows,
                title=(
                    "Guard chaos: hostile-label plan, guards-on (hardened) "
                    f"vs guards-off over {self.n_cycles} cycles"
                ),
            )
        ]
        interventions = {k: v for k, v in self.guards.items() if v}
        parts.append(
            "Guard interventions (guards-on arm): "
            + (
                ", ".join(f"{k}={v:g}" for k, v in sorted(interventions.items()))
                if interventions
                else "none"
            )
        )
        return "\n\n".join(parts)


def default_chaos_plan(setup: ExperimentSetup) -> FaultPlan:
    """The base fault plan the intensity knob scales.

    At intensity 1.0: 20% worker abandonment, 10% spam, 5% adversarial,
    10% delay spikes (5x), 5% duplicates, 5% malformed, and one platform
    outage window covering roughly two sensing cycles' worth of posts a
    quarter of the way into the deployment.
    """
    per_cycle = max(setup.config.queries_per_cycle, 1)
    start = (setup.config.n_cycles // 4) * per_cycle
    return FaultPlan(
        abandonment_rate=0.2,
        spam_rate=0.1,
        adversarial_rate=0.05,
        delay_spike_rate=0.1,
        delay_spike_factor=5.0,
        duplicate_rate=0.05,
        malformed_rate=0.05,
        outage_windows=((start, start + 2 * per_cycle),),
    )


def adversarial_label_plan() -> FaultPlan:
    """The hostile-label plan the guard chaos experiment runs.

    Heavy on label poisoning (adversarial workers answer with the wrong
    class on purpose, spammers answer at random) and free of outages, so
    both arms complete every cycle and the comparison isolates what the
    *learning* guards buy, not what the platform resilience buys.  The
    adversarial majority is deliberate: it has to actually defeat CQC's
    fusion on most cycles, otherwise there is no poisoned signal for the
    guards to catch.
    """
    return FaultPlan(adversarial_rate=0.8, spam_rate=0.1)


def _final_half_f1(outcome: RunOutcome) -> float:
    """Macro-F1 over the last half (>= 1 cycle) of completed cycles."""
    if not outcome.cycles:
        return 0.0
    tail = outcome.cycles[-max(len(outcome.cycles) // 2, 1):]
    y_true = np.concatenate([c.true_labels for c in tail])
    y_pred = np.concatenate([c.final_labels for c in tail])
    return macro_f1(y_true, y_pred)


def run_guard_chaos(
    setup: ExperimentSetup,
    plan: FaultPlan | None = None,
) -> GuardChaosData:
    """Run the guards-on vs guards-off arms under a hostile-label plan.

    This is a *paired* comparison: both arms share the fault plan **and**
    the stream/platform/fault random seeds, so until a guard actually
    intervenes the two deployments are byte-identical and every downstream
    difference is causally attributable to the intervention, not to seed
    noise.  The guards-on arm runs :meth:`GuardPolicy.hardened` with
    telemetry so every ``guard_*`` counter lands in the registry.
    """
    base_plan = plan if plan is not None else adversarial_label_plan()
    arms = ("guards-on", "guards-off")
    f1: dict[str, float] = {}
    final_f1: dict[str, float] = {}
    completed: dict[str, int] = {}
    fault_events: dict[str, int] = {}
    guard_totals = GuardCounters()
    telemetry: dict[str, float] = {}
    counter_names = [f.name for f in dataclass_fields(GuardCounters)]

    for arm in arms:
        # One shared tag: same stream draw, same platform RNG, same fault
        # RNG for both arms (the paired design).
        tag = "guardchaos"
        injector = FaultInjector(base_plan, rng=setup.seeds.get(f"{tag}-faults"))
        tel = Telemetry() if arm == "guards-on" else None
        system = build_crowdlearn(
            setup,
            faults=injector,
            platform_name=tag,
            guards=(
                GuardPolicy.hardened()
                if arm == "guards-on"
                else GuardPolicy.disabled()
            ),
            telemetry=tel,
        )
        outcome = system.run(setup.make_stream(tag))
        arm_f1, _, arm_cycles = _metrics(outcome)
        f1[arm] = arm_f1
        final_f1[arm] = _final_half_f1(outcome)
        completed[arm] = arm_cycles
        fault_events[arm] = injector.total_events()
        if arm == "guards-on":
            guard_totals = outcome.guard_totals()
            telemetry = {
                name: tel.registry.value(f"guard_{name}_total")
                for name in counter_names
            }

    return GuardChaosData(
        arms=arms,
        f1=f1,
        final_f1=final_f1,
        cycles_completed=completed,
        n_cycles=setup.config.n_cycles,
        fault_events=fault_events,
        guards=guard_totals.as_dict(),
        telemetry=telemetry,
    )


def _run_naive(system, stream) -> RunOutcome:
    """Run a non-resilient system until its first unhandled fault.

    The naive policy lets :class:`PlatformUnavailable` propagate out of
    ``run_cycle`` and feeds empty response sets into delay bookkeeping
    (``QueryResult.mean_delay`` raises on them), so a faulty platform
    truncates the deployment at the first bad cycle — precisely the
    behaviour the resilient policy exists to avoid.
    """
    outcome = RunOutcome()
    for cycle in stream:
        try:
            outcome.append(system.run_cycle(cycle))
        except (PlatformUnavailable, ValueError):
            break
    return outcome


def _metrics(outcome: RunOutcome) -> tuple[float, float, int]:
    """(macro-F1, mean crowd delay, cycles completed) of a possibly-partial run."""
    if not outcome.cycles:
        return 0.0, 0.0, 0
    f1 = macro_f1(outcome.y_true(), outcome.y_pred())
    return f1, outcome.mean_crowd_delay(), len(outcome.cycles)


def run_chaos(
    setup: ExperimentSetup,
    intensities: tuple[float, ...] = DEFAULT_INTENSITIES,
    plan: FaultPlan | None = None,
    scheduler: bool = False,
) -> ChaosData:
    """Sweep fault intensity and measure each scheme's degradation curve.

    With ``scheduler`` set, both CrowdLearn arms run under the
    virtual-time scheduler (``config.scheduler_enabled``), so delay-spike
    faults collide with the sensing-cycle deadline: spiked responses turn
    into stragglers instead of merely inflating the delay telemetry, and
    the table's ``late_queries``/``stragglers_harvested`` columns light up.
    """
    import dataclasses

    if setup.fast and len(intensities) > 3:
        intensities = (0.0, 0.5, 1.0)
    base_plan = plan if plan is not None else default_chaos_plan(setup)
    config = (
        dataclasses.replace(setup.config, scheduler_enabled=True)
        if scheduler
        else None
    )

    ensemble = EnsembleScheme(setup.base_committee.experts, setup.train_set)
    ensemble_result = ensemble.run(setup.make_stream("chaos-ensemble"))
    ensemble_f1 = macro_f1(ensemble_result.y_true, ensemble_result.y_pred)

    f1: dict[str, list[float]] = {name: [] for name in CHAOS_SCHEMES}
    delay: dict[str, list[float]] = {name: [] for name in CHAOS_SCHEMES}
    completed: dict[str, list[int]] = {
        name: [] for name in CHAOS_SCHEMES if name != "Ensemble"
    }
    fault_events: list[int] = []
    resilience: list[dict[str, float]] = []
    telemetry: list[dict[str, float]] = []
    counter_names = [f.name for f in dataclass_fields(ResilienceCounters)]

    for intensity in intensities:
        scaled = base_plan.scaled(intensity)
        tag = f"chaos-{intensity:.2f}"

        injector = FaultInjector(scaled, rng=setup.seeds.get(f"{tag}-faults"))
        tel = Telemetry()
        system = build_crowdlearn(
            setup, config=config, faults=injector,
            platform_name=f"{tag}-resilient", telemetry=tel,
        )
        outcome = system.run(setup.make_stream(f"{tag}-resilient"))
        res_f1, res_delay, res_cycles = _metrics(outcome)
        f1["CrowdLearn"].append(res_f1)
        delay["CrowdLearn"].append(res_delay)
        completed["CrowdLearn"].append(res_cycles)
        fault_events.append(injector.total_events())
        resilience.append(outcome.resilience_totals().as_dict())
        telemetry.append({
            name: tel.registry.value(f"resilience_{name}_total")
            for name in counter_names
        })

        naive_injector = FaultInjector(
            scaled, rng=setup.seeds.get(f"{tag}-naive-faults")
        )
        naive = build_crowdlearn(
            setup,
            config=config,
            resilience=ResiliencePolicy.naive(),
            faults=naive_injector,
            platform_name=f"{tag}-naive",
        )
        naive_outcome = _run_naive(naive, setup.make_stream(f"{tag}-naive"))
        nai_f1, nai_delay, nai_cycles = _metrics(naive_outcome)
        f1["CrowdLearn-naive"].append(nai_f1)
        delay["CrowdLearn-naive"].append(nai_delay)
        completed["CrowdLearn-naive"].append(nai_cycles)

        f1["Ensemble"].append(ensemble_f1)
        delay["Ensemble"].append(0.0)

    return ChaosData(
        intensities=tuple(intensities),
        f1=f1,
        crowd_delay=delay,
        cycles_completed=completed,
        n_cycles=setup.config.n_cycles,
        fault_events=fault_events,
        resilience=resilience,
        telemetry=telemetry,
    )
