"""Table II, Figure 7 and Table III: the headline scheme comparison.

All three artifacts come from one pass of :func:`run_all_schemes` — the
classification metrics (Table II), the macro-average ROC curves (Figure 7),
and the per-cycle delays (Table III: structural algorithm-delay model plus
the measured crowd delays).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.baselines import SchemeResult
from repro.eval.delay_model import AlgorithmDelayModel
from repro.eval.reporting import format_table
from repro.eval.runner import ExperimentSetup, run_all_schemes
from repro.metrics.classification import ClassificationReport, classification_report
from repro.metrics.roc import RocCurve, macro_average_roc

__all__ = [
    "SCHEME_ORDER",
    "Table2Data",
    "Fig7Data",
    "Table3Data",
    "run_table2_suite",
]

#: Row order used by the paper's Table II / Table III.
SCHEME_ORDER = (
    "CrowdLearn",
    "VGG16",
    "BoVW",
    "DDM",
    "Ensemble",
    "Hybrid-Para",
    "Hybrid-AL",
)


@dataclass(frozen=True)
class Table2Data:
    """Classification metrics per scheme."""

    reports: dict[str, ClassificationReport]

    def render(self) -> str:
        rows = [
            [name, *self.reports[name].as_row()]
            for name in SCHEME_ORDER
            if name in self.reports
        ]
        return format_table(
            ["Algorithm", "Accuracy", "Precision", "Recall", "F1"],
            rows,
            title="Table II: classification accuracy for all schemes",
        )


@dataclass(frozen=True)
class Fig7Data:
    """Macro-average ROC curves per scheme."""

    curves: dict[str, RocCurve]

    def render(self) -> str:
        rows = [
            [name, self.curves[name].auc]
            for name in SCHEME_ORDER
            if name in self.curves
        ]
        return format_table(
            ["Algorithm", "macro-AUC"],
            rows,
            title="Figure 7: macro-average ROC (summarized by AUC)",
        )


@dataclass(frozen=True)
class Table3Data:
    """Per-cycle algorithm and crowd delays per scheme."""

    algorithm_delay: dict[str, float]
    crowd_delay: dict[str, float | None]

    def render(self) -> str:
        rows = []
        for name in SCHEME_ORDER:
            if name not in self.algorithm_delay:
                continue
            crowd = self.crowd_delay.get(name)
            rows.append(
                [
                    name,
                    self.algorithm_delay[name],
                    "N/A" if crowd is None else f"{crowd:.2f}",
                ]
            )
        return format_table(
            ["Algorithm", "Algorithm Delay (s)", "Crowd Delay (s)"],
            rows,
            title="Table III: average delay per sensing cycle",
            float_format="{:.2f}",
        )


@dataclass(frozen=True)
class Table2Suite:
    """The bundled artifacts of the headline comparison run."""

    results: dict[str, SchemeResult]
    table2: Table2Data
    fig7: Fig7Data
    table3: Table3Data


def run_table2_suite(setup: ExperimentSetup) -> Table2Suite:
    """Run all schemes once and derive Table II, Figure 7 and Table III."""
    results = run_all_schemes(setup)
    reports = {
        name: classification_report(r.y_true, r.y_pred)
        for name, r in results.items()
    }
    curves = {
        name: macro_average_roc(r.y_true, r.scores)
        for name, r in results.items()
    }
    delay_model = AlgorithmDelayModel()
    algorithm_delay = {
        name: delay_model.scheme_cost(name) for name in results
    }
    crowd_delay = {name: r.mean_crowd_delay() for name, r in results.items()}
    return Table2Suite(
        results=results,
        table2=Table2Data(reports=reports),
        fig7=Fig7Data(curves=curves),
        table3=Table3Data(
            algorithm_delay=algorithm_delay, crowd_delay=crowd_delay
        ),
    )
