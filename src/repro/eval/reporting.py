"""Plain-text rendering of the paper's tables and figure series.

The reproduction has no plotting dependency; figures are reported as aligned
numeric series (one row per x-value) that can be eyeballed or piped into any
plotting tool.  Benchmarks print these via ``print`` so the regenerated
artifacts appear directly in the benchmark logs.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series", "format_context_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned text table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.
    """
    if not headers:
        raise ValueError("headers must be non-empty")
    rendered_rows = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        rendered_rows.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered_rows)) if rendered_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render figure data: one row per x-value, one column per series."""
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points for "
                f"{len(x_values)} x-values"
            )
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(float(series[name][i]) for name in series)]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title, float_format=float_format)


def format_context_table(
    row_label: str,
    rows: dict[str, dict[str, float]],
    context_names: Sequence[str],
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render a (scheme x context) table like the paper's Table I."""
    headers = [row_label, *context_names, "Overall"]
    body = []
    for name, per_context in rows.items():
        values = [float(per_context[c]) for c in context_names]
        body.append([name, *values, sum(values) / len(values)])
    return format_table(headers, body, title=title, float_format=float_format)
