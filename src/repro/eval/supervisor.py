"""Supervising watchdog for crash-tolerant deployments.

The journal (:mod:`repro.eval.journal`) makes a killed run *resumable*;
this module makes recovery *automatic*.  :func:`supervise` runs the
closed loop in a child process and watches two failure signals:

- **exit code** — a child that dies (injected crash, SIGKILL, OOM) is
  restarted with ``--resume`` so it replays its journal past the last
  checkpoint;
- **heartbeat staleness** — the child touches a heartbeat file on every
  journal append; a child that is alive but silent past the watchdog
  timeout is presumed hung, killed, and restarted the same way.

Restarts are bounded (``max_restarts``) with exponential backoff, so a
deterministic crash-on-replay bug degrades into a clean failure instead
of a hot restart loop.  The first launch may carry a crash-point plan
(``REPRO_CRASH_AT``); restarts never do — the resume path disarms
injected crashes, matching :func:`repro.eval.journal.resume_run`.

:func:`run_crash_chaos` is the CI harness on top: it runs a reference
deployment to completion, then re-runs it under the supervisor with a
SIGKILL injected at several stage boundaries and asserts the recovered
digest is byte-identical and the post-recovery audit passed.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.eval.journal import load_recovery_info, update_recovery_info
from repro.utils.logging import get_logger

__all__ = [
    "SupervisorConfig",
    "SupervisorOutcome",
    "supervise",
    "run_crash_chaos",
    "render_recovery_table",
]

logger = get_logger("supervisor")

#: Exit code a child uses to report an injected crash (EX_TEMPFAIL: the
#: failure is transient by construction — a restart will succeed).
CRASH_EXIT_CODE = 75


@dataclass(frozen=True)
class SupervisorConfig:
    """Policy knobs for :func:`supervise`."""

    #: Seconds of heartbeat silence before a live child is declared hung.
    watchdog_seconds: float = 300.0
    #: Restarts allowed before the supervisor gives up.
    max_restarts: int = 5
    #: First backoff delay; doubles per restart (1s, 2s, 4s, ...).
    backoff_base_seconds: float = 1.0
    #: Cap on a single backoff sleep.
    backoff_max_seconds: float = 30.0
    #: How often the watchdog polls the child and the heartbeat file.
    poll_seconds: float = 0.25

    def __post_init__(self) -> None:
        if self.watchdog_seconds <= 0:
            raise ValueError(
                f"watchdog_seconds must be positive, got {self.watchdog_seconds}"
            )
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.backoff_base_seconds < 0:
            raise ValueError(
                "backoff_base_seconds must be >= 0, got "
                f"{self.backoff_base_seconds}"
            )
        if self.poll_seconds <= 0:
            raise ValueError(
                f"poll_seconds must be positive, got {self.poll_seconds}"
            )

    def backoff(self, restart_index: int) -> float:
        """Backoff before restart number ``restart_index`` (1-based)."""
        return min(
            self.backoff_base_seconds * (2 ** max(restart_index - 1, 0)),
            self.backoff_max_seconds,
        )


@dataclass
class SupervisorOutcome:
    """What one supervised deployment did, across all its launches."""

    returncode: int
    restarts: int = 0
    hangs_detected: int = 0
    crashes_detected: int = 0
    gave_up: bool = False
    #: Exit code of each child launch, in order.
    child_exits: list[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.returncode == 0


def _heartbeat_age(path: Path, started_at: float) -> float:
    """Seconds since the heartbeat file was last touched.

    Falls back to the launch time if the file vanished (the child is
    then judged by total silence since start, not declared hung at once).
    """
    try:
        last_beat = path.stat().st_mtime
    except OSError:
        last_beat = started_at
    return time.time() - last_beat


def supervise(
    child_args: list[str],
    heartbeat_path: str | Path,
    config: SupervisorConfig | None = None,
    journal_path: str | Path | None = None,
    first_launch_env: dict[str, str] | None = None,
    resume_flag: str = "--resume",
) -> SupervisorOutcome:
    """Run ``child_args`` under a heartbeat watchdog with bounded restarts.

    Parameters
    ----------
    child_args:
        The child command line (e.g. ``[sys.executable, "-m", "repro",
        "run", "--journal", ...]``).  ``resume_flag`` is appended on
        every launch after the first.
    heartbeat_path:
        File the child touches on progress (``REPRO_HEARTBEAT`` is set
        to this path in the child's environment).
    journal_path:
        When given, restart counts are accumulated into the journal's
        recovery sidecar so post-mortem tooling sees them even if the
        final child never resumes (e.g. the budget is exhausted).
    first_launch_env:
        Extra environment for the *first* launch only — typically
        ``{"REPRO_CRASH_AT": ...}``.  Restarts run without it, so an
        injected crash cannot re-fire during recovery.
    """
    if config is None:
        config = SupervisorConfig()
    heartbeat_path = Path(heartbeat_path)
    outcome = SupervisorOutcome(returncode=1)
    attempt = 0
    while True:
        env = dict(os.environ)
        env["REPRO_HEARTBEAT"] = str(heartbeat_path)
        argv = list(child_args)
        if attempt == 0:
            if first_launch_env:
                env.update(first_launch_env)
        else:
            argv.append(resume_flag)
        # Reset the staleness clock: a restart must get a full watchdog
        # window even if the previous child's last beat is ancient.
        started = time.time()
        heartbeat_path.touch()
        logger.info(
            "launching child (attempt %d%s): %s",
            attempt + 1,
            ", resume" if attempt else "",
            " ".join(argv),
        )
        proc = subprocess.Popen(argv, env=env)
        hung = False
        while proc.poll() is None:
            time.sleep(config.poll_seconds)
            if _heartbeat_age(heartbeat_path, started) > config.watchdog_seconds:
                logger.warning(
                    "heartbeat silent for %.1fs (watchdog %.1fs): "
                    "killing hung child pid %d",
                    _heartbeat_age(heartbeat_path, started),
                    config.watchdog_seconds,
                    proc.pid,
                )
                proc.kill()
                proc.wait()
                hung = True
                break
        rc = int(proc.returncode)
        outcome.child_exits.append(rc)
        if hung:
            outcome.hangs_detected += 1
        elif rc != 0:
            outcome.crashes_detected += 1
        if rc == 0 and not hung:
            outcome.returncode = 0
            break
        attempt += 1
        if attempt > config.max_restarts:
            outcome.gave_up = True
            outcome.returncode = rc if rc != 0 else 1
            logger.error(
                "restart budget exhausted (%d restarts): giving up with "
                "exit code %d",
                config.max_restarts,
                outcome.returncode,
            )
            break
        outcome.restarts += 1
        delay = config.backoff(attempt)
        logger.warning(
            "child %s (exit %d): restart %d/%d after %.1fs backoff",
            "hung" if hung else "died",
            rc,
            attempt,
            config.max_restarts,
            delay,
        )
        if delay > 0:
            time.sleep(delay)
    if journal_path is not None:
        update_recovery_info(
            journal_path,
            supervisor_hangs=outcome.hangs_detected,
            supervisor_crashes=outcome.crashes_detected,
            supervisor_gave_up=outcome.gave_up,
        )
    return outcome


def render_recovery_table(
    journal_path: str | Path, outcome: SupervisorOutcome
) -> str:
    """The ``Recovery`` summary block the supervise command prints."""
    info = load_recovery_info(journal_path)
    audit = info.get("audit", {})
    rows = [
        ("child launches", len(outcome.child_exits)),
        ("restarts", outcome.restarts),
        ("crashes detected", outcome.crashes_detected),
        ("hangs detected", outcome.hangs_detected),
        ("journal records replayed", info.get("recovery_replayed_records", 0)),
        (
            "re-queries avoided",
            f"{info.get('recovery_requeries_avoided_cents', 0.0) / 100:.2f} USD",
        ),
        ("in-doubt posts re-executed", info.get("recovery_in_doubt_posts", 0)),
        ("stale journals quarantined",
         info.get("recovery_quarantined_journals", 0)),
    ]
    lines = ["Recovery"]
    for label, value in rows:
        lines.append(f"  {label:<28}{value}")
    if audit:
        verdict = "passed" if audit.get("ok") else "FAILED"
        failed = [k for k, v in audit.get("checks", {}).items() if not v]
        lines.append(
            f"  {'post-recovery audit':<28}{verdict}"
            + (f" ({', '.join(failed)})" if failed else "")
        )
    return "\n".join(lines)


# -- CI crash-chaos harness -------------------------------------------------


def _base_child_args(
    seed: int,
    cycles: int,
    workdir: Path,
    name: str,
    full: bool = False,
) -> tuple[list[str], Path, Path, Path]:
    digest = workdir / f"{name}.digest"
    checkpoint = workdir / f"{name}.ckpt"
    journal = workdir / f"{name}.journal"
    argv = [
        sys.executable, "-m", "repro", "run",
        "--seed", str(seed),
        "--cycles", str(cycles),
        "--checkpoint", str(checkpoint),
        "--journal", str(journal),
        "--digest-file", str(digest),
    ]
    if full:
        argv.append("--full")
    return argv, digest, checkpoint, journal


def run_crash_chaos(
    seed: int = 0,
    cycles: int = 3,
    crash_specs: tuple[str, ...] = ("post:1:0:kill", "cqc:2:0:kill"),
    workdir: str | Path | None = None,
    full: bool = False,
    config: SupervisorConfig | None = None,
) -> int:
    """Kill the loop at stage boundaries, supervise the recovery, compare.

    Runs one uninterrupted reference deployment, then one supervised
    deployment per crash spec, and checks three things per arm: the
    recovered digest equals the reference digest, the post-recovery
    invariant audit passed, and at least one ``recovery_restart`` was
    recorded.  Returns a process exit code (0 = every arm passed).
    """
    import tempfile

    if config is None:
        config = SupervisorConfig(
            watchdog_seconds=600.0, max_restarts=3,
            backoff_base_seconds=0.2,
        )
    owns_workdir = workdir is None
    tmp = tempfile.TemporaryDirectory(prefix="repro-crash-chaos-") if owns_workdir else None
    workdir = Path(tmp.name) if owns_workdir else Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    try:
        print(
            f"crash chaos: reference run (seed={seed}, cycles={cycles})...",
            file=sys.stderr,
        )
        ref_args, ref_digest, _, _ = _base_child_args(
            seed, cycles, workdir, "reference", full=full
        )
        ref = subprocess.run(ref_args, env=dict(os.environ))
        if ref.returncode != 0:
            print(
                f"FAIL: reference run exited {ref.returncode}",
                file=sys.stderr,
            )
            return 1
        reference = ref_digest.read_text().strip()
        print(f"reference digest {reference[:16]}", file=sys.stderr)
        header = f"{'crash point':<22}{'restarts':>9}{'digest':>8}{'audit':>7}"
        print(header)
        failed = False
        for spec in crash_specs:
            name = spec.replace(":", "_").replace("*", "any")
            argv, digest_path, _, journal = _base_child_args(
                seed, cycles, workdir, name, full=full
            )
            hb = workdir / f"{name}.heartbeat"
            outcome = supervise(
                argv,
                hb,
                config=config,
                journal_path=journal,
                first_launch_env={"REPRO_CRASH_AT": spec},
            )
            info = load_recovery_info(journal)
            digest = (
                digest_path.read_text().strip()
                if digest_path.exists() else "<missing>"
            )
            digest_ok = outcome.ok and digest == reference
            audit_ok = bool(info.get("audit", {}).get("ok"))
            recovered = info.get("recovery_restarts", 0) >= 1
            arm_ok = digest_ok and audit_ok and recovered
            failed = failed or not arm_ok
            print(
                f"{spec:<22}{outcome.restarts:>9}"
                f"{'match' if digest_ok else 'DIFF':>8}"
                f"{'pass' if audit_ok else 'FAIL':>7}"
                + ("" if recovered else "  (no recovery recorded)")
            )
        if failed:
            print("FAIL: at least one crash arm did not recover cleanly",
                  file=sys.stderr)
            return 1
        print(
            "crash chaos passed: every killed run resumed to the "
            "reference digest with a clean audit",
            file=sys.stderr,
        )
        return 0
    finally:
        if tmp is not None:
            tmp.cleanup()
