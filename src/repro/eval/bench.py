"""Benchmark harness for the closed loop (``repro bench``).

Times one full CrowdLearn deployment with telemetry spans enabled and
aggregates per-stage wall time, then micro-benchmarks the committee-vote
hot path cached vs uncached on a fixed image pool.  Results are written to
``BENCH_cycle.json`` so CI can archive them and assert the shared
:class:`~repro.core.cache.PredictionCache` never makes the vote stage
slower than computing votes from scratch.

Wall-clock numbers are machine-dependent; everything else in the report
(cycle counts, cache hit/miss totals, speedup *direction*) is
deterministic given the seed.  Timings use best-of-``repeats`` so a single
scheduler hiccup cannot fail the CI check.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any

from repro.core.cache import PredictionCache
from repro.telemetry.runtime import Telemetry, use_telemetry
from repro.telemetry.tracing import aggregate_spans

__all__ = ["run_bench", "write_bench", "render_bench", "DEFAULT_OUTPUT"]

#: Default artifact path, relative to the working directory.
DEFAULT_OUTPUT = Path("benchmarks/results/BENCH_cycle.json")

#: Pool size for the committee-vote micro-benchmark (small enough that the
#: uncached arm stays fast, large enough that encoding dominates overhead).
_VOTE_POOL_SIZE = 48


def _stage_table(spans) -> dict[str, dict[str, float]]:
    """Per-stage wall-time aggregates, insertion-ordered by first finish."""
    return {
        name: {
            "count": stats.count,
            "total_seconds": stats.total_seconds,
            "mean_seconds": stats.mean_seconds,
            "min_seconds": stats.min_seconds,
            "max_seconds": stats.max_seconds,
        }
        for name, stats in aggregate_spans(spans).items()
    }


def _best_of(repeats: int, fn) -> float:
    """Best (minimum) wall seconds of ``repeats`` calls to ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _vote_benchmark(setup, repeats: int) -> dict[str, Any]:
    """Time ``Committee.expert_votes`` on a fixed pool, cached vs uncached.

    The uncached arm detaches the cache so every call recomputes each
    expert's predictions; the cached arm attaches a fresh
    :class:`PredictionCache`, warms it with one call, then times pure
    cache hits — the steady state ``run_cycle`` reaches after the first
    call site per (model version, pool).
    """
    committee = setup.clone_committee()
    pool = setup.test_set.subset(
        list(range(min(_VOTE_POOL_SIZE, len(setup.test_set))))
    )

    committee.attach_cache(None)
    uncached = _best_of(repeats, lambda: committee.expert_votes(pool))

    cache = PredictionCache()
    committee.attach_cache(cache)
    committee.expert_votes(pool)  # warm: one compute per expert
    cached = _best_of(repeats, lambda: committee.expert_votes(pool))
    committee.attach_cache(None)

    return {
        "pool_size": len(pool),
        "repeats": repeats,
        "uncached_best_seconds": uncached,
        "cached_best_seconds": cached,
        "speedup": uncached / cached if cached > 0 else float("inf"),
        "cache": cache.stats(),
    }


def _scheduler_benchmark(setup) -> dict[str, Any]:
    """Run the loop with the virtual-time scheduler off and on.

    Both arms share the same platform seed and sensing stream, so the
    delta is the scheduler itself: its wall-time overhead and the
    time-domain effects (late responses, harvested stragglers, realized
    vs idealized crowd delay) it introduces.
    """
    import dataclasses

    from repro.eval.runner import build_crowdlearn

    off_system = build_crowdlearn(setup, platform_name="bench-sched")
    started = time.perf_counter()
    off_outcome = off_system.run(setup.make_stream("bench-sched"))
    off_wall = time.perf_counter() - started

    config = dataclasses.replace(setup.config, scheduler_enabled=True)
    telemetry = Telemetry()
    on_system = build_crowdlearn(
        setup, config=config, platform_name="bench-sched", telemetry=telemetry
    )
    started = time.perf_counter()
    with use_telemetry(telemetry):
        on_outcome = on_system.run(setup.make_stream("bench-sched"))
    on_wall = time.perf_counter() - started

    totals = on_outcome.resilience_totals()
    return {
        "off_wall_seconds": off_wall,
        "on_wall_seconds": on_wall,
        "off_mean_crowd_delay": off_outcome.mean_crowd_delay(),
        "on_mean_crowd_delay": on_outcome.mean_crowd_delay(),
        "late_responses": telemetry.registry.value(
            "platform_late_responses_total"
        ),
        "stragglers_harvested": totals.stragglers_harvested,
        "late_queries": totals.late_queries,
        "late_spent_cents": totals.late_spent_cents,
        "pending_at_end": on_system.scheduler.pending_count,
        "virtual_seconds": on_system.scheduler.now,
    }


def _retrain_benchmark(setup) -> dict[str, Any]:
    """A/B the retrain hot path: cold/naive vs warm-start + fused kernels.

    Both arms share the same platform seed and sensing stream (named RNG
    streams are reproducible per name), so the delta is the retrain
    strategy: the cold arm refits on ``crowd batch + golden replay`` with
    full per-expert epoch schedules through layer-by-layer kernels, the
    warm arm fine-tunes incumbent weights for ``mic_warm_epochs`` on
    ``crowd batch + crowd ReplayBuffer sample`` through fused kernels
    (periodic full refits included).  CI gates the retrain-stage speedup;
    macro-F1 is reported per arm so accuracy regressions are visible in
    the artifact.
    """
    import dataclasses

    from repro.eval.runner import build_crowdlearn
    from repro.metrics import macro_f1

    def run_arm(config) -> tuple[dict[str, Any], Any]:
        telemetry = Telemetry()
        system = build_crowdlearn(
            setup,
            config=config,
            platform_name="bench-retrain",
            telemetry=telemetry,
        )
        started = time.perf_counter()
        with use_telemetry(telemetry):
            outcome = system.run(setup.make_stream("bench-retrain"))
        wall = time.perf_counter() - started
        stages = _stage_table(telemetry.tracer.spans)
        retrain = stages.get("cycle.mic.retrain", {}).get("total_seconds", 0.0)
        fit = stages.get("cycle.mic.retrain.fit", {}).get("total_seconds", 0.0)
        y_true, y_pred = outcome.y_true(), outcome.y_pred()
        return {
            "wall_seconds": wall,
            "retrain_seconds": retrain,
            "fit_seconds": fit,
            # Constant across arms: snapshot pushes + holdout scoring of
            # incumbent and candidate (the safety tax of guarded retrains).
            "guard_seconds": max(retrain - fit, 0.0),
            "macro_f1": float(macro_f1(y_true, y_pred)) if len(y_true) else 0.0,
        }, system

    cold, _ = run_arm(setup.config)
    warm_config = dataclasses.replace(
        setup.config, mic_warm_start=True, fused_kernels=True
    )
    warm, warm_system = run_arm(warm_config)

    def ratio(a: float, b: float) -> float:
        return a / b if b > 0 else float("inf")

    return {
        "cold": cold,
        "warm": warm,
        # The gated number: how much faster the experts are *refit* — the
        # work warm-start + fused kernels actually attack.  The whole-stage
        # and whole-cycle ratios include the per-retrain guard tax
        # (snapshots + holdout gating), which is identical in both arms and
        # reported per arm as guard_seconds.
        "fit_speedup": ratio(cold["fit_seconds"], warm["fit_seconds"]),
        "retrain_speedup": ratio(
            cold["retrain_seconds"], warm["retrain_seconds"]
        ),
        "cycle_speedup": ratio(cold["wall_seconds"], warm["wall_seconds"]),
        "warm_stats": warm_system.mic.retrain_stats(),
    }


def _journal_benchmark(setup) -> dict[str, Any]:
    """Run the loop with the write-ahead journal and checkpoints on.

    Overhead is the time spent inside journal appends (canonical
    serialization + write + fsync, plus rotation) as a fraction of the
    journaled run's wall time — the price of crash tolerance.  CI gates
    on this staying under 5% of cycle wall time.
    """
    import tempfile

    from repro.eval.journal import CycleJournal
    from repro.eval.runner import build_crowdlearn

    with tempfile.TemporaryDirectory(prefix="repro-bench-journal-") as tmp:
        tmp_path = Path(tmp)
        system = build_crowdlearn(setup, platform_name="bench-journal")
        journal = CycleJournal.create(tmp_path / "bench.journal")
        started = time.perf_counter()
        try:
            system.run(
                setup.make_stream("bench-journal"),
                checkpoint_path=tmp_path / "bench.ckpt",
                journal=journal,
            )
        finally:
            journal.close()
        wall = time.perf_counter() - started
    return {
        "wall_seconds": wall,
        "journal_write_seconds": journal.write_seconds,
        "records_written": journal.records_written,
        "fsync_policy": journal.fsync_policy,
        "overhead_fraction": (
            journal.write_seconds / wall if wall > 0 else 0.0
        ),
    }


def run_bench(
    seed: int = 0, fast: bool = True, repeats: int = 3,
    scheduler: bool = False,
) -> dict[str, Any]:
    """Benchmark one deployment; returns a JSON-safe report.

    The report has five sections: ``loop`` (a full instrumented run with
    per-stage span aggregates and end-of-run cache statistics),
    ``committee_vote`` (the cached-vs-uncached micro-benchmark),
    ``retrain`` (the warm-start + fused-kernels vs cold/naive retrain
    A/B), ``journal`` (the write-ahead journal's overhead fraction) and
    ``meta`` (seed, scale, interpreter — enough to compare artifacts
    across CI runs).  With ``scheduler`` set, a sixth section A/Bs the
    loop with the virtual-time scheduler off vs on.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    from repro.eval.runner import build_crowdlearn, prepare
    from repro.metrics import macro_f1

    setup = prepare(seed=seed, fast=fast)

    telemetry = Telemetry()
    system = build_crowdlearn(setup, platform_name="bench", telemetry=telemetry)
    started = time.perf_counter()
    with use_telemetry(telemetry):
        outcome = system.run(setup.make_stream("bench"))
    wall_seconds = time.perf_counter() - started

    cache = system.cache
    y_true, y_pred = outcome.y_true(), outcome.y_pred()
    report = {
        "meta": {
            "seed": seed,
            "fast": fast,
            "scheduler": scheduler,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "loop": {
            "cycles": len(outcome.cycles),
            "wall_seconds": wall_seconds,
            "macro_f1": float(macro_f1(y_true, y_pred)) if len(y_true) else 0.0,
            "stages": _stage_table(telemetry.tracer.spans),
            "cache": cache.stats() if cache is not None else {},
        },
        "committee_vote": _vote_benchmark(setup, repeats),
        "retrain": _retrain_benchmark(setup),
        "journal": _journal_benchmark(setup),
    }
    if scheduler:
        report["scheduler"] = _scheduler_benchmark(setup)
    return report


def write_bench(report: dict[str, Any], path: Path | str = DEFAULT_OUTPUT) -> Path:
    """Write the report as pretty-printed JSON, creating parent dirs."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def render_bench(report: dict[str, Any]) -> str:
    """Human-readable summary of a :func:`run_bench` report."""
    loop = report["loop"]
    vote = report["committee_vote"]
    lines = [
        f"closed loop: {loop['cycles']} cycles in {loop['wall_seconds']:.2f}s "
        f"(macro-F1 {loop['macro_f1']:.3f})",
        "",
        f"{'stage':<28}{'count':>6}{'total s':>10}{'mean ms':>10}",
    ]
    for name, stats in sorted(
        loop["stages"].items(), key=lambda kv: -kv[1]["total_seconds"]
    ):
        lines.append(
            f"{name:<28}{stats['count']:>6}"
            f"{stats['total_seconds']:>10.3f}"
            f"{stats['mean_seconds'] * 1e3:>10.2f}"
        )
    cache = loop.get("cache", {})
    if cache:
        lines += [
            "",
            "cache: "
            f"{cache.get('prediction_hits', 0)} prediction hits / "
            f"{cache.get('prediction_misses', 0)} misses, "
            f"{cache.get('prediction_invalidations', 0)} invalidations; "
            f"{cache.get('feature_hits', 0)} feature hits / "
            f"{cache.get('feature_misses', 0)} misses",
        ]
    lines += [
        "",
        f"committee vote ({vote['pool_size']} images, "
        f"best of {vote['repeats']}): "
        f"uncached {vote['uncached_best_seconds'] * 1e3:.2f}ms, "
        f"cached {vote['cached_best_seconds'] * 1e3:.2f}ms "
        f"({vote['speedup']:.0f}x)",
    ]
    ab = report.get("retrain")
    if ab:
        stats = ab.get("warm_stats", {})
        lines += [
            "",
            "retrain A/B: "
            f"expert refit cold {ab['cold']['fit_seconds']:.2f}s -> "
            f"warm+fused {ab['warm']['fit_seconds']:.2f}s "
            f"({ab['fit_speedup']:.1f}x); "
            f"whole stage {ab['cold']['retrain_seconds']:.2f}s -> "
            f"{ab['warm']['retrain_seconds']:.2f}s "
            f"({ab['retrain_speedup']:.1f}x, incl. "
            f"{ab['warm']['guard_seconds']:.2f}s guard tax), "
            f"{ab['cycle_speedup']:.1f}x full cycle; "
            f"{stats.get('warm_retrains', 0)} warm / "
            f"{stats.get('full_refits', 0)} full refits; "
            f"macro-F1 {ab['cold']['macro_f1']:.3f} -> "
            f"{ab['warm']['macro_f1']:.3f}",
        ]
    jrn = report.get("journal")
    if jrn:
        lines += [
            "",
            "journal: "
            f"{jrn['records_written']} records "
            f"(fsync={jrn['fsync_policy']}) in "
            f"{jrn['journal_write_seconds'] * 1e3:.1f}ms of "
            f"{jrn['wall_seconds']:.2f}s journaled run "
            f"({jrn['overhead_fraction'] * 100:.2f}% overhead)",
        ]
    sched = report.get("scheduler")
    if sched:
        lines += [
            "",
            "scheduler A/B: "
            f"off {sched['off_wall_seconds']:.2f}s / "
            f"on {sched['on_wall_seconds']:.2f}s; "
            f"{sched['late_responses']:.0f} late responses, "
            f"{sched['stragglers_harvested']} harvested, "
            f"{sched['late_queries']} all-late queries "
            f"({sched['late_spent_cents'] / 100:.2f} USD sunk), "
            f"{sched['pending_at_end']} still in flight; "
            f"crowd delay {sched['off_mean_crowd_delay']:.1f}s -> "
            f"{sched['on_mean_crowd_delay']:.1f}s realized",
        ]
    return "\n".join(lines)
