"""Algorithm-execution delay model (Table III's "Algorithm Delay" column).

The paper measures wall-clock execution per sensing cycle on an RTX 2070 +
i7-8700K testbed.  Neither the GPU CNNs nor that testbed exist here, so the
reproduction substitutes a *structural cost model*: each expert has a
per-cycle base cost (anchored to the paper's measured AI-only rows, which
encode the relative compute of the three architectures), and each scheme's
delay follows from how it composes the experts:

- **AI-only** — the expert's own cost;
- **Ensemble** — runs all experts sequentially plus boosting overhead;
- **CrowdLearn** — runs the committee concurrently (cost of the slowest
  expert) plus the QSS/IPD/CQC/MIC module overhead;
- **Hybrid-Para** — runs the full ensemble plus the human-integration
  (complexity-index) overhead;
- **Hybrid-AL** — one expert plus per-cycle retraining overhead.

The model preserves Table III's ordering; absolute seconds are inherited
from the paper's anchors rather than measured, and EXPERIMENTS.md flags the
substitution.
"""

from __future__ import annotations

__all__ = ["AlgorithmDelayModel"]

#: Per-cycle execution cost anchors (seconds), from the paper's AI-only rows.
_EXPERT_COST = {"VGG16": 47.83, "BoVW": 37.55, "DDM": 52.57}

#: Scheme-level overheads (seconds per cycle).
_BOOSTING_OVERHEAD = 2.0
_MODULE_OVERHEAD = 3.0  # QSS + IPD + CQC + MIC bookkeeping
_INTEGRATION_OVERHEAD = 6.0  # Hybrid-Para's complexity-index integration
_RETRAIN_OVERHEAD = 5.5  # Hybrid-AL's per-cycle model retraining


class AlgorithmDelayModel:
    """Computes per-cycle algorithm delay for every compared scheme."""

    def __init__(self, expert_costs: dict[str, float] | None = None) -> None:
        self.expert_costs = dict(expert_costs or _EXPERT_COST)
        if any(v <= 0 for v in self.expert_costs.values()):
            raise ValueError("expert costs must be positive")

    def expert_cost(self, name: str) -> float:
        """Per-cycle inference cost of a single expert."""
        try:
            return self.expert_costs[name]
        except KeyError:
            raise KeyError(
                f"unknown expert {name!r}; known: {sorted(self.expert_costs)}"
            ) from None

    def ensemble_cost(self) -> float:
        """All experts run sequentially + boosting aggregation."""
        return sum(self.expert_costs.values()) * 0.6 + _BOOSTING_OVERHEAD

    def crowdlearn_cost(self) -> float:
        """Committee runs concurrently; add the four modules' overhead."""
        return max(self.expert_costs.values()) + _MODULE_OVERHEAD

    def hybrid_para_cost(self) -> float:
        """Full ensemble + complexity-index integration of human labels."""
        return self.ensemble_cost() + _INTEGRATION_OVERHEAD

    def hybrid_al_cost(self, expert: str = "VGG16") -> float:
        """One expert + per-cycle retraining."""
        return self.expert_cost(expert) + _RETRAIN_OVERHEAD

    def scheme_cost(self, scheme: str) -> float:
        """Per-cycle algorithm delay for any scheme name in Table III."""
        if scheme in self.expert_costs:
            return self.expert_cost(scheme)
        dispatch = {
            "CrowdLearn": self.crowdlearn_cost,
            "Ensemble": self.ensemble_cost,
            "Hybrid-Para": self.hybrid_para_cost,
            "Hybrid-AL": self.hybrid_al_cost,
        }
        try:
            return dispatch[scheme]()
        except KeyError:
            raise KeyError(f"unknown scheme {scheme!r}") from None
