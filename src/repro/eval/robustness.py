"""Multi-seed robustness analysis for the headline comparison.

A single-seed Table II could be a lucky draw.  This module re-runs the full
scheme comparison across several root seeds and aggregates mean ± std per
scheme and metric, plus how often each scheme wins — the check a reviewer
would ask for before trusting the reproduction's ordering.

Usage::

    from repro.eval.robustness import run_robustness_study
    study = run_robustness_study(seeds=(1, 2, 3))   # fast=True for smoke
    print(study.render())
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.baselines import SchemeResult
from repro.eval.reporting import format_table
from repro.metrics.classification import classification_report

__all__ = ["RobustnessStudy", "summarize_across_seeds", "run_robustness_study"]


@dataclass(frozen=True)
class RobustnessStudy:
    """Aggregated multi-seed results."""

    seeds: tuple[int, ...]
    #: scheme -> metric -> per-seed values (metrics: accuracy, f1, crowd_delay)
    values: dict[str, dict[str, list[float]]]

    def mean(self, scheme: str, metric: str) -> float:
        """Across-seed mean of one scheme's metric."""
        return float(np.mean(self.values[scheme][metric]))

    def std(self, scheme: str, metric: str) -> float:
        """Across-seed standard deviation of one scheme's metric."""
        return float(np.std(self.values[scheme][metric]))

    def win_rate(self, scheme: str, metric: str = "accuracy") -> float:
        """Fraction of seeds in which ``scheme`` had the best metric value."""
        wins = 0
        for i in range(len(self.seeds)):
            best = max(
                self.values[name][metric][i] for name in self.values
            )
            if self.values[scheme][metric][i] >= best - 1e-12:
                wins += 1
        return wins / len(self.seeds)

    def render(self) -> str:
        rows = []
        for scheme in self.values:
            rows.append(
                [
                    scheme,
                    f"{self.mean(scheme, 'accuracy'):.3f}"
                    f" ± {self.std(scheme, 'accuracy'):.3f}",
                    f"{self.mean(scheme, 'f1'):.3f}"
                    f" ± {self.std(scheme, 'f1'):.3f}",
                    f"{self.win_rate(scheme):.0%}",
                ]
            )
        return format_table(
            ["Scheme", "Accuracy (mean ± std)", "F1 (mean ± std)", "Win rate"],
            rows,
            title=(
                f"Robustness over seeds {list(self.seeds)}: "
                "Table II across deployments"
            ),
        )


def summarize_across_seeds(
    results_by_seed: dict[int, dict[str, SchemeResult]],
) -> RobustnessStudy:
    """Aggregate per-seed scheme results into a :class:`RobustnessStudy`.

    Every seed must report the same scheme set.
    """
    if not results_by_seed:
        raise ValueError("no results to summarize")
    seeds = tuple(sorted(results_by_seed))
    scheme_names = sorted(results_by_seed[seeds[0]])
    for seed in seeds:
        if sorted(results_by_seed[seed]) != scheme_names:
            raise ValueError(
                f"seed {seed} reports a different scheme set"
            )
    values: dict[str, dict[str, list[float]]] = {
        name: {"accuracy": [], "f1": [], "crowd_delay": []}
        for name in scheme_names
    }
    for seed in seeds:
        for name in scheme_names:
            result = results_by_seed[seed][name]
            report = classification_report(result.y_true, result.y_pred)
            values[name]["accuracy"].append(report.accuracy)
            values[name]["f1"].append(report.f1)
            delay = result.mean_crowd_delay()
            values[name]["crowd_delay"].append(
                float("nan") if delay is None else delay
            )
    return RobustnessStudy(seeds=seeds, values=values)


def run_robustness_study(
    seeds: tuple[int, ...] = (1, 2, 3),
    fast: bool = False,
) -> RobustnessStudy:
    """Run the full scheme comparison for every seed and aggregate.

    Expensive at full scale (~2 min per seed on one CPU); pass ``fast=True``
    for a smoke-scale study.
    """
    from repro.eval.runner import prepare, run_all_schemes

    if not seeds:
        raise ValueError("at least one seed is required")
    results_by_seed = {}
    for seed in seeds:
        setup = prepare(seed=seed, fast=fast)
        results_by_seed[seed] = run_all_schemes(setup)
    return summarize_across_seeds(results_by_seed)
