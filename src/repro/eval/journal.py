"""Write-ahead journal for crash-tolerant sensing cycles.

Checkpoints (:mod:`repro.eval.persistence`) are cycle-granular: a crash
between ``cycle.qss`` and the post-cycle snapshot loses every paid-for
crowd response and, naively resumed, would re-post the same queries and
re-charge the :class:`~repro.bandit.budget.BudgetLedger`.  This module
closes that window with an append-only, checksummed JSONL **write-ahead
log** of intra-cycle stage boundaries and their effects:

==============  =========================================================
stage           payload (effects recorded at the boundary)
==============  =========================================================
rotate          journal base: ``next_cycle`` at the last checkpoint
cycle_start     temporal context of the opening cycle
harvest         straggler events matured into this cycle (scheduler runs)
qss             the selected query indices
post_intent     query about to be posted (index, arm, incentive)
post            the post's full effects: query id, spend, responses,
                scheduler events, platform RNG state, fault-clock state
cqc             fused truthful labels + the query ids they grade
guard           the drift detector's flag decision
retrain         MIC retraining completed
cycle_end       the cycle's total crowd spend
==============  =========================================================

Recovery is **replay by re-execution**: the resumed system re-runs the
interrupted cycle from the checkpointed state, and because every stochastic
component's RNG travels in the checkpoint, each in-memory stage recomputes
bit-identically.  The journal's job is the one stage with *external* side
effects — the crowd post.  A journaled ``post`` record is served back
through :meth:`CrowdsourcingPlatform.restore_posted_query` instead of
re-posting: the recorded query id, charge, responses and scheduler events
are re-applied and the platform RNG is fast-forwarded, so a journaled
query id is never posted twice and the ledger is never double-charged.
Every other re-executed append is verified against the on-disk record
(sequence, cycle, stage and canonical payload must match) — any divergence
raises :class:`JournalReplayError` instead of silently forking history.

Records carry a per-record SHA-256 over their canonical JSON body, so a
torn tail (the line being written when the process died) is detected and
dropped, never parsed into garbage.  The file is rotated atomically
(fresh temp file + ``os.replace``) right after each checkpoint, keeping
it small and keeping its base cycle in lockstep with the snapshot.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.crowd.tasks import QuestionnaireAnswers, WorkerResponse
from repro.data.metadata import DamageLabel, SceneType
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import CrowdLearnSystem, RunOutcome
    from repro.crowd.scheduler import PendingResponse

__all__ = [
    "JournalError", "JournalReplayError", "CycleJournal",
    "JournalReadResult", "read_journal", "wal_tail_summary",
    "encode_response", "decode_response", "encode_pending",
    "RecoveryResult", "resume_run", "audit_recovery",
    "recovery_sidecar_path", "load_recovery_info", "update_recovery_info",
    "heartbeat_writer",
]

#: Supported fsync policies for the journal writer.
FSYNC_POLICIES: tuple[str, ...] = ("always", "rotate", "never")

#: Stage names the loop journals, in intra-cycle order.
JOURNAL_STAGES: tuple[str, ...] = (
    "rotate", "cycle_start", "harvest", "qss", "post_intent", "post",
    "cqc", "guard", "retrain", "cycle_end",
)

logger = get_logger("journal")


class JournalError(ValueError):
    """A journal file or operation is invalid."""


class JournalReplayError(JournalError):
    """Re-execution diverged from the journaled history.

    Raised when a replayed run appends a record whose (cycle, stage,
    payload) does not match the next on-disk record — the checkpoint and
    journal describe different runs, and continuing would silently fork
    the deployment's history.
    """


def _canonical(body: Any) -> str:
    """Canonical JSON used for checksums and replay verification."""
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _record_checksum(seq: int, cycle: int, stage: str, payload: Any) -> str:
    body = {"seq": seq, "cycle": cycle, "stage": stage, "payload": payload}
    return hashlib.sha256(_canonical(body).encode()).hexdigest()


def encode_response(response: WorkerResponse) -> dict:
    """JSON-safe form of one worker response (exact, numpy-free)."""
    q = response.questionnaire
    return {
        "worker_id": int(response.worker_id),
        "label": int(response.label),
        "delay": float(response.delay_seconds),
        "questionnaire": None if q is None else {
            "fake": bool(q.says_fake),
            "scene": q.scene.value,
            "danger": bool(q.says_people_in_danger),
        },
    }


def decode_response(data: dict) -> WorkerResponse:
    """Inverse of :func:`encode_response`."""
    q = data.get("questionnaire")
    return WorkerResponse(
        worker_id=int(data["worker_id"]),
        label=DamageLabel(int(data["label"])),
        questionnaire=None if q is None else QuestionnaireAnswers(
            says_fake=bool(q["fake"]),
            scene=SceneType(q["scene"]),
            says_people_in_danger=bool(q["danger"]),
        ),
        delay_seconds=float(data["delay"]),
    )


def encode_pending(event: "PendingResponse") -> dict:
    """JSON-safe form of one scheduled straggler-arrival event."""
    return {
        "arrival_time": float(event.arrival_time),
        "seq": int(event.seq),
        "posted_at": float(event.posted_at),
        "response": encode_response(event.response),
    }


@dataclass
class JournalReadResult:
    """What :func:`read_journal` recovered from a journal file."""

    records: list[dict] = field(default_factory=list)
    #: Lines dropped at the tail (torn write or trailing corruption).
    torn_lines: int = 0
    #: Byte offset of the end of the last intact record.
    good_bytes: int = 0

    @property
    def base_cycle(self) -> int | None:
        """The ``next_cycle`` recorded by the leading rotate record."""
        for record in self.records:
            if record["stage"] == "rotate":
                return int(record["payload"]["next_cycle"])
            break
        return None

    @property
    def max_cycle(self) -> int:
        """Highest cycle index with a non-rotate record (−1 if none)."""
        cycles = [r["cycle"] for r in self.records if r["stage"] != "rotate"]
        return max(cycles) if cycles else -1


def read_journal(path: str | Path) -> JournalReadResult:
    """Read a journal, tolerating a torn tail.

    Each line's SHA-256 is recomputed over its canonical body; the first
    unparseable or checksum-failing line ends the readable prefix — a
    crash mid-``write`` leaves exactly that shape — and everything from
    it onward is counted in ``torn_lines`` and ignored.
    """
    raw = Path(path).read_bytes()
    result = JournalReadResult()
    offset = 0
    for line in raw.split(b"\n"):
        advance = len(line) + 1
        if not line.strip():
            offset += advance
            continue
        try:
            record = json.loads(line)
            recorded = record["sha256"]
            computed = _record_checksum(
                record["seq"], record["cycle"], record["stage"],
                record["payload"],
            )
        except (ValueError, KeyError, TypeError):
            break
        if computed != recorded:
            break
        result.records.append(record)
        offset += advance
        result.good_bytes = min(offset, len(raw))
    tail = raw[result.good_bytes:]
    result.torn_lines = sum(1 for t in tail.split(b"\n") if t.strip())
    return result


def wal_tail_summary(journal_path: str | Path) -> dict:
    """Post-mortem summary of a journal's tail after an aborted cycle.

    When the serving layer's bulkhead quarantines an event mid-cycle,
    the event's write-ahead log is the authoritative record of how far
    the interrupted cycle got — most importantly whether a crowd post is
    in doubt (a ``post_intent`` journaled without its ``post``).  The
    service embeds this summary in the quarantine record so operators can
    assess a parked event without opening its WAL by hand.
    """
    path = Path(journal_path)
    if not path.exists():
        return {"exists": False}
    read = read_journal(path)
    live = [r for r in read.records if r["stage"] != "rotate"]
    last = live[-1] if live else None
    return {
        "exists": True,
        "records": len(read.records),
        "torn_lines": read.torn_lines,
        "base_cycle": read.base_cycle,
        "last_cycle": None if last is None else int(last["cycle"]),
        "last_stage": None if last is None else last["stage"],
        "in_doubt_posts": int(
            last is not None and last["stage"] == "post_intent"
        ),
        "journaled_posts": sum(
            1 for r in live
            if r["stage"] == "post"
            and isinstance(r["payload"], dict)
            and r["payload"].get("kind") == "posted"
        ),
    }


class CycleJournal:
    """Append-only checksummed JSONL write-ahead log for one deployment.

    Parameters
    ----------
    path:
        The journal file.  Use :meth:`create` for a fresh run or
        :meth:`resume` to reopen after a crash.
    fsync:
        ``"always"`` fsyncs every append (each boundary record is durable
        before the next stage runs — the true WAL discipline);
        ``"rotate"`` fsyncs only at rotation and close; ``"never"`` leaves
        durability to the OS.  Weaker policies can lose the tail of the
        journal in a crash, which costs re-posted queries in a real
        deployment but never correctness here: lost records simply
        re-execute.
    crash_injector:
        Optional :class:`~repro.crowd.faults.FaultInjector`; its
        ``on_stage_boundary`` hook fires after each *live* append is
        durable, so an injected crash never loses the record it follows.
    on_record:
        Optional callback invoked with each appended record — the
        supervisor uses it as the child's heartbeat.
    """

    def __init__(
        self,
        path: str | Path,
        fsync: str = "always",
        crash_injector=None,
        on_record: Callable[[dict], None] | None = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise JournalError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.path = Path(path)
        self.fsync_policy = fsync
        self.crash_injector = crash_injector
        self.on_record = on_record
        self._fh = None
        self._seq = 0
        self._replay_queue: deque[dict] = deque()
        #: Wall time spent writing + syncing (the bench overhead metric).
        self.write_seconds = 0.0
        self.records_written = 0
        self.replayed_records = 0
        #: Spend that recovery served from the journal instead of
        #: re-posting (accumulated by the system's replay path).
        self.requeries_avoided_cents = 0.0
        #: Trailing ``post_intent`` without its ``post``: the crash hit
        #: between deciding to post and recording the outcome.
        self.in_doubt_posts = 0
        #: Query ids of journaled posts (live + replayed), for the auditor.
        self.posted_query_ids: list[int] = []

    # -- construction -----------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | Path,
        fsync: str = "always",
        crash_injector=None,
        on_record: Callable[[dict], None] | None = None,
        next_cycle: int = 0,
    ) -> "CycleJournal":
        """Start a fresh journal (truncates any existing file)."""
        journal = cls(path, fsync=fsync, crash_injector=crash_injector,
                      on_record=on_record)
        journal._open_fresh(next_cycle)
        return journal

    @classmethod
    def resume(
        cls,
        path: str | Path,
        next_cycle: int,
        fsync: str = "always",
        crash_injector=None,
        on_record: Callable[[dict], None] | None = None,
    ) -> tuple["CycleJournal", dict]:
        """Reopen a journal for recovery at checkpoint cycle ``next_cycle``.

        Returns ``(journal, info)``.  When the journal's base cycle
        matches the checkpoint, its records are queued for replay
        verification; the torn tail (if any) is truncated so live appends
        continue a clean file.  When base and checkpoint disagree — a
        crash during rotation left the journal stale, or the checkpoint
        was rolled back under a newer journal — the mismatched file is
        **quarantined** (renamed ``<path>.stale``) with a warning and a
        fresh journal starts: the checkpoint is the only authoritative
        state snapshot, and replaying records from a different base would
        fork history.
        """
        path = Path(path)
        journal = cls(path, fsync=fsync, crash_injector=crash_injector,
                      on_record=on_record)
        info = {
            "torn_lines": 0,
            "replay_records": 0,
            "in_doubt_posts": 0,
            "quarantined": None,
        }
        if not path.exists():
            journal._open_fresh(next_cycle)
            return journal, info
        read = read_journal(path)
        info["torn_lines"] = read.torn_lines
        base = read.base_cycle
        if base != next_cycle:
            stale = path.with_name(path.name + ".stale")
            os.replace(path, stale)
            newer = "checkpoint" if (base is None or base < next_cycle) \
                else "journal"
            logger.warning(
                "journal %s (base cycle %s) disagrees with checkpoint "
                "(next cycle %d); the %s is newer — quarantined the stale "
                "journal to %s and resuming from the checkpoint alone",
                path, base, next_cycle, newer, stale,
            )
            info["quarantined"] = str(stale)
            journal._open_fresh(next_cycle)
            return journal, info
        if read.torn_lines:
            with open(path, "r+b") as fh:
                fh.truncate(read.good_bytes)
        journal._fh = open(path, "a", encoding="utf-8")
        journal._seq = read.records[-1]["seq"] + 1 if read.records else 0
        replayable = [r for r in read.records if r["stage"] != "rotate"]
        journal._replay_queue = deque(replayable)
        if replayable and replayable[-1]["stage"] == "post_intent":
            journal.in_doubt_posts = 1
        info["replay_records"] = len(replayable)
        info["in_doubt_posts"] = journal.in_doubt_posts
        return journal, info

    # -- write path -------------------------------------------------------

    def _open_fresh(self, next_cycle: int) -> None:
        """Atomically start a new journal file headed by a rotate record."""
        tmp = self.path.with_name(self.path.name + ".tmp")
        fh = open(tmp, "w", encoding="utf-8")
        old = self._fh
        self._fh = fh
        self._seq = 0
        self._write(next_cycle, "rotate", {"next_cycle": int(next_cycle)})
        fh.flush()
        os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        if old is not None:
            old.close()

    def _write(self, cycle: int, stage: str, payload: Any) -> dict:
        start = time.perf_counter()
        seq = self._seq
        checksum = _record_checksum(seq, cycle, stage, payload)
        record = {"seq": seq, "cycle": cycle, "stage": stage,
                  "payload": payload, "sha256": checksum}
        self._fh.write(_canonical(record) + "\n")
        if self.fsync_policy == "always":
            self._fh.flush()
            os.fsync(self._fh.fileno())
        self._seq = seq + 1
        self.records_written += 1
        self.write_seconds += time.perf_counter() - start
        return record

    def append(self, cycle: int, stage: str, payload: Any) -> dict:
        """Record a stage boundary (or verify it during replay).

        While the replay queue holds records, each append is checked
        against the next one — matching appends are consumed without
        rewriting, a mismatch raises :class:`JournalReplayError`.  Once
        the queue drains, appends write (and, per the fsync policy, sync)
        live; *then* any armed crash point for this boundary fires, so
        the record always survives its own crash.
        """
        if self._fh is None:
            raise JournalError("journal is closed")
        if self._replay_queue:
            head = self._replay_queue[0]
            if (
                head["cycle"] != cycle
                or head["stage"] != stage
                or _canonical(head["payload"]) != _canonical(payload)
            ):
                raise JournalReplayError(
                    f"replay diverged at cycle {cycle} stage {stage!r}: "
                    f"journal has cycle {head['cycle']} stage "
                    f"{head['stage']!r} (seq {head['seq']}).  The "
                    "checkpoint and journal describe different runs."
                )
            record = self._replay_queue.popleft()
            self._seq = record["seq"] + 1
            self.replayed_records += 1
            self._note_post(stage, payload)
            if self.on_record is not None:
                self.on_record(record)
            return record
        record = self._write(cycle, stage, payload)
        self._note_post(stage, payload)
        if self.on_record is not None:
            self.on_record(record)
        if self.crash_injector is not None:
            self.crash_injector.on_stage_boundary(stage, cycle)
        return record

    def _note_post(self, stage: str, payload: Any) -> None:
        if stage == "post" and isinstance(payload, dict) \
                and payload.get("kind") == "posted":
            self.posted_query_ids.append(int(payload["query_id"]))

    def peek_replay(self, cycle: int, stage: str) -> Any | None:
        """The queued payload if the next replay record is (cycle, stage).

        The post loop uses this to decide whether a query's outcome is
        already journaled (serve it, never re-post) or must run live.
        """
        if not self._replay_queue:
            return None
        head = self._replay_queue[0]
        if head["cycle"] == cycle and head["stage"] == stage:
            return head["payload"]
        return None

    @property
    def replaying(self) -> bool:
        """Whether journaled records remain to be verified."""
        return bool(self._replay_queue)

    def rotate(self, next_cycle: int) -> None:
        """Atomically start a fresh journal after a checkpoint.

        The replaced file's records are covered by the snapshot that was
        just written, so they are dropped; the new file opens with a
        rotate record naming the checkpoint's resume cycle, which
        :meth:`resume` uses to detect journal/checkpoint disagreement.
        """
        if self._fh is None:
            raise JournalError("journal is closed")
        if self._replay_queue:
            raise JournalReplayError(
                f"{len(self._replay_queue)} journaled records were never "
                "reached by re-execution; the checkpoint and journal "
                "describe different runs"
            )
        start = time.perf_counter()
        if self.fsync_policy != "never":
            self._fh.flush()
            os.fsync(self._fh.fileno())
        self._open_fresh(next_cycle)
        self.write_seconds += time.perf_counter() - start
        if self.crash_injector is not None:
            self.crash_injector.on_stage_boundary("rotate", next_cycle)

    def close(self) -> None:
        """Flush, sync (per policy) and close the journal file."""
        if self._fh is None:
            return
        self._fh.flush()
        if self.fsync_policy != "never":
            os.fsync(self._fh.fileno())
        self._fh.close()
        self._fh = None


# -- recovery sidecar (cross-process counters) ----------------------------

#: Sidecar keys that accumulate across restarts (everything else is set).
_SIDECAR_ACCUMULATING = (
    "recovery_restarts",
    "recovery_replayed_records",
    "recovery_requeries_avoided_cents",
    "recovery_in_doubt_posts",
    "recovery_quarantined_journals",
)


def recovery_sidecar_path(journal_path: str | Path) -> Path:
    """The recovery-counter sidecar next to a journal file."""
    journal_path = Path(journal_path)
    return journal_path.with_name(journal_path.name + ".recovery.json")


def load_recovery_info(journal_path: str | Path) -> dict:
    """The accumulated recovery counters for a journal ({} if none)."""
    path = recovery_sidecar_path(journal_path)
    if not path.exists():
        return {}
    try:
        return json.loads(path.read_text())
    except ValueError:
        return {}


def update_recovery_info(journal_path: str | Path, **updates: Any) -> dict:
    """Merge counters into the journal's recovery sidecar (atomically).

    Keys in ``_SIDECAR_ACCUMULATING`` add to the stored value — the
    sidecar outlives each child process, so it is the channel through
    which a supervisor and CI see ``recovery_*`` totals across restarts —
    and every other key overwrites.  Returns the updated document.
    """
    data = load_recovery_info(journal_path)
    for key, value in updates.items():
        if key in _SIDECAR_ACCUMULATING:
            data[key] = data.get(key, 0) + value
        else:
            data[key] = value
    path = recovery_sidecar_path(journal_path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(data, sort_keys=True, indent=2))
    os.replace(tmp, path)
    return data


def heartbeat_writer(path: str | Path) -> Callable[..., None]:
    """A callback that freshens ``path``'s mtime (the watchdog signal).

    Touches once immediately — liveness starts at attach time — and on
    every call; pass it as :class:`CycleJournal`'s ``on_record`` so each
    durable stage boundary doubles as a heartbeat.
    """
    path = Path(path)

    def beat(*_args: Any) -> None:
        path.touch()

    beat()
    return beat


# -- post-recovery invariant audit ----------------------------------------


def audit_recovery(
    system: "CrowdLearnSystem",
    outcome: "RunOutcome",
    journal: CycleJournal | None = None,
) -> dict:
    """Check the invariants a recovered run must satisfy.

    * **Ledger conservation** — ``total == spent + remaining`` and the
      charge/refund books balance: ``charged − refunded == spent``.
    * **Spend accounting** — the net ledger spend equals the sum of the
      cycles' ``cost_cents`` (a double-charged replayed post would break
      this before anything else).
    * **No duplicate query ids** — journaled posts carry strictly
      increasing, unique platform query ids.
    * **Label-set consistency** — every cycle's final labels/scores cover
      its dataset exactly, and its query indices are unique and in range.

    Returns ``{"ok": bool, "checks": {...}, "detail": {...}}``; callers
    decide whether a failed audit warns or aborts.
    """
    ledger = system.ledger
    checks: dict[str, bool] = {}
    detail: dict[str, Any] = {}
    checks["ledger_conservation"] = (
        abs(ledger.total - ledger.spent - ledger.remaining) < 1e-6
    )
    net = ledger.total_charged - ledger.total_refunded
    checks["ledger_books_balance"] = abs(net - ledger.spent) < 1e-6
    cost = float(sum(c.cost_cents for c in outcome.cycles))
    checks["spend_matches_outcomes"] = abs(net - cost) < 1e-4
    detail["ledger"] = {
        "total_cents": ledger.total,
        "charged_cents": ledger.total_charged,
        "refunded_cents": ledger.total_refunded,
        "spent_cents": ledger.spent,
        "remaining_cents": ledger.remaining,
        "outcome_cost_cents": cost,
    }
    if journal is not None:
        ids = journal.posted_query_ids
        checks["no_duplicate_query_ids"] = (
            len(ids) == len(set(ids))
            and all(a < b for a, b in zip(ids, ids[1:]))
        )
        detail["journaled_posts"] = len(ids)
    labels_ok = True
    for c in outcome.cycles:
        n = len(c.true_labels)
        indices = c.query_indices.tolist()
        if (
            len(c.final_labels) != n
            or len(c.final_scores) != n
            or len(indices) != len(set(indices))
            or any(i < 0 or i >= n for i in indices)
        ):
            labels_ok = False
            break
    checks["label_sets_consistent"] = labels_ok
    return {"ok": all(checks.values()), "checks": checks, "detail": detail}


# -- recovery orchestration -----------------------------------------------


@dataclass
class RecoveryResult:
    """What :func:`resume_run` produced."""

    outcome: "RunOutcome"
    system: "CrowdLearnSystem"
    #: Recovery counters and the invariant audit for this resume.
    info: dict = field(default_factory=dict)


def resume_run(
    checkpoint_path: str | Path,
    journal_path: str | Path,
    checkpoint_every: int = 1,
    fsync: str = "always",
    fresh: Callable[[], tuple] | None = None,
    on_record: Callable[[dict], None] | None = None,
) -> RecoveryResult:
    """Resume a journaled deployment after a crash.

    Loads the checkpoint (or, when none was written yet and ``fresh`` is
    given, rebuilds the deployment from scratch — the journal then replays
    from cycle 0), reopens the journal for replay, **disarms crash
    points** on the restored fault injector so an injected crash cannot
    loop forever, and re-runs the remaining cycles.  Journaled posts are
    served from the log (never re-posted, never re-charged); every other
    re-executed boundary is verified against its record.

    Emits ``recovery_*`` telemetry counters on the system's pipeline,
    accumulates the same counters in the journal's recovery sidecar (the
    cross-process channel a supervisor reads), and finishes with
    :func:`audit_recovery`.
    """
    from repro.eval.persistence import load_checkpoint

    checkpoint_path = Path(checkpoint_path)
    if checkpoint_path.exists():
        system, stream, outcome, next_cycle = load_checkpoint(checkpoint_path)
    else:
        if fresh is None:
            raise FileNotFoundError(
                f"no checkpoint at {checkpoint_path} and no fresh-run "
                "factory to rebuild the deployment from"
            )
        from repro.core.system import RunOutcome

        system, stream = fresh()
        outcome = RunOutcome()
        next_cycle = 0
    injector = getattr(system.platform, "faults", None)
    if injector is not None:
        injector.disarm_crashes()
    journal, info = CycleJournal.resume(
        journal_path, next_cycle, fsync=fsync, crash_injector=injector,
        on_record=on_record,
    )
    info["resumed_at_cycle"] = next_cycle
    update_recovery_info(
        journal_path,
        recovery_restarts=1,
        recovery_in_doubt_posts=info["in_doubt_posts"],
        recovery_quarantined_journals=int(info["quarantined"] is not None),
        last_resume_cycle=next_cycle,
    )
    try:
        outcome = system._run_from(
            stream, outcome, next_cycle, checkpoint_path, checkpoint_every,
            journal=journal,
        )
    finally:
        journal.close()
    audit = audit_recovery(system, outcome, journal)
    info["replayed_records"] = journal.replayed_records
    info["requeries_avoided_cents"] = journal.requeries_avoided_cents
    info["audit"] = audit
    tel = system._telemetry()
    if tel.enabled:
        tel.counter(
            "recovery_restarts", help="times a run resumed after a crash"
        ).inc()
        tel.counter(
            "recovery_replayed_records",
            help="journal records verified or served during replay",
        ).inc(journal.replayed_records)
        tel.counter(
            "recovery_requeries_avoided_cents",
            help="crowd spend served from the journal instead of re-posting",
        ).inc(journal.requeries_avoided_cents)
        if journal.in_doubt_posts:
            tel.counter(
                "recovery_in_doubt_posts",
                help="posts interrupted between intent and outcome",
            ).inc(journal.in_doubt_posts)
    update_recovery_info(
        journal_path,
        recovery_replayed_records=journal.replayed_records,
        recovery_requeries_avoided_cents=journal.requeries_avoided_cents,
        audit=audit,
    )
    return RecoveryResult(outcome=outcome, system=system, info=info)
