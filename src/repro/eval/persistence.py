"""JSON persistence for experiment results.

Long benchmark runs deserve durable, diffable artifacts.  This module
serializes :class:`~repro.eval.baselines.SchemeResult` collections (the
output of :func:`~repro.eval.runner.run_all_schemes`) to plain JSON and back,
so runs can be archived, compared across seeds, or post-processed without
re-running anything.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.eval.baselines import SchemeResult
from repro.utils.clock import TemporalContext

__all__ = ["scheme_result_to_dict", "scheme_result_from_dict",
           "save_results", "load_results"]

_FORMAT_VERSION = 1


def scheme_result_to_dict(result: SchemeResult) -> dict:
    """A JSON-safe dict capturing one scheme's full result."""
    return {
        "name": result.name,
        "y_true": result.y_true.tolist(),
        "y_pred": result.y_pred.tolist(),
        "scores": result.scores.tolist(),
        "crowd_delays": list(result.crowd_delays),
        "crowd_delay_contexts": [c.value for c in result.crowd_delay_contexts],
        "cost_cents": result.cost_cents,
    }


def scheme_result_from_dict(data: dict) -> SchemeResult:
    """Inverse of :func:`scheme_result_to_dict`."""
    try:
        return SchemeResult(
            name=data["name"],
            y_true=np.asarray(data["y_true"], dtype=np.int64),
            y_pred=np.asarray(data["y_pred"], dtype=np.int64),
            scores=np.asarray(data["scores"], dtype=np.float64),
            crowd_delays=[float(d) for d in data["crowd_delays"]],
            crowd_delay_contexts=[
                TemporalContext(c) for c in data["crowd_delay_contexts"]
            ],
            cost_cents=float(data["cost_cents"]),
        )
    except KeyError as missing:
        raise ValueError(f"result dict is missing field {missing}") from None


def save_results(
    results: dict[str, SchemeResult],
    path: str | Path,
    metadata: dict | None = None,
) -> Path:
    """Persist a scheme-name → result mapping to JSON.

    ``metadata`` (seed, config summary, timestamps...) is stored verbatim
    under the ``"metadata"`` key.
    """
    path = Path(path)
    payload = {
        "format_version": _FORMAT_VERSION,
        "metadata": metadata or {},
        "results": {
            name: scheme_result_to_dict(result)
            for name, result in results.items()
        },
    }
    path.write_text(json.dumps(payload))
    return path


def load_results(path: str | Path) -> tuple[dict[str, SchemeResult], dict]:
    """Load (results, metadata) previously written by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported results format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    results = {
        name: scheme_result_from_dict(data)
        for name, data in payload["results"].items()
    }
    return results, payload.get("metadata", {})
