"""Persistence for experiment results and deployment state.

Long benchmark runs deserve durable, diffable artifacts.  This module
serializes :class:`~repro.eval.baselines.SchemeResult` collections (the
output of :func:`~repro.eval.runner.run_all_schemes`) and per-cycle
:class:`~repro.core.system.CycleOutcome` records to plain JSON and back,
so runs can be archived, compared across seeds, or post-processed without
re-running anything.

It also provides *deployment checkpoints*: a binary snapshot of a live
:class:`~repro.core.system.CrowdLearnSystem` mid-run (committee parameters,
bandit posteriors, ledger, every RNG state, completed outcomes), written
atomically after each sensing cycle so a crashed deployment resumes from the
last completed cycle and reproduces the uninterrupted run bit-for-bit.
Checkpoints use :mod:`pickle` — they capture live numpy generator state,
which JSON cannot represent faithfully — and are therefore a same-version
crash-recovery format, not an archival one; use the JSON helpers for
archival.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.guards import GuardCounters
from repro.core.resilience import ResilienceCounters
from repro.eval.baselines import SchemeResult
from repro.utils.clock import TemporalContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports eval)
    from repro.core.system import CrowdLearnSystem, CycleOutcome, RunOutcome
    from repro.data.stream import SensingCycleStream

__all__ = ["scheme_result_to_dict", "scheme_result_from_dict",
           "save_results", "load_results",
           "cycle_outcome_to_dict", "cycle_outcome_from_dict",
           "run_outcome_to_dict", "run_outcome_from_dict",
           "run_outcome_digest",
           "CheckpointIntegrityError",
           "save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1
# Version 2 wraps the pickled deployment state in an envelope carrying its
# SHA-256 digest, so a truncated or bit-flipped checkpoint fails loudly at
# load time instead of resuming a silently corrupted deployment.
# Version 3 adds the state's byte length, so truncation is distinguishable
# from bit corruption (length vs sha256) in the load error.
_CHECKPOINT_VERSION = 3


class CheckpointIntegrityError(ValueError):
    """A checkpoint failed to load, with the failing check identified.

    ``check`` names the first integrity check that failed: ``"format"``
    (unreadable pickle / not a snapshot envelope), ``"version"`` (written
    by an incompatible code version), ``"length"`` (state truncated or
    padded), or ``"sha256"`` (state bytes corrupted in place).  Subclasses
    :class:`ValueError` so existing ``except ValueError`` callers and
    tests keep working; ``repro run --resume`` maps it to a distinct
    nonzero exit code.
    """

    def __init__(self, message: str, check: str):
        super().__init__(message)
        self.check = check


def scheme_result_to_dict(result: SchemeResult) -> dict:
    """A JSON-safe dict capturing one scheme's full result."""
    return {
        "name": result.name,
        "y_true": result.y_true.tolist(),
        "y_pred": result.y_pred.tolist(),
        "scores": result.scores.tolist(),
        "crowd_delays": list(result.crowd_delays),
        "crowd_delay_contexts": [c.value for c in result.crowd_delay_contexts],
        "cost_cents": result.cost_cents,
    }


def scheme_result_from_dict(data: dict) -> SchemeResult:
    """Inverse of :func:`scheme_result_to_dict`."""
    try:
        return SchemeResult(
            name=data["name"],
            y_true=np.asarray(data["y_true"], dtype=np.int64),
            y_pred=np.asarray(data["y_pred"], dtype=np.int64),
            scores=np.asarray(data["scores"], dtype=np.float64),
            crowd_delays=[float(d) for d in data["crowd_delays"]],
            crowd_delay_contexts=[
                TemporalContext(c) for c in data["crowd_delay_contexts"]
            ],
            cost_cents=float(data["cost_cents"]),
        )
    except KeyError as missing:
        raise ValueError(f"result dict is missing field {missing}") from None


def save_results(
    results: dict[str, SchemeResult],
    path: str | Path,
    metadata: dict | None = None,
) -> Path:
    """Persist a scheme-name → result mapping to JSON.

    ``metadata`` (seed, config summary, timestamps...) is stored verbatim
    under the ``"metadata"`` key.
    """
    path = Path(path)
    payload = {
        "format_version": _FORMAT_VERSION,
        "metadata": metadata or {},
        "results": {
            name: scheme_result_to_dict(result)
            for name, result in results.items()
        },
    }
    # Temp file + rename: a crash mid-write can never leave a truncated
    # JSON file where a previous good result set used to be.
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload))
    os.replace(tmp, path)
    return path


def load_results(path: str | Path) -> tuple[dict[str, SchemeResult], dict]:
    """Load (results, metadata) previously written by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported results format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    results = {
        name: scheme_result_from_dict(data)
        for name, data in payload["results"].items()
    }
    return results, payload.get("metadata", {})


def cycle_outcome_to_dict(outcome: "CycleOutcome") -> dict:
    """A JSON-safe dict capturing one sensing cycle's full outcome."""
    return {
        "cycle_index": outcome.cycle_index,
        "context": outcome.context.value,
        "true_labels": outcome.true_labels.tolist(),
        "final_labels": outcome.final_labels.tolist(),
        "final_scores": outcome.final_scores.tolist(),
        "query_indices": outcome.query_indices.tolist(),
        "incentives_cents": outcome.incentives_cents.tolist(),
        "crowd_delay": outcome.crowd_delay,
        "cost_cents": outcome.cost_cents,
        "expert_weights": outcome.expert_weights.tolist(),
        "resilience": outcome.resilience.as_dict(),
        "guards": outcome.guards.as_dict(),
    }


def cycle_outcome_from_dict(data: dict) -> "CycleOutcome":
    """Inverse of :func:`cycle_outcome_to_dict`."""
    from repro.core.system import CycleOutcome

    try:
        return CycleOutcome(
            cycle_index=int(data["cycle_index"]),
            context=TemporalContext(data["context"]),
            true_labels=np.asarray(data["true_labels"], dtype=np.int64),
            final_labels=np.asarray(data["final_labels"], dtype=np.int64),
            final_scores=np.asarray(data["final_scores"], dtype=np.float64),
            query_indices=np.asarray(data["query_indices"], dtype=np.int64),
            incentives_cents=np.asarray(
                data["incentives_cents"], dtype=np.float64
            ),
            crowd_delay=float(data["crowd_delay"]),
            cost_cents=float(data["cost_cents"]),
            expert_weights=np.asarray(data["expert_weights"], dtype=np.float64),
            resilience=ResilienceCounters.from_dict(data.get("resilience", {})),
            guards=GuardCounters.from_dict(data.get("guards", {})),
        )
    except KeyError as missing:
        raise ValueError(f"cycle dict is missing field {missing}") from None


def run_outcome_to_dict(outcome: "RunOutcome") -> dict:
    """A JSON-safe dict capturing a whole deployment's outcomes."""
    return {
        "format_version": _FORMAT_VERSION,
        "cycles": [cycle_outcome_to_dict(c) for c in outcome.cycles],
    }


def run_outcome_from_dict(data: dict) -> "RunOutcome":
    """Inverse of :func:`run_outcome_to_dict`."""
    from repro.core.system import RunOutcome

    return RunOutcome(
        cycles=[cycle_outcome_from_dict(c) for c in data.get("cycles", [])]
    )


def run_outcome_digest(outcome: "RunOutcome") -> str:
    """SHA-256 over a run's canonical JSON form.

    Two runs are byte-identical in every label, score, spend, counter and
    delay iff their digests match — the primitive behind the
    scheduler-off parity guarantee (a disabled scheduler must reproduce
    the synchronous loop exactly) and the CI parity smoke job.
    """
    payload = json.dumps(run_outcome_to_dict(outcome), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def save_checkpoint(
    path: str | Path,
    system: "CrowdLearnSystem",
    stream: "SensingCycleStream",
    outcome: "RunOutcome",
    next_cycle: int,
) -> Path:
    """Atomically snapshot a live deployment after a completed cycle.

    The snapshot contains everything a resumed run needs to be
    deterministic: the system (with all RNG states, bandit posteriors,
    committee parameters, guard state and the ledger), the stream, the
    outcomes of the ``next_cycle`` completed cycles, and the resume index.
    The write goes through a temporary file + rename, so a crash
    mid-checkpoint leaves the previous checkpoint intact, and the pickled
    state is wrapped in an envelope carrying its SHA-256 digest, which
    :func:`load_checkpoint` verifies before unpickling anything.

    A telemetry pipeline attached to the system (see
    :mod:`repro.telemetry`) is pickled along with it, so a resumed run
    keeps its spans, metrics and events; its JSON-safe
    :meth:`~repro.telemetry.runtime.Telemetry.snapshot` is additionally
    stored under the envelope's ``"telemetry"`` key so operators can
    inspect a checkpoint without unpickling the deployment state.
    """
    if next_cycle < 0:
        raise ValueError(f"next_cycle must be >= 0, got {next_cycle}")
    path = Path(path)
    telemetry = getattr(system, "telemetry", None)
    scheduler = getattr(system, "scheduler", None)
    state = pickle.dumps(
        {
            "next_cycle": int(next_cycle),
            "system": system,
            "stream": stream,
            "outcome": outcome,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    envelope = {
        "checkpoint_version": _CHECKPOINT_VERSION,
        "sha256": hashlib.sha256(state).hexdigest(),
        "length": len(state),
        "state": state,
        # Advisory inspection copy; the digest covers only the restorable
        # state, so a telemetry-only diff never invalidates a checkpoint.
        "telemetry": None if telemetry is None else telemetry.snapshot(),
        # Advisory too: the scheduler's live event heap travels inside the
        # pickled system (pending straggler arrivals survive a resume);
        # this JSON summary lets operators see how many responses are in
        # flight without unpickling anything.
        "scheduler": None if scheduler is None else scheduler.snapshot(),
    }
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def load_checkpoint(
    path: str | Path,
) -> tuple["CrowdLearnSystem", "SensingCycleStream", "RunOutcome", int]:
    """Load ``(system, stream, outcome, next_cycle)`` from a checkpoint.

    The deployment state's byte length and SHA-256 digest are verified
    before the state is unpickled; a mismatch means the file was corrupted
    after it was written (bad disk, interrupted copy, manual edit) and
    raises a :class:`CheckpointIntegrityError` whose ``check`` attribute
    names the failing check — ``format``, ``version``, ``length`` or
    ``sha256`` — so the operator (and the ``repro run --resume`` exit
    path) can tell truncation from bit rot from a version skew.
    """
    try:
        envelope = pickle.loads(Path(path).read_bytes())
    except (pickle.UnpicklingError, EOFError) as exc:
        raise CheckpointIntegrityError(
            f"corrupt checkpoint file {path}: {exc}", check="format"
        ) from exc
    if not isinstance(envelope, dict):
        raise CheckpointIntegrityError(
            f"corrupt checkpoint file {path}: not a snapshot", check="format"
        )
    version = envelope.get("checkpoint_version")
    if version != _CHECKPOINT_VERSION:
        raise CheckpointIntegrityError(
            f"unsupported checkpoint version {version!r} "
            f"(expected {_CHECKPOINT_VERSION})",
            check="version",
        )
    state = envelope.get("state")
    recorded = envelope.get("sha256")
    length = envelope.get("length")
    if (
        not isinstance(state, bytes)
        or not isinstance(recorded, str)
        or not isinstance(length, int)
    ):
        raise CheckpointIntegrityError(
            f"corrupt checkpoint file {path}: not a snapshot", check="format"
        )
    if len(state) != length:
        raise CheckpointIntegrityError(
            f"checkpoint {path} failed its integrity check (length): "
            f"recorded {length} state bytes, found {len(state)}.  The "
            "snapshot was truncated or padded after it was written; resume "
            "from an older checkpoint or restart the deployment.",
            check="length",
        )
    computed = hashlib.sha256(state).hexdigest()
    if computed != recorded:
        raise CheckpointIntegrityError(
            f"checkpoint {path} failed its integrity check (sha256): "
            f"recorded {recorded[:12]}..., computed {computed[:12]}....  The "
            "file was corrupted after it was written; resume from an older "
            "checkpoint or restart the deployment from scratch.",
            check="sha256",
        )
    payload = pickle.loads(state)
    return (
        payload["system"],
        payload["stream"],
        payload["outcome"],
        int(payload["next_cycle"]),
    )
