"""AI failure-scenario diagnostics (the paper's troubleshooting story).

The paper's premise (§III-A) is that black-box DDA models fail in ways that
"cannot be easily diagnosed without human scrutiny".  With the synthetic
dataset the ground-truth failure archetypes are known, so this module
produces the report a human analyst would assemble: per-archetype accuracy,
the *confidently wrong* rate (high softmax confidence, wrong label — the
cases committee entropy can never surface), and where each archetype's
predictions land.  It is the quantitative version of the paper's Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import DisasterDataset
from repro.data.metadata import DamageLabel, FailureArchetype
from repro.eval.reporting import format_table

__all__ = ["ArchetypeDiagnosis", "FailureReport", "diagnose"]


@dataclass(frozen=True)
class ArchetypeDiagnosis:
    """How a model behaves on one failure archetype."""

    archetype: FailureArchetype
    n_images: int
    accuracy: float
    confidently_wrong_rate: float
    mean_confidence: float
    predicted_distribution: np.ndarray  # fraction predicted per class


@dataclass(frozen=True)
class FailureReport:
    """Per-archetype diagnosis of one model on one dataset."""

    model_name: str
    diagnoses: dict[FailureArchetype, ArchetypeDiagnosis]

    def overall_accuracy(self) -> float:
        """Image-weighted accuracy across all archetypes."""
        total = sum(d.n_images for d in self.diagnoses.values())
        if total == 0:
            return 0.0
        return (
            sum(d.accuracy * d.n_images for d in self.diagnoses.values()) / total
        )

    def innate_failure_archetypes(
        self, accuracy_floor: float = 0.2, confident_rate: float = 0.5
    ) -> list[FailureArchetype]:
        """Archetypes where the model is both wrong and confident.

        These are the failures the paper argues retraining cannot fix and
        only crowd offloading addresses.
        """
        return [
            a
            for a, d in self.diagnoses.items()
            if d.n_images > 0
            and d.accuracy <= accuracy_floor
            and d.confidently_wrong_rate >= confident_rate
        ]

    def render(self) -> str:
        rows = []
        for archetype in FailureArchetype:
            diagnosis = self.diagnoses.get(archetype)
            if diagnosis is None or diagnosis.n_images == 0:
                continue
            rows.append(
                [
                    archetype.value,
                    diagnosis.n_images,
                    diagnosis.accuracy,
                    diagnosis.confidently_wrong_rate,
                    diagnosis.mean_confidence,
                ]
            )
        return format_table(
            [
                "archetype", "images", "accuracy",
                "confidently-wrong", "mean confidence",
            ],
            rows,
            title=f"Failure report: {self.model_name}",
        )


def diagnose(
    model,
    dataset: DisasterDataset,
    confidence_threshold: float = 0.7,
) -> FailureReport:
    """Build a :class:`FailureReport` for any object with ``predict_proba``.

    Parameters
    ----------
    model:
        A :class:`~repro.models.base.DDAModel` or committee — anything with
        ``predict_proba(dataset) -> (n, k)`` and optionally ``name``.
    dataset:
        Labeled evaluation images.
    confidence_threshold:
        Softmax confidence above which a wrong prediction counts as
        *confidently wrong*.
    """
    if not 0.0 < confidence_threshold <= 1.0:
        raise ValueError(
            f"confidence_threshold must be in (0, 1], got {confidence_threshold}"
        )
    if len(dataset) == 0:
        raise ValueError("cannot diagnose on an empty dataset")
    probs = np.asarray(model.predict_proba(dataset))
    predicted = np.argmax(probs, axis=1)
    confidence = probs[np.arange(len(dataset)), predicted]
    truth = dataset.labels()
    metas = dataset.metadata()

    diagnoses: dict[FailureArchetype, ArchetypeDiagnosis] = {}
    for archetype in FailureArchetype:
        # Identity comparison per element: numpy's == would coerce the
        # str-enum scalar to a string and match nothing.
        mask = np.array([m.archetype is archetype for m in metas])
        n = int(mask.sum())
        if n == 0:
            diagnoses[archetype] = ArchetypeDiagnosis(
                archetype, 0, 0.0, 0.0, 0.0,
                np.zeros(DamageLabel.count()),
            )
            continue
        correct = predicted[mask] == truth[mask]
        confidently_wrong = (~correct) & (
            confidence[mask] >= confidence_threshold
        )
        counts = np.bincount(predicted[mask], minlength=DamageLabel.count())
        diagnoses[archetype] = ArchetypeDiagnosis(
            archetype=archetype,
            n_images=n,
            accuracy=float(correct.mean()),
            confidently_wrong_rate=float(confidently_wrong.mean()),
            mean_confidence=float(confidence[mask].mean()),
            predicted_distribution=counts / n,
        )
    name = getattr(model, "name", type(model).__name__)
    return FailureReport(model_name=name, diagnoses=diagnoses)
