"""Evaluation layer: baselines, delay model, experiment runner, reporting."""

from repro.eval.baselines import (
    AIOnlyScheme,
    EnsembleScheme,
    HybridALScheme,
    HybridParaScheme,
    Scheme,
    SchemeResult,
)
from repro.eval.bench import render_bench, run_bench, write_bench
from repro.eval.delay_model import AlgorithmDelayModel
from repro.eval.diagnostics import ArchetypeDiagnosis, FailureReport, diagnose
from repro.eval.parallel import (
    ArmResult,
    ArmSpec,
    chaos_arm,
    run_arms,
    run_chaos_arms,
)
from repro.eval.persistence import (
    cycle_outcome_from_dict,
    cycle_outcome_to_dict,
    load_checkpoint,
    load_results,
    run_outcome_from_dict,
    run_outcome_to_dict,
    save_checkpoint,
    save_results,
    scheme_result_from_dict,
    scheme_result_to_dict,
)
from repro.eval.reporting import format_context_table, format_series, format_table
from repro.eval.robustness import (
    RobustnessStudy,
    run_robustness_study,
    summarize_across_seeds,
)
from repro.eval.runner import (
    ExperimentSetup,
    build_crowdlearn,
    fast_config,
    prepare,
    run_all_schemes,
    scheme_result_from_run,
)

__all__ = [
    "ArmResult",
    "ArmSpec",
    "chaos_arm",
    "run_arms",
    "run_chaos_arms",
    "render_bench",
    "run_bench",
    "write_bench",
    "AIOnlyScheme",
    "EnsembleScheme",
    "HybridALScheme",
    "HybridParaScheme",
    "Scheme",
    "SchemeResult",
    "AlgorithmDelayModel",
    "ArchetypeDiagnosis",
    "FailureReport",
    "diagnose",
    "cycle_outcome_from_dict",
    "cycle_outcome_to_dict",
    "load_checkpoint",
    "load_results",
    "run_outcome_from_dict",
    "run_outcome_to_dict",
    "save_checkpoint",
    "save_results",
    "scheme_result_from_dict",
    "scheme_result_to_dict",
    "format_context_table",
    "format_series",
    "format_table",
    "RobustnessStudy",
    "run_robustness_study",
    "summarize_across_seeds",
    "ExperimentSetup",
    "build_crowdlearn",
    "fast_config",
    "prepare",
    "run_all_schemes",
    "scheme_result_from_run",
]
