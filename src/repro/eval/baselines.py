"""The compared schemes (§V-A): AI-only baselines and human-AI hybrids.

Every scheme consumes the same sensing-cycle stream and produces a
:class:`SchemeResult` with aligned predictions, scores and crowd delays, so
the experiment drivers can tabulate Table II/III and plot Figures 7-9
uniformly.

- **AI-only** — a single expert labels everything (VGG16 / BoVW / DDM).
- **Ensemble** — confidence-rated boosting over the three experts [52].
- **Hybrid-Para** — humans and AI label independently; a complexity index
  decides per image whose answer to keep [53].  Fixed incentive, majority
  voting, no model interaction.
- **Hybrid-AL** — crowdsourced active learning [13]: query the most
  uncertain images, majority-vote the answers, retrain the model; the AI
  still labels everything itself.  Fixed incentive.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.boosting.adaboost import ExpertBooster
from repro.core.committee import Committee
from repro.crowd.platform import CrowdsourcingPlatform
from repro.crowd.tasks import QueryResult
from repro.data.dataset import DisasterDataset
from repro.data.stream import SensingCycleStream
from repro.metrics.information import normalized_entropy
from repro.models.base import DDAModel
from repro.truth.voting import aggregate_by_voting, vote_distribution
from repro.utils.clock import TemporalContext

__all__ = [
    "SchemeResult",
    "Scheme",
    "AIOnlyScheme",
    "EnsembleScheme",
    "HybridParaScheme",
    "HybridALScheme",
]


@dataclass
class SchemeResult:
    """Aligned outputs of one scheme over a stream."""

    name: str
    y_true: np.ndarray
    y_pred: np.ndarray
    scores: np.ndarray
    crowd_delays: list[float] = field(default_factory=list)
    crowd_delay_contexts: list[TemporalContext] = field(default_factory=list)
    cost_cents: float = 0.0

    def mean_crowd_delay(self) -> float | None:
        """Mean per-cycle crowd delay; None for AI-only schemes."""
        if not self.crowd_delays:
            return None
        return float(np.mean(self.crowd_delays))

    def crowd_delay_by_context(self) -> dict[TemporalContext, float]:
        """Mean crowd delay per temporal context."""
        table: dict[TemporalContext, list[float]] = {}
        for delay, context in zip(self.crowd_delays, self.crowd_delay_contexts):
            table.setdefault(context, []).append(delay)
        return {c: float(np.mean(v)) for c, v in table.items()}


class Scheme(ABC):
    """A compared scheme: runs over a stream, returns aligned outputs."""

    name: str = "scheme"

    @abstractmethod
    def run(self, stream: SensingCycleStream) -> SchemeResult:
        """Label every image the stream delivers."""


class AIOnlyScheme(Scheme):
    """A single pre-trained expert labels every image (no crowd)."""

    def __init__(self, model: DDAModel, name: str | None = None) -> None:
        self.model = model
        self.name = name or model.name

    def run(self, stream: SensingCycleStream) -> SchemeResult:
        dataset = stream.all_images()
        scores = self.model.predict_proba(dataset)
        return SchemeResult(
            name=self.name,
            y_true=dataset.labels(),
            y_pred=np.argmax(scores, axis=1),
            scores=scores,
        )


class EnsembleScheme(Scheme):
    """Boosted aggregation of the three experts (the Ensemble baseline)."""

    name = "Ensemble"

    def __init__(
        self,
        models: list[DDAModel],
        calibration_set: DisasterDataset,
        n_rounds: int = 10,
    ) -> None:
        if not models:
            raise ValueError("ensemble requires at least one model")
        self.models = list(models)
        calibration_probs = [m.predict_proba(calibration_set) for m in self.models]
        self.booster = ExpertBooster(
            n_rounds=n_rounds, n_classes=models[0].n_classes
        ).fit(calibration_probs, calibration_set.labels())

    def predict_proba(self, dataset: DisasterDataset) -> np.ndarray:
        """Boosted mixture probabilities on a dataset."""
        probs = [m.predict_proba(dataset) for m in self.models]
        return self.booster.predict_proba(probs)

    def run(self, stream: SensingCycleStream) -> SchemeResult:
        dataset = stream.all_images()
        scores = self.predict_proba(dataset)
        return SchemeResult(
            name=self.name,
            y_true=dataset.labels(),
            y_pred=np.argmax(scores, axis=1),
            scores=scores,
        )


class HybridParaScheme(Scheme):
    """Parallel human-AI labeling fused by a complexity index [53].

    Per cycle: a single AI model labels everything; a *random* subset goes
    to the crowd at a fixed incentive; for queried images whose AI
    complexity (normalized prediction entropy) exceeds a threshold, the
    crowd's majority vote wins, otherwise the AI's label stands.  The crowd
    never feeds back into the model — humans and machine work in parallel,
    which is exactly why confidently-wrong AI answers survive.
    """

    name = "Hybrid-Para"

    def __init__(
        self,
        model: DDAModel,
        platform: CrowdsourcingPlatform,
        incentive_cents: float,
        queries_per_cycle: int,
        rng: np.random.Generator,
        complexity_threshold: float = 0.95,
    ) -> None:
        if incentive_cents <= 0:
            raise ValueError("incentive must be positive")
        if queries_per_cycle < 0:
            raise ValueError("queries_per_cycle must be >= 0")
        if not 0.0 <= complexity_threshold <= 1.0:
            raise ValueError("complexity_threshold must be in [0, 1]")
        self.model = model
        self.platform = platform
        self.incentive_cents = incentive_cents
        self.queries_per_cycle = queries_per_cycle
        self.rng = rng
        self.complexity_threshold = complexity_threshold

    def run(self, stream: SensingCycleStream) -> SchemeResult:
        y_true: list[np.ndarray] = []
        y_pred: list[np.ndarray] = []
        scores: list[np.ndarray] = []
        delays: list[float] = []
        delay_contexts: list[TemporalContext] = []
        cost = 0.0
        for cycle in stream:
            dataset = cycle.dataset()
            probs = self.model.predict_proba(dataset)
            labels = np.argmax(probs, axis=1)
            n_queries = min(self.queries_per_cycle, len(dataset))
            if n_queries:
                chosen = self.rng.choice(len(dataset), n_queries, replace=False)
                results: list[QueryResult] = []
                for index in chosen:
                    results.append(
                        self.platform.post_query(
                            dataset[int(index)].metadata,
                            self.incentive_cents,
                            cycle.context,
                        )
                    )
                    cost += self.incentive_cents
                crowd_labels = aggregate_by_voting(results)
                for index, result, crowd_label in zip(chosen, results, crowd_labels):
                    complexity = normalized_entropy(probs[int(index)])
                    if complexity >= self.complexity_threshold:
                        labels[int(index)] = crowd_label
                        scores_row = vote_distribution(result)
                        probs[int(index)] = scores_row
                delays.append(float(np.mean([r.mean_delay for r in results])))
                delay_contexts.append(cycle.context)
            y_true.append(dataset.labels())
            y_pred.append(labels)
            scores.append(probs)
        return SchemeResult(
            name=self.name,
            y_true=np.concatenate(y_true),
            y_pred=np.concatenate(y_pred),
            scores=np.concatenate(scores),
            crowd_delays=delays,
            crowd_delay_contexts=delay_contexts,
            cost_cents=cost,
        )


class HybridALScheme(Scheme):
    """Crowdsourced active learning [13]: query-uncertain, vote, retrain.

    The committee (uniform weights) labels everything itself; the most
    entropy-uncertain images go to the crowd at a fixed incentive; the
    majority-voted answers retrain the committee for the next cycle.  Crowd
    labels never *replace* AI labels — which is exactly why this baseline
    cannot fix the innate failure cases.
    """

    name = "Hybrid-AL"

    def __init__(
        self,
        committee: Committee,
        platform: CrowdsourcingPlatform,
        incentive_cents: float,
        queries_per_cycle: int,
        replay_pool: DisasterDataset,
        rng: np.random.Generator,
        replay_size: int = 30,
    ) -> None:
        if incentive_cents <= 0:
            raise ValueError("incentive must be positive")
        if queries_per_cycle < 0:
            raise ValueError("queries_per_cycle must be >= 0")
        self.committee = committee
        self.platform = platform
        self.incentive_cents = incentive_cents
        self.queries_per_cycle = queries_per_cycle
        self.replay_pool = replay_pool
        self.rng = rng
        self.replay_size = replay_size
        # Crowd-labeled images accumulate across cycles; retraining on the
        # growing pool (one pass per cycle) is what keeps fine-tuning stable
        # instead of oscillating on each cycle's five fresh labels.
        self._pool_images: list = []
        self._pool_labels: list[int] = []
        for expert in committee.experts:
            if hasattr(expert, "retrain_epochs"):
                expert.retrain_epochs = 1

    def run(self, stream: SensingCycleStream) -> SchemeResult:
        y_true: list[np.ndarray] = []
        y_pred: list[np.ndarray] = []
        scores: list[np.ndarray] = []
        delays: list[float] = []
        delay_contexts: list[TemporalContext] = []
        cost = 0.0
        for cycle in stream:
            dataset = cycle.dataset()
            votes = self.committee.expert_votes(dataset)
            probs = self.committee.committee_vote(dataset, votes)
            labels = np.argmax(probs, axis=1)
            y_true.append(dataset.labels())
            y_pred.append(labels)
            scores.append(probs)
            n_queries = min(self.queries_per_cycle, len(dataset))
            if n_queries:
                entropy = self.committee.committee_entropy(dataset, votes)
                chosen = np.argsort(-entropy, kind="stable")[:n_queries]
                results = []
                for index in chosen:
                    results.append(
                        self.platform.post_query(
                            dataset[int(index)].metadata,
                            self.incentive_cents,
                            cycle.context,
                        )
                    )
                    cost += self.incentive_cents
                crowd_labels = aggregate_by_voting(results)
                delays.append(float(np.mean([r.mean_delay for r in results])))
                delay_contexts.append(cycle.context)
                self._retrain(dataset, chosen, crowd_labels)
        return SchemeResult(
            name=self.name,
            y_true=np.concatenate(y_true),
            y_pred=np.concatenate(y_pred),
            scores=np.concatenate(scores),
            crowd_delays=delays,
            crowd_delay_contexts=delay_contexts,
            cost_cents=cost,
        )

    def _retrain(
        self,
        dataset: DisasterDataset,
        chosen: np.ndarray,
        crowd_labels: np.ndarray,
    ) -> None:
        for index, label in zip(chosen, crowd_labels):
            self._pool_images.append(dataset[int(index)])
            self._pool_labels.append(int(label))
        images = list(self._pool_images)
        labels = list(self._pool_labels)
        if self.replay_size > 0 and len(self.replay_pool) > 0:
            take = min(self.replay_size, len(self.replay_pool))
            for index in self.rng.choice(len(self.replay_pool), take, replace=False):
                replay_image = self.replay_pool[int(index)]
                images.append(replay_image)
                labels.append(int(replay_image.true_label))
        self.committee.retrain(
            DisasterDataset(images), np.array(labels, dtype=np.int64), self.rng
        )
