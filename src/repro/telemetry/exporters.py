"""Exporters: JSONL event log, Prometheus text format, summary tables.

Three consumers, three formats:

- :func:`export_jsonl` / :func:`read_jsonl` — an append-friendly archival
  log (one JSON object per line: spans, events, metric samples) that
  round-trips losslessly;
- :func:`to_prometheus` — the Prometheus text exposition format, so a
  deployment can be scraped (or diffed) with standard tooling;
- :func:`summary_report` — the human-readable per-run breakdown the
  ``repro trace`` CLI prints: per-stage wall time and the cost/volume
  counters.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.tracing import SpanRecord, aggregate_spans

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.runtime import Telemetry

__all__ = ["export_jsonl", "read_jsonl", "to_prometheus", "summary_report"]

#: Counters rendered in the cost section of the summary, in order.
_COST_COUNTERS = (
    ("cost_cents_total", "crowd spend (cents)"),
    ("resilience_refunded_cents_total", "refunded (cents)"),
    ("queries_posted_total", "queries posted"),
    ("responses_total", "worker responses"),
)


def export_jsonl(telemetry: "Telemetry", path: str | Path) -> Path:
    """Write every span, event and metric sample as one JSON line each.

    The first line is a header record carrying counts, so a truncated file
    is detectable on read-back.
    """
    path = Path(path)
    registry_state = telemetry.registry.as_dict()["instruments"]
    lines = [json.dumps({
        "type": "header",
        "n_spans": len(telemetry.tracer.spans),
        "n_events": len(telemetry.events),
        "n_metrics": len(registry_state),
    })]
    for span in telemetry.tracer.spans:
        lines.append(json.dumps({"type": "span", **span.as_dict()}))
    for event in telemetry.events:
        lines.append(json.dumps({"type": "event", **event}))
    for entry in registry_state:
        lines.append(json.dumps({"type": "metric", **entry}))
    path.write_text("\n".join(lines) + "\n")
    return path


def read_jsonl(path: str | Path) -> dict[str, Any]:
    """Parse an :func:`export_jsonl` file back into structured records.

    Returns ``{"spans": [SpanRecord], "events": [dict],
    "metrics": MetricsRegistry}``.  Raises :class:`ValueError` on malformed
    or truncated files.
    """
    spans: list[SpanRecord] = []
    events: list[dict[str, Any]] = []
    metric_entries: list[dict[str, Any]] = []
    header: dict[str, Any] | None = None
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
        kind = record.pop("type", None)
        if kind == "header":
            header = record
        elif kind == "span":
            spans.append(SpanRecord.from_dict(record))
        elif kind == "event":
            events.append(record)
        elif kind == "metric":
            metric_entries.append(record)
        else:
            raise ValueError(f"{path}:{lineno}: unknown record type {kind!r}")
    if header is not None:
        expected = (header.get("n_spans"), header.get("n_events"),
                    header.get("n_metrics"))
        actual = (len(spans), len(events), len(metric_entries))
        if expected != actual:
            raise ValueError(
                f"{path}: truncated log: header promises {expected} "
                f"(spans, events, metrics), found {actual}"
            )
    return {
        "spans": spans,
        "events": events,
        "metrics": MetricsRegistry.from_dict({"instruments": metric_entries}),
    }


def _format_value(value: float) -> str:
    """A Prometheus-grammar value token."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    by_name: dict[str, list] = {}
    for instrument in registry:
        by_name.setdefault(instrument.name, []).append(instrument)
    lines: list[str] = []
    for name, instruments in by_name.items():
        first = instruments[0]
        if first.help:
            lines.append(f"# HELP {name} {_escape_help(first.help)}")
        lines.append(f"# TYPE {name} {first.kind}")
        for instrument in instruments:
            if isinstance(instrument, Histogram):
                cumulative = instrument.cumulative_counts()
                bounds = [*instrument.buckets, math.inf]
                for bound, count in zip(bounds, cumulative):
                    le = "+Inf" if math.isinf(bound) else _format_value(bound)
                    labels = dict(instrument.labels)
                    labels["le"] = le
                    inner = ",".join(
                        f'{k}="{v}"' for k, v in sorted(labels.items())
                    )
                    lines.append(f"{name}_bucket{{{inner}}} {count}")
                suffix = instrument.label_suffix()
                lines.append(
                    f"{name}_sum{suffix} {_format_value(instrument.sum)}"
                )
                lines.append(f"{name}_count{suffix} {instrument.count}")
            else:
                lines.append(
                    f"{name}{instrument.label_suffix()} "
                    f"{_format_value(instrument.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def summary_report(telemetry: "Telemetry", title: str = "Telemetry") -> str:
    """Human-readable per-run breakdown: stage wall time, then costs.

    Stage share is relative to the total time of root spans (spans with no
    parent), so nested stages show how a cycle's budget of wall time is
    spent without double counting the parent.
    """
    from repro.eval.reporting import format_table

    spans = telemetry.tracer.spans
    root_total = sum(s.duration for s in telemetry.tracer.roots())
    stats = aggregate_spans(spans)
    rows = [
        [
            name,
            s.count,
            float(s.total_seconds),
            float(s.mean_seconds * 1e3),
            float(100.0 * s.total_seconds / root_total) if root_total else 0.0,
        ]
        for name, s in sorted(
            stats.items(), key=lambda kv: -kv[1].total_seconds
        )
    ]
    parts = [
        format_table(
            ["stage", "count", "total_s", "mean_ms", "share_%"],
            rows,
            title=f"{title}: per-stage wall time "
                  f"({len(spans)} spans, {root_total:.3f}s traced)",
        )
    ]
    cost_rows = []
    for name, label in _COST_COUNTERS:
        instrument = telemetry.registry.get(name)
        if instrument is not None:
            cost_rows.append([label, float(instrument.value)])
    if cost_rows:
        parts.append(
            format_table(
                ["counter", "value"],
                cost_rows,
                title=f"{title}: cost and volume",
            )
        )
    resilience_rows = [
        [instrument.name, float(instrument.value)]
        for instrument in telemetry.registry
        if instrument.name.startswith("resilience_")
        and instrument.name not in dict(_COST_COUNTERS)
    ]
    if any(value for _, value in resilience_rows):
        parts.append(
            format_table(
                ["counter", "value"],
                resilience_rows,
                title=f"{title}: resilience interventions",
            )
        )
    guard_rows = [
        [instrument.name, float(instrument.value)]
        for instrument in telemetry.registry
        if instrument.name.startswith(("guard_", "trainer_sentinel_"))
        and instrument.name not in dict(_COST_COUNTERS)
    ]
    if any(value for _, value in guard_rows):
        parts.append(
            format_table(
                ["counter", "value"],
                guard_rows,
                title=f"{title}: guard interventions",
            )
        )
    recovery_rows = [
        [instrument.name, float(instrument.value)]
        for instrument in telemetry.registry
        if instrument.name.startswith("recovery_")
        and instrument.name not in dict(_COST_COUNTERS)
    ]
    if any(value for _, value in recovery_rows):
        parts.append(
            format_table(
                ["counter", "value"],
                recovery_rows,
                title=f"{title}: Recovery",
            )
        )
    health_rows = [
        [instrument.name, float(instrument.value)]
        for instrument in telemetry.registry
        if instrument.name.startswith(("breaker_", "health_"))
        and instrument.name not in dict(_COST_COUNTERS)
    ]
    if any(value for _, value in health_rows):
        parts.append(
            format_table(
                ["counter", "value"],
                health_rows,
                title=f"{title}: Health",
            )
        )
    return "\n\n".join(parts)
