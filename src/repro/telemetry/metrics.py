"""Counter / Gauge / Histogram instruments and their registry.

The instrument model follows Prometheus semantics: counters only go up,
gauges go anywhere finite, histograms bucket observations under fixed
log-scale upper bounds (plus an implicit ``+Inf`` bucket) and track the
running sum and count.  Instruments are identified by a metric name plus an
optional frozen label set; :class:`MetricsRegistry` deduplicates them so the
same call site can fetch-and-update without bookkeeping.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from typing import Any, Iterator

__all__ = ["log_buckets", "DEFAULT_TIME_BUCKETS", "Counter", "Gauge",
           "Histogram", "MetricsRegistry"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def log_buckets(
    lo: float = 1e-4, hi: float = 1e3, per_decade: int = 1
) -> tuple[float, ...]:
    """Fixed log-scale histogram bucket bounds from ``lo`` to ``hi``.

    Returns ``per_decade`` geometrically spaced bounds per factor of ten,
    inclusive of both endpoints (up to float rounding).  The implicit
    ``+Inf`` bucket is added by :class:`Histogram` itself.
    """
    if lo <= 0 or not math.isfinite(lo):
        raise ValueError(f"lo must be positive and finite, got {lo}")
    if hi <= lo or not math.isfinite(hi):
        raise ValueError(f"hi must be finite and > lo, got {hi}")
    if per_decade <= 0:
        raise ValueError(f"per_decade must be positive, got {per_decade}")
    n_steps = round(math.log10(hi / lo) * per_decade)
    bounds = [lo * 10 ** (k / per_decade) for k in range(n_steps + 1)]
    if bounds[-1] < hi:
        bounds.append(hi)
    return tuple(float(b) for b in bounds)


#: Default buckets for wall-time observations: 0.1 ms .. 1000 s, log-spaced.
DEFAULT_TIME_BUCKETS = log_buckets(1e-4, 1e3, per_decade=1)

#: Instrument labels are stored canonically as a sorted (key, value) tuple.
LabelSet = tuple[tuple[str, str], ...]


def _labelset(labels: dict[str, Any]) -> LabelSet:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    """Common identity for all instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: LabelSet) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labels = labels

    def label_suffix(self) -> str:
        """The ``{k="v",...}`` exposition suffix (empty when unlabelled)."""
        if not self.labels:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return "{" + inner + "}"


class Counter(_Instrument):
    """A monotonically non-decreasing accumulator."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: LabelSet = ()) -> None:
        super().__init__(name, help, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be finite and >= 0)."""
        amount = float(amount)
        if not math.isfinite(amount) or amount < 0:
            raise ValueError(
                f"counter increments must be finite and >= 0, got {amount}"
            )
        self.value += amount


class Gauge(_Instrument):
    """A value that can go up and down (budgets, weights, queue depths)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: LabelSet = ()) -> None:
        super().__init__(name, help, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError("gauge value must not be NaN")
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + float(amount))

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - float(amount))


class Histogram(_Instrument):
    """Observations bucketed under fixed ascending upper bounds.

    ``buckets`` are finite, strictly ascending, non-negative upper bounds;
    an implicit ``+Inf`` bucket catches everything above the last bound
    (including ``inf`` observations).  Zero is a valid observation;
    negative and NaN observations are rejected — durations, cents and
    counts are all non-negative by construction, so a negative value is a
    caller bug worth surfacing.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
                 labels: LabelSet = ()) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        for bound in bounds:
            if not math.isfinite(bound) or bound < 0:
                raise ValueError(
                    f"bucket bounds must be finite and >= 0, got {bound}"
                )
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly ascending: {bounds}")
        self.buckets = bounds
        #: per-bucket (non-cumulative) counts; [-1] is the +Inf bucket.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value) or value < 0:
            raise ValueError(
                f"histogram observations must be >= 0 and not NaN, got {value}"
            )
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> list[int]:
        """Cumulative counts per bound (Prometheus ``le`` semantics), +Inf last."""
        total = 0
        out = []
        for count in self.bucket_counts:
            total += count
            out.append(total)
        return out

    def mean(self) -> float:
        """Mean observation (0 when empty)."""
        return self.sum / self.count if self.count else 0.0


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Deduplicating factory and container for instruments.

    The same ``(name, labels)`` pair always returns the same instrument;
    requesting it as a different kind (or a histogram with different
    buckets) is a programming error and raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, LabelSet], Instrument] = {}

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._get(Counter, name, help, _labelset(labels))

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._get(Gauge, name, help, _labelset(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        instrument = self._get(
            Histogram, name, help, _labelset(labels), buckets=buckets
        )
        if instrument.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{instrument.buckets}"
            )
        return instrument

    def _get(self, cls, name, help, labels, **kwargs):
        key = (name, labels)
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as a "
                    f"{existing.kind}, not a {cls.kind}"
                )
            return existing
        for (other_name, _), other in self._instruments.items():
            if other_name == name and not isinstance(other, cls):
                raise ValueError(
                    f"metric {name!r} already registered as a "
                    f"{other.kind}, not a {cls.kind}"
                )
        instrument = cls(name, help=help, labels=labels, **kwargs)
        self._instruments[key] = instrument
        return instrument

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def get(self, name: str, **labels: Any) -> Instrument | None:
        """The instrument for ``(name, labels)``, or None if never created."""
        return self._instruments.get((name, _labelset(labels)))

    def value(self, name: str, default: float = 0.0, **labels: Any) -> float:
        """Counter/gauge value (or histogram sum) for a metric, with default."""
        instrument = self.get(name, **labels)
        if instrument is None:
            return default
        if isinstance(instrument, Histogram):
            return instrument.sum
        return instrument.value

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot of every instrument's state."""
        samples = []
        for instrument in self:
            entry: dict[str, Any] = {
                "kind": instrument.kind,
                "name": instrument.name,
                "help": instrument.help,
                "labels": {k: v for k, v in instrument.labels},
            }
            if isinstance(instrument, Histogram):
                entry["buckets"] = list(instrument.buckets)
                entry["bucket_counts"] = list(instrument.bucket_counts)
                entry["sum"] = instrument.sum
                entry["count"] = instrument.count
            else:
                entry["value"] = instrument.value
            samples.append(entry)
        return {"instruments": samples}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from an :meth:`as_dict` snapshot."""
        registry = MetricsRegistry()
        for entry in data.get("instruments", []):
            labels = dict(entry.get("labels", {}))
            kind = entry["kind"]
            if kind == "counter":
                registry.counter(
                    entry["name"], help=entry.get("help", ""), **labels
                ).inc(float(entry["value"]))
            elif kind == "gauge":
                registry.gauge(
                    entry["name"], help=entry.get("help", ""), **labels
                ).set(float(entry["value"]))
            elif kind == "histogram":
                hist = registry.histogram(
                    entry["name"],
                    help=entry.get("help", ""),
                    buckets=tuple(entry["buckets"]),
                    **labels,
                )
                hist.bucket_counts = [int(c) for c in entry["bucket_counts"]]
                hist.sum = float(entry["sum"])
                hist.count = int(entry["count"])
            else:
                raise ValueError(f"unknown instrument kind {kind!r}")
        return registry
