"""Span tracing for the closed loop, with an injectable monotonic clock.

A :class:`Tracer` produces :class:`Span` context managers; finished spans
become immutable :class:`SpanRecord` entries (name, start/end, parent,
attributes).  The clock is any zero-argument callable returning seconds —
:func:`time.perf_counter` by default, or a :class:`ManualClock` in tests so
trace timings are exactly reproducible alongside the seeded
:class:`~repro.utils.clock.TemporalContext` simulation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = ["Clock", "ManualClock", "SpanRecord", "Span", "Tracer",
           "aggregate_spans", "SpanStats"]

#: A monotonic clock: () -> seconds.
Clock = Callable[[], float]


@dataclass
class ManualClock:
    """A deterministic clock for tests: each reading advances a fixed tick.

    Readings return 0, ``tick_seconds``, ``2 * tick_seconds``, ... so span
    durations depend only on how many readings happen between enter and
    exit — never on the machine running the test.
    """

    tick_seconds: float = 1.0
    now: float = field(default=0.0)

    def __call__(self) -> float:
        reading = self.now
        self.now += self.tick_seconds
        return reading

    def advance(self, seconds: float) -> None:
        """Jump forward without producing a reading."""
        if seconds < 0:
            raise ValueError(f"cannot rewind a monotonic clock: {seconds}")
        self.now += seconds


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    name: str
    start: float
    end: float
    span_id: int
    parent_id: int | None
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Wall seconds between enter and exit."""
        return self.end - self.start

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe mapping (attributes stored verbatim)."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attributes": dict(self.attributes),
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "SpanRecord":
        """Inverse of :meth:`as_dict`."""
        return SpanRecord(
            name=str(data["name"]),
            start=float(data["start"]),
            end=float(data["end"]),
            span_id=int(data["span_id"]),
            parent_id=(
                None if data.get("parent_id") is None
                else int(data["parent_id"])
            ),
            attributes=dict(data.get("attributes", {})),
        )


class Span:
    """A live span; use as a context manager around the timed region."""

    __slots__ = ("_tracer", "name", "attributes", "_start", "_span_id",
                 "_parent_id")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self._start = 0.0
        self._span_id = -1
        self._parent_id: int | None = None

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes to the span; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self._span_id = tracer._next_id
        tracer._next_id += 1
        self._parent_id = tracer._stack[-1] if tracer._stack else None
        tracer._stack.append(self._span_id)
        self._start = tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        end = tracer.clock()
        if tracer._stack and tracer._stack[-1] == self._span_id:
            tracer._stack.pop()
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        record = SpanRecord(
            name=self.name,
            start=self._start,
            end=end,
            span_id=self._span_id,
            parent_id=self._parent_id,
            attributes=self.attributes,
        )
        tracer.spans.append(record)
        if tracer.on_finish is not None:
            tracer.on_finish(record)


class Tracer:
    """Collects finished spans in end order.

    Parameters
    ----------
    clock:
        Monotonic seconds source (injectable for determinism).
    on_finish:
        Optional callback invoked with every finished :class:`SpanRecord`
        (the telemetry facade uses it to feed the span-duration histogram).
    """

    def __init__(self, clock: Clock = time.perf_counter,
                 on_finish: Callable[[SpanRecord], None] | None = None) -> None:
        self.clock = clock
        self.on_finish = on_finish
        self.spans: list[SpanRecord] = []
        self._stack: list[int] = []
        self._next_id = 0

    def span(self, name: str, **attributes: Any) -> Span:
        """Open a span; nesting follows ``with`` nesting."""
        if not name:
            raise ValueError("span name must be non-empty")
        return Span(self, name, attributes)

    def roots(self) -> list[SpanRecord]:
        """Finished spans with no parent (top-level stages)."""
        return [s for s in self.spans if s.parent_id is None]

    def by_name(self, name: str) -> list[SpanRecord]:
        """Finished spans with the given name."""
        return [s for s in self.spans if s.name == name]

    def clear(self) -> None:
        """Drop all finished spans (active spans are unaffected)."""
        self.spans.clear()


@dataclass
class SpanStats:
    """Aggregate statistics of all spans sharing one name."""

    name: str
    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = float("inf")
    max_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


def aggregate_spans(spans: Iterable[SpanRecord]) -> dict[str, SpanStats]:
    """Group spans by name into :class:`SpanStats`, insertion-ordered."""
    stats: dict[str, SpanStats] = {}
    for span in spans:
        entry = stats.setdefault(span.name, SpanStats(span.name))
        entry.count += 1
        entry.total_seconds += span.duration
        entry.min_seconds = min(entry.min_seconds, span.duration)
        entry.max_seconds = max(entry.max_seconds, span.duration)
    return stats
