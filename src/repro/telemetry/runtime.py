"""The telemetry facade: tracer + metrics + events behind one handle.

Instrumented code takes a :class:`Telemetry` (or resolves the process
default via :func:`get_telemetry`) and calls ``span`` / ``counter`` /
``gauge`` / ``histogram`` / ``event`` on it.  The default is
:data:`NULL_TELEMETRY`, a no-op singleton whose operations allocate nothing
and record nothing, so the uninstrumented path stays byte-identical and
essentially free; :func:`use_telemetry` swaps a live pipeline in for a
scoped block (e.g. the ``repro trace`` CLI).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator

from repro.telemetry.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.tracing import (
    Clock,
    Span,
    SpanRecord,
    Tracer,
    aggregate_spans,
)

__all__ = ["Telemetry", "NullTelemetry", "NULL_TELEMETRY",
           "get_telemetry", "set_telemetry", "use_telemetry"]

#: Histogram fed by every finished span, labelled by span name.
SPAN_SECONDS = "span_seconds"


class Telemetry:
    """One run's telemetry pipeline: spans, metrics and structured events.

    Every finished span is additionally observed into the
    ``span_seconds{stage=<name>}`` histogram so per-stage wall time is
    queryable without walking the raw trace.

    Parameters
    ----------
    clock:
        Monotonic seconds source for spans and event timestamps.
        Injectable (e.g. :class:`~repro.telemetry.tracing.ManualClock`)
        so traces are deterministic in tests.
    base_labels:
        Labels stamped on *every* instrument, span and event this handle
        records (explicit labels win on collision).  The serving layer
        uses ``{"event": <event id>}`` so N interleaved deployments stay
        distinguishable in one registry.
    """

    enabled: bool = True

    def __init__(
        self,
        clock: Clock = time.perf_counter,
        base_labels: dict[str, Any] | None = None,
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(clock=clock, on_finish=self._on_span_finish)
        self.events: list[dict[str, Any]] = []
        self.base_labels: dict[str, Any] = dict(base_labels or {})

    def _labels(self, labels: dict[str, Any]) -> dict[str, Any]:
        base = getattr(self, "base_labels", None)
        if not base:
            return labels
        return {**base, **labels}

    def _on_span_finish(self, record: SpanRecord) -> None:
        self.registry.histogram(
            SPAN_SECONDS,
            help="wall seconds per traced stage",
            buckets=DEFAULT_TIME_BUCKETS,
            **self._labels({"stage": record.name}),
        ).observe(record.duration)

    # -- tracing ---------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> Span:
        """Open a span context manager around a pipeline stage."""
        return self.tracer.span(name, **self._labels(attributes))

    # -- metrics ---------------------------------------------------------
    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self.registry.counter(name, help=help, **self._labels(labels))

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self.registry.gauge(name, help=help, **self._labels(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self.registry.histogram(
            name, help=help, buckets=buckets, **self._labels(labels)
        )

    # -- structured events -----------------------------------------------
    def event(self, name: str, **fields: Any) -> dict[str, Any]:
        """Append a timestamped structured record and return it."""
        entry = {
            "event": name,
            "time": self.tracer.clock(),
            **self._labels(fields),
        }
        self.events.append(entry)
        return entry

    # -- snapshots --------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-safe summary: metric state + per-stage span aggregates.

        Carried inside deployment checkpoints (see
        :func:`repro.eval.persistence.save_checkpoint`) so a resumed run's
        history is inspectable without unpickling the system.
        """
        stages = {
            name: {
                "count": stats.count,
                "total_seconds": stats.total_seconds,
            }
            for name, stats in aggregate_spans(self.tracer.spans).items()
        }
        return {
            "metrics": self.registry.as_dict(),
            "stages": stages,
            "n_spans": len(self.tracer.spans),
            "n_events": len(self.events),
        }

    def merge_counters(self, counters: dict[str, float], prefix: str = "",
                       help: str = "") -> None:
        """Bulk-add a name → value mapping into prefixed counters.

        Bridges ad-hoc counter structs (e.g.
        :class:`~repro.core.resilience.ResilienceCounters`) into the
        registry; zero values still register the instrument so exports show
        the full catalog.
        """
        for name, value in counters.items():
            self.counter(f"{prefix}{name}", help=help).inc(float(value))


class _NullSpan:
    """Shared do-nothing span; supports ``with`` and ``set``."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    value = 0.0
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_SPAN = _NullSpan()
_NULL_INSTRUMENT = _NullInstrument()


class NullTelemetry(Telemetry):
    """The no-op telemetry singleton (:data:`NULL_TELEMETRY`).

    Every operation returns a shared, state-free object: no spans, metric
    samples or events are ever recorded, and pickling round-trips to the
    same singleton so checkpoints of uninstrumented systems stay no-op.
    """

    enabled = False

    def span(self, name: str, **attributes: Any):  # type: ignore[override]
        return _NULL_SPAN

    def counter(self, name: str, help: str = "", **labels: Any):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", **labels: Any):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
                  **labels: Any):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def event(self, name: str, **fields: Any) -> dict[str, Any]:
        return {}

    def merge_counters(self, counters: dict[str, float], prefix: str = "",
                       help: str = "") -> None:
        return None

    def __reduce__(self):
        return (_null_telemetry, ())


def _null_telemetry() -> "NullTelemetry":
    return NULL_TELEMETRY


#: Process-wide no-op instance; identity-comparable (`tel is NULL_TELEMETRY`).
NULL_TELEMETRY = NullTelemetry()

#: Context-local default handle.  A :class:`~contextvars.ContextVar`
#: rather than a module global so concurrent deployments (asyncio tasks,
#: ``contextvars.copy_context`` runs) each see their own default instead
#: of racing on one process-wide slot.
_default: ContextVar[Telemetry] = ContextVar(
    "repro_telemetry_default", default=NULL_TELEMETRY
)


def get_telemetry() -> Telemetry:
    """The current context-default telemetry (no-op unless swapped in)."""
    return _default.get()


def set_telemetry(telemetry: Telemetry | None) -> Telemetry:
    """Install ``telemetry`` as the context default; returns the previous one.

    ``None`` restores the no-op singleton.
    """
    previous = _default.get()
    _default.set(telemetry if telemetry is not None else NULL_TELEMETRY)
    return previous


@contextmanager
def use_telemetry(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Scoped :func:`set_telemetry`: restores the previous default on exit."""
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)
