"""Tracing, metrics and profiling for the crowd–AI closed loop.

The measurement substrate every perf/scaling change reports against:

- :mod:`repro.telemetry.tracing` — :class:`Span` tracer with an injectable
  monotonic clock (deterministic traces under the seeded simulation);
- :mod:`repro.telemetry.metrics` — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments (fixed log-scale buckets) behind a
  deduplicating :class:`MetricsRegistry`;
- :mod:`repro.telemetry.exporters` — JSONL event log, Prometheus text
  format, and the human-readable summary ``repro trace`` prints;
- :mod:`repro.telemetry.runtime` — the :class:`Telemetry` facade and the
  no-op :data:`NULL_TELEMETRY` default that keeps the uninstrumented path
  byte-identical.

See ``docs/OBSERVABILITY.md`` for the instrument catalog and span naming
convention.
"""

from repro.telemetry.exporters import (
    export_jsonl,
    read_jsonl,
    summary_report,
    to_prometheus,
)
from repro.telemetry.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)
from repro.telemetry.runtime import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    get_telemetry,
    set_telemetry,
    use_telemetry,
)
from repro.telemetry.tracing import (
    ManualClock,
    Span,
    SpanRecord,
    SpanStats,
    Tracer,
    aggregate_spans,
)

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "Tracer",
    "Span",
    "SpanRecord",
    "SpanStats",
    "ManualClock",
    "aggregate_spans",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "log_buckets",
    "DEFAULT_TIME_BUCKETS",
    "export_jsonl",
    "read_jsonl",
    "to_prometheus",
    "summary_report",
]
