"""VGG16-style CNN expert.

The paper's strongest-known single-CNN baseline is Nguyen et al.'s
fine-tuned VGG16 [6].  At 32x32 synthetic scale a faithful 16-layer VGG is
pointless; what matters for the reproduction is the *role*: a deep
convolutional pixel classifier with stacked 3x3 convolutions and max-pooling
(the VGG signature), trained end-to-end on damage labels.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import DisasterDataset
from repro.models.base import DDAModel
from repro.nn.layers import Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Sequential
from repro.nn.optim import Adam
from repro.nn.trainer import Trainer

__all__ = ["VGGModel"]


class VGGModel(DDAModel):
    """A compact VGG-style CNN: 3x3 conv blocks + max-pool + dense head.

    Parameters
    ----------
    epochs:
        Full-training epochs over the training set.
    retrain_epochs:
        Epochs per incremental MIC retraining call.
    width:
        Channel width of the first conv block (doubles in the second).
    image_size:
        Input spatial size (must be divisible by 4).
    fused:
        Run the conv stack through fused ``conv+relu(+pool)`` kernels
        (bit-identical, faster; see :func:`repro.nn.layers.fuse_layers`).
    """

    name = "VGG16"

    def __init__(
        self,
        epochs: int = 8,
        retrain_epochs: int = 2,
        width: int = 8,
        lr: float = 1e-3,
        batch_size: int = 32,
        image_size: int = 32,
        dropout: float = 0.2,
        fused: bool = False,
    ) -> None:
        if image_size % 4:
            raise ValueError(f"image_size must be divisible by 4, got {image_size}")
        self.epochs = epochs
        self.retrain_epochs = retrain_epochs
        self.width = width
        self.lr = lr
        self.batch_size = batch_size
        self.image_size = image_size
        self.dropout = dropout
        self.fused = fused
        self.model: Sequential | None = None
        self._trainer: Trainer | None = None

    def _build(self, rng: np.random.Generator) -> None:
        w = self.width
        final_spatial = self.image_size // 4
        self.model = Sequential(
            [
                Conv2D(3, w, kernel=3, rng=rng, pad=1),
                ReLU(),
                Conv2D(w, w, kernel=3, rng=rng, pad=1),
                ReLU(),
                MaxPool2D(2),
                Conv2D(w, 2 * w, kernel=3, rng=rng, pad=1),
                ReLU(),
                MaxPool2D(2),
                Flatten(),
                Dense(2 * w * final_spatial * final_spatial, 64, rng=rng),
                ReLU(),
                Dropout(self.dropout, rng=rng),
                Dense(64, self.n_classes, rng=rng),
            ]
        )
        optimizer = Adam(self.model.params(), self.model.grads(), lr=self.lr)
        self._trainer = Trainer(
            self.model,
            SoftmaxCrossEntropy(),
            optimizer,
            rng=rng,
            batch_size=self.batch_size,
        )
        if self.fused:
            self.model.fuse()

    def set_fused(self, fused: bool) -> "VGGModel":
        self.fused = bool(fused)
        if self.model is not None:
            self.model.fuse() if self.fused else self.model.unfuse()
        return self

    def fit(self, dataset: DisasterDataset, rng: np.random.Generator) -> "VGGModel":
        self._build(rng)
        assert self._trainer is not None
        x = dataset.pixels_nchw()
        y = dataset.labels()
        self._trainer.fit(x, y, epochs=self.epochs)
        # Later retraining is fine-tuning: drop the step size so small crowd
        # batches adjust the decision boundary without destabilizing it.
        self._trainer.optimizer.lr = self.lr * 0.25
        self.bump_version()
        return self

    def predict_proba(self, dataset: DisasterDataset) -> np.ndarray:
        self._check_fitted(self.model is not None)
        assert self.model is not None
        return self.model.predict_proba(dataset.pixels_nchw())

    def retrain(
        self,
        dataset: DisasterDataset,
        labels: np.ndarray,
        rng: np.random.Generator,
        *,
        epochs: int | None = None,
    ) -> "VGGModel":
        """Fine-tune on crowd-labeled images for a few epochs.

        Minibatch shuffling (and dropout) draw from the *passed* per-stage
        generator, so retraining is deterministic given ``rng`` regardless
        of how much the trainer's original stream was consumed before.
        ``epochs`` overrides ``retrain_epochs`` (warm-start fine-tuning).
        """
        self._check_fitted(self._trainer is not None)
        assert self._trainer is not None
        labels = self._check_labels(dataset, labels)
        self._trainer.rng = rng
        self._trainer.model.reseed(rng)
        x = dataset.pixels_nchw()
        self._trainer.fit(
            x, labels, epochs=self.retrain_epochs if epochs is None else epochs
        )
        self.bump_version()
        return self
