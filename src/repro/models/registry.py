"""Model registry: name -> factory for the DDA experts.

The paper's committee is {VGG16, BoVW, DDM}; the registry lets experiments
and examples construct committees by name and lets users register custom
experts without touching library code.
"""

from __future__ import annotations

from typing import Callable

from repro.models.base import DDAModel
from repro.models.bovw_model import BoVWModel
from repro.models.ddm import DDMModel
from repro.models.vgg import VGGModel

__all__ = [
    "register_model",
    "create_model",
    "available_models",
    "default_committee_names",
]

_REGISTRY: dict[str, Callable[..., DDAModel]] = {}


def register_model(name: str, factory: Callable[..., DDAModel]) -> None:
    """Register (or replace) a model factory under ``name``."""
    if not name:
        raise ValueError("model name must be non-empty")
    _REGISTRY[name] = factory


def create_model(name: str, **kwargs) -> DDAModel:
    """Instantiate a registered model, forwarding ``kwargs`` to its factory."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def available_models() -> list[str]:
    """Names of all registered models."""
    return sorted(_REGISTRY)


def default_committee_names() -> tuple[str, str, str]:
    """The paper's QSS committee: VGG16, BoVW, DDM."""
    return ("VGG16", "BoVW", "DDM")


register_model("VGG16", VGGModel)
register_model("BoVW", BoVWModel)
register_model("DDM", DDMModel)
