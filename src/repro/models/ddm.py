"""DDM expert: CNN + Grad-CAM damage heatmap (Li et al. [5]).

DDM extends the plain CNN by *localizing* damage: Grad-CAM heatmaps for the
damage classes measure how much of the image the damage evidence covers, and
a small calibration head refines the CNN's class distribution with that
spatial evidence.  This gives DDM the edge over plain VGG that Table II
reports, at the cost of a higher inference delay (Table III).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import DisasterDataset
from repro.data.metadata import DamageLabel
from repro.models.base import DDAModel
from repro.nn.layers import Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU
from repro.nn.losses import SoftmaxCrossEntropy, softmax
from repro.nn.model import Sequential
from repro.nn.optim import Adam
from repro.nn.trainer import Trainer
from repro.vision.gradcam import GradCAM

__all__ = ["DDMModel"]


class DDMModel(DDAModel):
    """CNN backbone + Grad-CAM severity calibration.

    The backbone classifies pixels; Grad-CAM heatmap mass for the moderate
    and severe classes quantifies the damaged *area*; a logistic calibration
    head (one dense layer) maps ``[cnn probs, heatmap masses]`` to the final
    severity distribution.  Both stages train on the same labeled data.
    """

    name = "DDM"

    def __init__(
        self,
        epochs: int = 16,
        retrain_epochs: int = 2,
        width: int = 12,
        lr: float = 1e-3,
        batch_size: int = 32,
        image_size: int = 32,
        head_epochs: int = 40,
        head_retrain_epochs: int | None = None,
        fused: bool = False,
    ) -> None:
        if image_size % 4:
            raise ValueError(f"image_size must be divisible by 4, got {image_size}")
        if head_retrain_epochs is not None and head_retrain_epochs <= 0:
            raise ValueError(
                f"head_retrain_epochs must be positive, got {head_retrain_epochs}"
            )
        self.epochs = epochs
        self.retrain_epochs = retrain_epochs
        self.width = width
        self.lr = lr
        self.batch_size = batch_size
        self.image_size = image_size
        self.head_epochs = head_epochs
        #: Calibration-head epochs per retrain; ``None`` scales with the
        #: backbone schedule as ``max(2 * backbone_epochs, 2)`` (the
        #: historical behavior).
        self.head_retrain_epochs = head_retrain_epochs
        self.fused = fused
        self.backbone: Sequential | None = None
        self.head: Sequential | None = None
        self._backbone_trainer: Trainer | None = None
        self._head_trainer: Trainer | None = None
        self._gradcam: GradCAM | None = None

    def _build(self, rng: np.random.Generator) -> None:
        w = self.width
        final_spatial = self.image_size // 4
        self.backbone = Sequential(
            [
                Conv2D(3, w, kernel=3, rng=rng, pad=1),
                ReLU(),
                MaxPool2D(2),
                Conv2D(w, 2 * w, kernel=3, rng=rng, pad=1),
                ReLU(),
                MaxPool2D(2),
                Flatten(),
                Dense(2 * w * final_spatial * final_spatial, 64, rng=rng),
                ReLU(),
                Dropout(0.15, rng=rng),
                Dense(64, self.n_classes, rng=rng),
            ]
        )
        optimizer = Adam(self.backbone.params(), self.backbone.grads(), lr=self.lr)
        self._backbone_trainer = Trainer(
            self.backbone,
            SoftmaxCrossEntropy(),
            optimizer,
            rng=rng,
            batch_size=self.batch_size,
        )
        self._gradcam = GradCAM(self.backbone)
        # Calibration head: [3 cnn probs + 2 heatmap masses] -> 3 classes.
        self.head = Sequential([Dense(self.n_classes + 2, self.n_classes, rng=rng)])
        head_optimizer = Adam(self.head.params(), self.head.grads(), lr=0.05)
        self._head_trainer = Trainer(
            self.head,
            SoftmaxCrossEntropy(),
            head_optimizer,
            rng=rng,
            batch_size=self.batch_size,
        )
        if self.fused:
            self.set_fused(True)

    def set_fused(self, fused: bool) -> "DDMModel":
        """Toggle fused conv kernels on the backbone.

        The last conv block stays unfused (``keep_last_conv``): Grad-CAM
        needs that layer's pre-activation feature maps addressable by
        index, so only the earlier blocks fuse.  Grad-CAM is rebuilt
        because fusing shifts layer indices.
        """
        self.fused = bool(fused)
        if self.backbone is not None:
            if self.fused:
                self.backbone.fuse(keep_last_conv=True)
            else:
                self.backbone.unfuse()
            self._gradcam = GradCAM(self.backbone)
        return self

    def _head_features(self, x: np.ndarray) -> np.ndarray:
        """[cnn probs, moderate-heatmap mass, severe-heatmap mass] per image.

        One shared forward pass feeds the probabilities and both heatmaps
        (Dropout is inference-mode throughout, so the logits match a plain
        ``predict_proba`` bit for bit; see ``GradCAM.heatmap_masses``).
        """
        assert self.backbone is not None and self._gradcam is not None
        n = x.shape[0]
        moderate = np.full(n, int(DamageLabel.MODERATE))
        severe = np.full(n, int(DamageLabel.SEVERE))
        (mass_moderate, mass_severe), logits = self._gradcam.heatmap_masses(
            x, [moderate, severe]
        )
        probs = softmax(logits)
        return np.concatenate(
            [probs, mass_moderate[:, None], mass_severe[:, None]], axis=1
        )

    def fit(self, dataset: DisasterDataset, rng: np.random.Generator) -> "DDMModel":
        self._build(rng)
        assert self._backbone_trainer is not None and self._head_trainer is not None
        x = dataset.pixels_nchw()
        y = dataset.labels()
        self._backbone_trainer.fit(x, y, epochs=self.epochs)
        self._head_trainer.fit(self._head_features(x), y, epochs=self.head_epochs)
        # Later retraining is fine-tuning: use reduced step sizes.
        self._backbone_trainer.optimizer.lr = self.lr * 0.25
        self._head_trainer.optimizer.lr = 0.05 * 0.25
        self.bump_version()
        return self

    def predict_proba(self, dataset: DisasterDataset) -> np.ndarray:
        self._check_fitted(self.head is not None)
        assert self.head is not None
        features = self._head_features(dataset.pixels_nchw())
        return self.head.predict_proba(features)

    def heatmaps(self, dataset: DisasterDataset) -> np.ndarray:
        """Grad-CAM heatmaps for each image's predicted class (for display)."""
        self._check_fitted(self.backbone is not None)
        assert self.backbone is not None and self._gradcam is not None
        x = dataset.pixels_nchw()
        predicted = self.backbone.predict(x)
        return self._gradcam.heatmaps(x, predicted)

    def retrain(
        self,
        dataset: DisasterDataset,
        labels: np.ndarray,
        rng: np.random.Generator,
        *,
        epochs: int | None = None,
    ) -> "DDMModel":
        """Fine-tune backbone and calibration head on crowd labels.

        Both trainers (and the backbone's dropout) share the *passed*
        per-stage generator, mirroring the single shared stream ``_build``
        sets up.  ``epochs`` overrides the backbone schedule; the head
        follows ``head_retrain_epochs`` when set, else scales with the
        effective backbone epochs as ``max(2 * epochs, 2)``.
        """
        self._check_fitted(self._backbone_trainer is not None)
        assert self._backbone_trainer is not None and self._head_trainer is not None
        labels = self._check_labels(dataset, labels)
        self._backbone_trainer.rng = rng
        self._backbone_trainer.model.reseed(rng)
        self._head_trainer.rng = rng
        backbone_epochs = self.retrain_epochs if epochs is None else epochs
        head_epochs = (
            self.head_retrain_epochs
            if self.head_retrain_epochs is not None
            else max(backbone_epochs * 2, 2)
        )
        x = dataset.pixels_nchw()
        self._backbone_trainer.fit(x, labels, epochs=backbone_epochs)
        self._head_trainer.fit(self._head_features(x), labels, epochs=head_epochs)
        self.bump_version()
        return self
