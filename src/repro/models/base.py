"""Common interface for DDA expert models (the committee members).

Every expert consumes :class:`~repro.data.dataset.DisasterDataset` batches
(pixels only — experts never see metadata) and produces a probability
distribution over the three damage labels: the "expert vote" of
Definition 6.  Experts support both full training and the cheap incremental
*retraining* the MIC module performs each sensing cycle with fresh crowd
labels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from repro.data.dataset import DisasterDataset
from repro.data.metadata import DamageLabel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import PredictionCache

__all__ = ["DDAModel", "next_model_version"]

#: Process-wide monotonic model-version counter (see next_model_version).
_version_counter: int = 0


def next_model_version(minimum: int = 0) -> int:
    """Advance and return the process-wide model-version counter.

    Versions identify *parameter states* for the prediction cache: every
    ``fit``/``retrain`` assigns a fresh one.  The counter is global (not
    per expert) and never goes below ``minimum + 1``, so a version number
    is never reused within a process — in particular, an expert rolled
    back to a snapshot (which carries the snapshot's older version) can
    never later re-assign the number its discarded candidate used, which
    would otherwise let the cache serve the candidate's stale votes.
    """
    global _version_counter
    _version_counter = max(_version_counter + 1, int(minimum) + 1)
    return _version_counter


class DDAModel(ABC):
    """Abstract base class for damage-assessment experts."""

    #: Human-readable model name (matches the paper's baseline names).
    name: str = "dda-model"

    #: Backing field of :attr:`model_version`; 0 means "not yet assigned"
    #: (a class-level default so unpickled legacy instances behave).
    _model_version: int = 0

    @property
    def model_version(self) -> int:
        """This parameter state's process-unique version (lazily assigned)."""
        if self._model_version == 0:
            self._model_version = next_model_version()
        return self._model_version

    def bump_version(self) -> int:
        """Mark the parameters as changed; returns the new version.

        Concrete experts call this at the end of ``fit`` and ``retrain``
        (and :class:`~repro.core.committee.Committee` enforces it for
        third-party experts that forget), so cached predictions keyed on
        the old version become unreachable.
        """
        self._model_version = next_model_version(self._model_version)
        return self._model_version

    def attach_cache(self, cache: "PredictionCache | None") -> None:
        """Adopt a shared cache for derived per-image state (hook).

        The base implementation does nothing: most experts keep no state
        the shared cache could host.  Experts with per-image derived
        features (BoVW) redirect their feature store here.  ``None``
        detaches, restoring a private store.
        """
        return None

    def set_fused(self, fused: bool) -> "DDAModel":
        """Select fused conv kernels for this expert (hook).

        The base implementation does nothing: experts without a conv
        stack (BoVW) have nothing to fuse.  CNN experts toggle
        :meth:`repro.nn.model.Sequential.fuse` / ``unfuse`` — a pure
        execution-strategy switch that is bit-identical either way.
        """
        return self

    @property
    def n_classes(self) -> int:
        """Number of output damage classes."""
        return DamageLabel.count()

    @abstractmethod
    def fit(self, dataset: DisasterDataset, rng: np.random.Generator) -> "DDAModel":
        """Train the expert from scratch on a labeled dataset."""

    @abstractmethod
    def predict_proba(self, dataset: DisasterDataset) -> np.ndarray:
        """Expert votes: class probabilities of shape ``(n, n_classes)``."""

    def predict(self, dataset: DisasterDataset) -> np.ndarray:
        """Hard labels (argmax of the expert vote)."""
        return np.argmax(self.predict_proba(dataset), axis=1)

    @abstractmethod
    def retrain(
        self,
        dataset: DisasterDataset,
        labels: np.ndarray,
        rng: np.random.Generator,
    ) -> "DDAModel":
        """Incrementally update the expert with crowd-provided labels.

        ``labels`` overrides the dataset's own ground truth (the crowd's
        truthful labels may be soft/incorrect; the expert must not peek at
        golden labels here).

        Built-in experts additionally accept a keyword-only ``epochs``
        override (used by warm-start retraining to shorten fine-tuning);
        :class:`~repro.core.committee.Committee` only forwards it when
        set, so third-party experts with the plain signature keep working.
        """

    def _check_fitted(self, fitted: bool) -> None:
        if not fitted:
            raise RuntimeError(f"{self.name} used before fit()")

    def _check_labels(self, dataset: DisasterDataset, labels: np.ndarray) -> np.ndarray:
        labels = np.asarray(labels)
        if labels.shape[0] != len(dataset):
            raise ValueError(
                f"labels ({labels.shape[0]}) must align with dataset "
                f"({len(dataset)})"
            )
        return labels
