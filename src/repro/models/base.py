"""Common interface for DDA expert models (the committee members).

Every expert consumes :class:`~repro.data.dataset.DisasterDataset` batches
(pixels only — experts never see metadata) and produces a probability
distribution over the three damage labels: the "expert vote" of
Definition 6.  Experts support both full training and the cheap incremental
*retraining* the MIC module performs each sensing cycle with fresh crowd
labels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.data.dataset import DisasterDataset
from repro.data.metadata import DamageLabel

__all__ = ["DDAModel"]


class DDAModel(ABC):
    """Abstract base class for damage-assessment experts."""

    #: Human-readable model name (matches the paper's baseline names).
    name: str = "dda-model"

    @property
    def n_classes(self) -> int:
        """Number of output damage classes."""
        return DamageLabel.count()

    @abstractmethod
    def fit(self, dataset: DisasterDataset, rng: np.random.Generator) -> "DDAModel":
        """Train the expert from scratch on a labeled dataset."""

    @abstractmethod
    def predict_proba(self, dataset: DisasterDataset) -> np.ndarray:
        """Expert votes: class probabilities of shape ``(n, n_classes)``."""

    def predict(self, dataset: DisasterDataset) -> np.ndarray:
        """Hard labels (argmax of the expert vote)."""
        return np.argmax(self.predict_proba(dataset), axis=1)

    @abstractmethod
    def retrain(
        self,
        dataset: DisasterDataset,
        labels: np.ndarray,
        rng: np.random.Generator,
    ) -> "DDAModel":
        """Incrementally update the expert with crowd-provided labels.

        ``labels`` overrides the dataset's own ground truth (the crowd's
        truthful labels may be soft/incorrect; the expert must not peek at
        golden labels here).
        """

    def _check_fitted(self, fitted: bool) -> None:
        if not fitted:
            raise RuntimeError(f"{self.name} used before fit()")

    def _check_labels(self, dataset: DisasterDataset, labels: np.ndarray) -> np.ndarray:
        labels = np.asarray(labels)
        if labels.shape[0] != len(dataset):
            raise ValueError(
                f"labels ({labels.shape[0]}) must align with dataset "
                f"({len(dataset)})"
            )
        return labels
