"""Bag-of-visual-words expert (the handcrafted-feature baseline).

Reproduces the role of Bosch et al.'s BoVW classifier [51] in the paper's
committee: handcrafted features (dense patch words + HOG + color histograms)
feeding a shallow neural-network classifier.  Deliberately the weakest
expert, as in Table II.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.cache import BoundedCache
from repro.data.dataset import DisasterDataset
from repro.models.base import DDAModel, next_model_version

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import PredictionCache
from repro.nn.layers import Dense, ReLU
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Sequential
from repro.nn.optim import Adam
from repro.nn.trainer import Trainer
from repro.vision.bovw import BoVWEncoder
from repro.vision.histograms import grayscale_histogram

__all__ = ["BoVWModel"]


class BoVWModel(DDAModel):
    """BoVW features + a shallow MLP head.

    Parameters
    ----------
    vocabulary_size:
        Number of visual words in the codebook.
    hidden:
        Width of the single hidden layer.
    """

    name = "BoVW"

    def __init__(
        self,
        vocabulary_size: int = 40,
        hidden: int = 24,
        epochs: int = 40,
        retrain_epochs: int = 2,
        lr: float = 1e-3,
        batch_size: int = 32,
        include_global: bool = False,
        include_intensity: bool = True,
        feature_cache_size: int = 4096,
    ) -> None:
        # Pure visual-word histograms by default: global HOG/color features
        # make the handcrafted baseline uncharacteristically strong on
        # synthetic scenes, whereas the paper's BoVW is the weakest expert.
        self.encoder = BoVWEncoder(
            vocabulary_size=vocabulary_size, include_global=include_global
        )
        self.include_intensity = include_intensity
        self.hidden = hidden
        self.epochs = epochs
        self.retrain_epochs = retrain_epochs
        self.lr = lr
        self.batch_size = batch_size
        self.model: Sequential | None = None
        self._trainer: Trainer | None = None
        if feature_cache_size <= 0:
            raise ValueError(
                f"feature_cache_size must be positive, got {feature_cache_size}"
            )
        self.feature_cache_size = feature_cache_size
        # Bounded LRU store keyed (feature_version, image_id); replaced by
        # the shared PredictionCache store via attach_cache when a system
        # routes experts through one.
        self._feature_cache: BoundedCache = BoundedCache(feature_cache_size)
        #: Backing field of :attr:`feature_version` (0 = not yet assigned).
        self._feature_version: int = 0

    @property
    def feature_version(self) -> int:
        """Version of the encoder codebook the cached features came from.

        Bumped on :meth:`fit` only: :meth:`retrain` fine-tunes the MLP
        head with the codebook frozen, so per-image features stay valid
        across retrains (that is the whole point of caching them).
        """
        if self._feature_version == 0:
            self._feature_version = next_model_version()
        return self._feature_version

    def attach_cache(self, cache: "PredictionCache | None") -> None:
        """Host per-image features in the shared cache's bounded store."""
        if cache is None:
            self._feature_cache = BoundedCache(self.feature_cache_size)
        else:
            self._feature_cache = cache.features

    def _features(self, dataset: DisasterDataset) -> np.ndarray:
        """Encode (and memoize by image id) the dataset's BoVW features.

        Besides the visual-word histogram, a coarse 8-bin intensity
        histogram is appended when ``include_intensity`` is set — a weak
        global cue in the spirit of classical BoVW pipelines' color
        channels.
        """
        store = self._feature_cache
        version = self.feature_version
        rows: list[np.ndarray | None] = []
        misses: list[tuple[int, "object"]] = []
        for image in dataset:
            key = (version, image.image_id)
            cached = store.get(key)
            rows.append(cached)
            if cached is None:
                misses.append((len(rows) - 1, image))
        if misses:
            # All misses are encoded in one vectorized pass (bit-identical
            # to per-image encoding; see BoVWEncoder.encode_batch).
            encoded = self.encoder.encode_batch(
                np.stack([image.pixels for _, image in misses])
            )
            for (position, image), features in zip(misses, encoded):
                features = np.ascontiguousarray(features)
                if self.include_intensity:
                    intensity = grayscale_histogram(image.pixels, n_bins=8)
                    features = np.concatenate([features, intensity])
                store.put((version, image.image_id), features)
                rows[position] = features
        return np.stack(rows)

    def fit(self, dataset: DisasterDataset, rng: np.random.Generator) -> "BoVWModel":
        self.encoder.fit(dataset.pixels_hwc(), rng)
        # A new codebook obsoletes every cached feature: bumping the
        # version (instead of clearing a store other experts may share)
        # makes the old entries unreachable; LRU reclaims them.
        self._feature_version = next_model_version(self._feature_version)
        features = self._features(dataset)
        self.model = Sequential(
            [
                Dense(features.shape[1], self.hidden, rng=rng),
                ReLU(),
                Dense(self.hidden, self.n_classes, rng=rng),
            ]
        )
        optimizer = Adam(self.model.params(), self.model.grads(), lr=self.lr)
        self._trainer = Trainer(
            self.model,
            SoftmaxCrossEntropy(),
            optimizer,
            rng=rng,
            batch_size=self.batch_size,
        )
        self._trainer.fit(features, dataset.labels(), epochs=self.epochs)
        # Later retraining is fine-tuning: use a reduced step size.
        self._trainer.optimizer.lr = self.lr * 0.25
        self.bump_version()
        return self

    def predict_proba(self, dataset: DisasterDataset) -> np.ndarray:
        self._check_fitted(self.model is not None)
        assert self.model is not None
        return self.model.predict_proba(self._features(dataset))

    def retrain(
        self,
        dataset: DisasterDataset,
        labels: np.ndarray,
        rng: np.random.Generator,
        *,
        epochs: int | None = None,
    ) -> "BoVWModel":
        """Fine-tune the MLP head on crowd-labeled images (codebook frozen).

        Minibatch shuffling draws from the *passed* per-stage generator so
        the update is deterministic given ``rng``; ``epochs`` overrides
        ``retrain_epochs`` (warm-start fine-tuning).
        """
        self._check_fitted(self._trainer is not None)
        assert self._trainer is not None
        labels = self._check_labels(dataset, labels)
        self._trainer.rng = rng
        features = self._features(dataset)
        self._trainer.fit(
            features, labels, epochs=self.retrain_epochs if epochs is None else epochs
        )
        self.bump_version()
        return self
