"""DDA expert models: VGG-style CNN, BoVW, DDM (CNN + Grad-CAM)."""

from repro.models.base import DDAModel
from repro.models.bovw_model import BoVWModel
from repro.models.ddm import DDMModel
from repro.models.registry import (
    available_models,
    create_model,
    default_committee_names,
    register_model,
)
from repro.models.vgg import VGGModel

__all__ = [
    "DDAModel",
    "BoVWModel",
    "DDMModel",
    "available_models",
    "create_model",
    "default_committee_names",
    "register_model",
    "VGGModel",
]
