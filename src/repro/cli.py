"""Command-line interface for the CrowdLearn reproduction.

Exposes the library's main entry points without writing any Python:

    python -m repro run        # run the closed loop, print the scores
    python -m repro pilot      # regenerate Figures 5 & 6
    python -m repro table1     # regenerate Table I
    python -m repro table2     # regenerate Table II + Figure 7 + Table III
    python -m repro fig8       # regenerate Figure 8
    python -m repro fig9       # regenerate Figure 9
    python -m repro budget     # regenerate Figures 10 & 11
    python -m repro chaos      # degradation curves under injected faults
    python -m repro supervise  # watchdog: restart crashed/hung runs
    python -m repro diagnose   # per-archetype failure report of each expert
    python -m repro trace      # telemetry: per-stage wall-time/cost breakdown
    python -m repro bench      # time cycle stages, write BENCH_cycle.json

All commands run the miniature (fast) deployment by default; pass ``--full``
for the paper-scale configuration, ``--seed`` for a different world.

Exit codes (shared across the run/serve/loadgen family):

=====  ==================================================================
code   meaning
=====  ==================================================================
0      success
1      a ``--check`` gate failed (books, drain, contention, parity, p99)
2      usage error (bad flag value or combination)
3      integrity failure (corrupt checkpoint or journal)
4      pool conservation violated after a serve drain
5      serve completed, but one or more events ended **quarantined**
       (the bulkhead/breaker parked them; healthy events drained)
75     an injected crash (``--crash-at ...:raise``) escaped the loop
137    the process was SIGKILLed (``--crash-at-tick`` / ``...:kill``
       drills; the supervisor or CI is expected to ``--resume``)
=====  ==================================================================
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

__all__ = ["main", "build_parser"]


def _prepare(args):
    from repro.eval.runner import prepare

    started = time.time()
    print(
        f"preparing {'paper-scale' if args.full else 'fast'} world "
        f"(seed={args.seed})...",
        file=sys.stderr,
    )
    setup = prepare(seed=args.seed, fast=not args.full)
    print(f"ready in {time.time() - started:.1f}s", file=sys.stderr)
    return setup


def _print_run_report(system, outcome) -> None:
    from repro.eval.runner import scheme_result_from_run
    from repro.metrics import classification_report

    result = scheme_result_from_run("CrowdLearn", outcome)
    report = classification_report(result.y_true, result.y_pred)
    print(f"CrowdLearn: {report}")
    delay = result.mean_crowd_delay()
    print(
        f"crowd delay {0.0 if delay is None else delay:.1f}s, "
        f"spend {result.cost_cents / 100:.2f} USD "
        f"(budget {system.ledger.total / 100:.2f} USD)"
    )
    trace = outcome.accuracy_trace()
    print(
        "per-cycle accuracy: first quarter "
        f"{trace[: max(len(trace) // 4, 1)].mean():.3f}, last quarter "
        f"{trace[-max(len(trace) // 4, 1):].mean():.3f}"
    )
    if system.scheduler is not None:
        totals = outcome.resilience_totals()
        print(
            "scheduler: "
            f"{totals.late_queries} all-late queries "
            f"({totals.late_spent_cents / 100:.2f} USD sunk), "
            f"{totals.stragglers_harvested} stragglers harvested, "
            f"{system.scheduler.pending_count} still in flight "
            f"at t={system.scheduler.now:.0f}s"
        )
    if getattr(system.mic, "warm_start", False):
        stats = system.mic.retrain_stats()
        print(
            "warm-start: "
            f"{stats['warm_retrains']} warm retrains / "
            f"{stats['full_refits']} full refits, "
            f"{stats['replay_buffered']} crowd labels buffered"
        )


def _crash_specs(args) -> list[str]:
    """Crash-point specs from ``--crash-at`` or ``REPRO_CRASH_AT``."""
    import os

    specs = list(getattr(args, "crash_at", None) or [])
    if not specs and getattr(args, "journal", None):
        env = os.environ.get("REPRO_CRASH_AT", "").strip()
        if env:
            specs = [s.strip() for s in env.split(",") if s.strip()]
    return specs


def cmd_run(args) -> int:
    import dataclasses

    from repro.eval.runner import build_crowdlearn

    durable = any(
        getattr(args, flag, None)
        for flag in (
            "checkpoint", "journal", "resume", "crash_at",
            "digest_file", "cycles",
        )
    )
    if durable:
        return _cmd_run_durable(args)
    setup = _prepare(args)
    overrides = {}
    if getattr(args, "scheduler", False):
        overrides["scheduler_enabled"] = True
    if getattr(args, "warm_start", False):
        overrides["mic_warm_start"] = True
    if getattr(args, "fused", False):
        overrides["fused_kernels"] = True
    config = dataclasses.replace(setup.config, **overrides) if overrides else None
    system = build_crowdlearn(setup, config=config)
    outcome = system.run(setup.make_stream("cli-run"))
    _print_run_report(system, outcome)
    return 0


def _cmd_run_durable(args) -> int:
    """``repro run`` with a checkpoint, a write-ahead journal, or both."""
    import dataclasses
    import os
    from pathlib import Path

    from repro.crowd.faults import (
        CrashPoint,
        FaultInjector,
        FaultPlan,
        InjectedCrash,
    )
    from repro.eval.journal import CycleJournal, heartbeat_writer, resume_run
    from repro.eval.persistence import (
        CheckpointIntegrityError,
        run_outcome_digest,
    )
    from repro.utils.rng import SeedSequencer

    specs = _crash_specs(args)
    if args.resume and not (args.journal and args.checkpoint):
        print("--resume requires --journal and --checkpoint", file=sys.stderr)
        return 2
    if getattr(args, "crash_at", None) and not args.journal:
        print(
            "--crash-at requires --journal "
            "(crash points fire at journal stage boundaries)",
            file=sys.stderr,
        )
        return 2
    on_record = None
    heartbeat = os.environ.get("REPRO_HEARTBEAT", "").strip()
    if heartbeat:
        on_record = heartbeat_writer(heartbeat)

    def build_fresh():
        from repro.eval.runner import build_crowdlearn

        setup = _prepare(args)
        overrides = {}
        if getattr(args, "scheduler", False):
            overrides["scheduler_enabled"] = True
        if getattr(args, "warm_start", False):
            overrides["mic_warm_start"] = True
        if getattr(args, "fused", False):
            overrides["fused_kernels"] = True
        if getattr(args, "cycles", None):
            overrides["n_cycles"] = args.cycles
        if overrides:
            setup.config = dataclasses.replace(setup.config, **overrides)
        system = build_crowdlearn(setup, config=setup.config)
        if specs:
            plan = FaultPlan(
                crash_points=tuple(CrashPoint.parse(s) for s in specs)
            )
            system.platform.faults = FaultInjector(
                plan, SeedSequencer(args.seed).get("faults")
            )
        return system, setup.make_stream("cli-run")

    audit = {}
    try:
        if args.resume:
            recovery = resume_run(
                args.checkpoint,
                args.journal,
                checkpoint_every=args.checkpoint_every,
                fsync=args.fsync,
                fresh=build_fresh,
                on_record=on_record,
            )
            system, outcome, info = (
                recovery.system, recovery.outcome, recovery.info,
            )
            audit = info.get("audit", {})
            print(
                f"recovery: resumed at cycle {info['resumed_at_cycle']}, "
                f"replayed {info['replayed_records']} journal records, "
                f"served {info['requeries_avoided_cents'] / 100:.2f} USD "
                "of posts from the journal; audit "
                f"{'passed' if audit.get('ok') else 'FAILED'}",
                file=sys.stderr,
            )
        else:
            system, stream = build_fresh()
            journal = None
            if args.journal:
                journal = CycleJournal.create(
                    args.journal,
                    fsync=args.fsync,
                    crash_injector=getattr(system.platform, "faults", None),
                    on_record=on_record,
                )
            try:
                outcome = system.run(
                    stream,
                    checkpoint_path=args.checkpoint,
                    checkpoint_every=args.checkpoint_every,
                    journal=journal,
                )
            finally:
                if journal is not None:
                    journal.close()
    except CheckpointIntegrityError as exc:
        print(
            f"corrupt checkpoint ({exc.check} check failed): {exc}",
            file=sys.stderr,
        )
        return 3
    except InjectedCrash as exc:
        print(f"injected crash: {exc}", file=sys.stderr)
        return 75
    digest = run_outcome_digest(outcome)
    if getattr(args, "digest_file", None):
        Path(args.digest_file).write_text(digest + "\n")
    _print_run_report(system, outcome)
    print(f"run digest {digest}")
    if args.resume and not audit.get("ok", True):
        print("post-recovery invariant audit FAILED", file=sys.stderr)
        return 4
    return 0


def cmd_supervise(args) -> int:
    from repro.eval.supervisor import (
        SupervisorConfig,
        render_recovery_table,
        supervise,
    )

    argv = [
        sys.executable, "-m", "repro", "run",
        "--seed", str(args.seed),
        "--checkpoint", args.checkpoint,
        "--journal", args.journal,
        "--checkpoint-every", str(args.checkpoint_every),
        "--fsync", args.fsync,
    ]
    if args.full:
        argv.append("--full")
    if getattr(args, "scheduler", False):
        argv.append("--scheduler")
    if getattr(args, "cycles", None):
        argv += ["--cycles", str(args.cycles)]
    if getattr(args, "digest_file", None):
        argv += ["--digest-file", args.digest_file]
    heartbeat = args.heartbeat or f"{args.journal}.heartbeat"
    config = SupervisorConfig(
        watchdog_seconds=args.watchdog,
        max_restarts=args.max_restarts,
        backoff_base_seconds=args.backoff,
    )
    first_env = None
    if getattr(args, "crash_at", None):
        first_env = {"REPRO_CRASH_AT": ",".join(args.crash_at)}
    outcome = supervise(
        argv,
        heartbeat,
        config=config,
        journal_path=args.journal,
        first_launch_env=first_env,
    )
    print(render_recovery_table(args.journal, outcome))
    if outcome.gave_up:
        print(
            f"supervisor gave up after {config.max_restarts} restarts",
            file=sys.stderr,
        )
    return outcome.returncode


def cmd_pilot(args) -> int:
    from repro.eval.experiments import run_fig5, run_fig6

    setup = _prepare(args)
    print(run_fig5(setup).render())
    print()
    print(run_fig6(setup).render())
    return 0


def cmd_table1(args) -> int:
    from repro.eval.experiments import run_table1

    setup = _prepare(args)
    print(run_table1(setup).render())
    return 0


def cmd_table2(args) -> int:
    from repro.eval.experiments import run_table2_suite

    setup = _prepare(args)
    suite = run_table2_suite(setup)
    print(suite.table2.render())
    print()
    print(suite.fig7.render())
    print()
    print(suite.table3.render())
    return 0


def cmd_fig8(args) -> int:
    from repro.eval.experiments import run_fig8

    setup = _prepare(args)
    print(run_fig8(setup).render())
    return 0


def cmd_fig9(args) -> int:
    from repro.eval.experiments import run_fig9

    setup = _prepare(args)
    print(run_fig9(setup).render())
    return 0


def cmd_budget(args) -> int:
    from repro.eval.experiments import run_budget_sweep

    setup = _prepare(args)
    sweep = run_budget_sweep(setup)
    print(sweep.render_fig10())
    print()
    print(sweep.render_fig11())
    return 0


def cmd_chaos(args) -> int:
    if getattr(args, "crash", False):
        from repro.eval.supervisor import run_crash_chaos

        kwargs = {}
        if getattr(args, "crash_at", None):
            kwargs["crash_specs"] = tuple(args.crash_at)
        return run_crash_chaos(
            seed=args.seed,
            cycles=getattr(args, "cycles", None) or 3,
            full=args.full,
            **kwargs,
        )
    if getattr(args, "workers", None):
        return _cmd_chaos_parallel(args)
    from repro.eval.experiments import run_chaos, run_guard_chaos

    setup = _prepare(args)
    print(run_chaos(setup, scheduler=getattr(args, "scheduler", False)).render())
    print()
    print(run_guard_chaos(setup).render())
    return 0


def _cmd_chaos_parallel(args) -> int:
    """The chaos sweep with one worker process per intensity arm."""
    from repro.eval.parallel import run_chaos_arms

    if getattr(args, "scheduler", False):
        print(
            "note: --scheduler is ignored with --workers "
            "(the parallel arms run the synchronous loop)",
            file=sys.stderr,
        )
    started = time.time()
    results = run_chaos_arms(
        seed=args.seed, fast=not args.full, max_workers=args.workers
    )
    print(
        f"{len(results)} arms in {time.time() - started:.1f}s "
        f"across {args.workers} worker(s)",
        file=sys.stderr,
    )
    print(f"{'arm':<18}{'macro-F1':>10}{'delay s':>10}{'faults':>8}{'cost $':>8}")
    failed = False
    for res in results:
        if not res.ok:
            failed = True
            print(f"{res.name:<18}  FAILED:\n{res.error}")
            continue
        row = res.result
        print(
            f"{res.name:<18}{row['macro_f1']:>10.3f}"
            f"{row['mean_crowd_delay']:>10.1f}{row['fault_events']:>8}"
            f"{row['cost_cents'] / 100:>8.2f}"
        )
    return 1 if failed else 0


def cmd_bench(args) -> int:
    from repro.eval.bench import (
        DEFAULT_OUTPUT,
        render_bench,
        run_bench,
        write_bench,
    )

    if args.fast and args.full:
        print("cannot pass both --fast and --full", file=sys.stderr)
        return 2
    print(
        f"benchmarking {'paper-scale' if args.full else 'fast'} deployment "
        f"(seed={args.seed}, repeats={args.repeats})...",
        file=sys.stderr,
    )
    report = run_bench(
        seed=args.seed,
        fast=not args.full,
        repeats=args.repeats,
        scheduler=getattr(args, "scheduler", False),
    )
    print(render_bench(report))
    path = write_bench(report, args.output or DEFAULT_OUTPUT)
    print(f"wrote {path}", file=sys.stderr)
    if args.check:
        vote = report["committee_vote"]
        if vote["cached_best_seconds"] > vote["uncached_best_seconds"]:
            print(
                "FAIL: cached committee vote slower than uncached "
                f"({vote['cached_best_seconds']:.6f}s vs "
                f"{vote['uncached_best_seconds']:.6f}s)",
                file=sys.stderr,
            )
            return 1
        loop_cache = report["loop"]["cache"]
        if not loop_cache or loop_cache.get("prediction_hits", 0) <= 0:
            print(
                "FAIL: closed loop recorded no prediction-cache hits",
                file=sys.stderr,
            )
            return 1
        journal = report.get("journal", {})
        if journal and journal.get("overhead_fraction", 0.0) >= 0.05:
            print(
                "FAIL: journal overhead is "
                f"{journal['overhead_fraction'] * 100:.2f}% of cycle "
                "wall time (budget: < 5%)",
                file=sys.stderr,
            )
            return 1
        retrain = report.get("retrain", {})
        if retrain:
            # The >= 5x budget is defined at paper scale, where the expert
            # refit dominates; the fast deployment is too small for the
            # guard-tax-free fit span to amortize its cold refits, so it
            # only gets a sanity floor (warm must still clearly win).
            full_scale = not report.get("meta", {}).get("fast", True)
            budget = 5.0 if full_scale else 1.2
            fit_speedup = retrain.get("fit_speedup", 0.0)
            if fit_speedup < budget:
                print(
                    "FAIL: warm-start + fused expert refit speedup is "
                    f"{fit_speedup:.2f}x "
                    f"(budget: >= {budget:.1f}x at "
                    f"{'paper' if full_scale else 'fast'} scale; the 5x "
                    "budget is gated by `repro bench --full --check`)",
                    file=sys.stderr,
                )
                return 1
        print(
            "bench check passed: cached vote at least as fast as uncached, "
            "the loop served predictions from the cache, journaling cost "
            "under 5% of cycle wall time, and warm-start + fused kernels "
            "beat the expert-refit speedup budget "
            f"({retrain.get('fit_speedup', 0.0):.2f}x)",
            file=sys.stderr,
        )
    return 0


def cmd_trace(args) -> int:
    from repro.eval.runner import build_crowdlearn
    from repro.telemetry import (
        Telemetry,
        export_jsonl,
        summary_report,
        to_prometheus,
        use_telemetry,
    )

    setup = _prepare(args)
    telemetry = Telemetry()
    system = build_crowdlearn(setup, telemetry=telemetry)
    # The process default covers components that build their own helpers
    # (e.g. trainers constructed inside models during MIC retraining).
    with use_telemetry(telemetry):
        outcome = system.run(setup.make_stream("cli-trace"))
    print(summary_report(telemetry, title="CrowdLearn trace"))
    print()
    print(
        f"deployment: {len(outcome.cycles)} cycles, "
        f"spend {outcome.total_cost_cents() / 100:.2f} USD "
        f"(budget {system.ledger.total / 100:.2f} USD), "
        f"mean crowd delay {outcome.mean_crowd_delay():.1f}s"
    )
    if getattr(args, "jsonl", None):
        path = export_jsonl(telemetry, args.jsonl)
        print(f"wrote JSONL event log to {path}", file=sys.stderr)
    if getattr(args, "prometheus", None):
        from pathlib import Path

        Path(args.prometheus).write_text(to_prometheus(telemetry.registry))
        print(f"wrote Prometheus metrics to {args.prometheus}", file=sys.stderr)
    return 0


def cmd_serve(args) -> int:
    """Run (or resume) a multi-event serving fleet to drain."""
    import os
    import signal
    from pathlib import Path

    from repro.eval.persistence import CheckpointIntegrityError
    from repro.serve import (
        CrowdLearnService,
        SharedCrowdPool,
        create_admission_policy,
    )
    from repro.serve.service import ServeJournalError

    if args.resume and not args.serve_dir:
        print("--resume requires --serve-dir", file=sys.stderr)
        return 2
    try:
        policy = create_admission_policy(args.policy)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        if args.resume:
            service = CrowdLearnService.resume(args.serve_dir)
        else:
            setup = _prepare(args)
            pool = SharedCrowdPool(
                capacity_per_cycle=args.capacity,
                policy=policy,
                max_backlog=args.max_backlog,
            )
            service = CrowdLearnService(
                setup,
                pool=pool,
                serve_dir=args.serve_dir,
                fsync=args.fsync,
            )
            for i in range(args.events):
                service.submit_event(f"event-{i + 1:02d}")
        while True:
            if (
                args.crash_at_tick is not None
                and service.ticks >= args.crash_at_tick
            ):
                os.kill(os.getpid(), signal.SIGKILL)
            if service.step() is None:
                break
    except CheckpointIntegrityError as exc:
        print(
            f"corrupt event checkpoint ({exc.check} check failed): {exc}",
            file=sys.stderr,
        )
        return 3
    except ServeJournalError as exc:
        print(f"serve journal integrity failure: {exc}", file=sys.stderr)
        return 3
    quarantined = service.quarantined_events()
    for deployment in service.registry.all():
        status = service.event_status(deployment.event_id)
        books = status.pool
        state = ""
        if status.health is not None and status.event_id in quarantined:
            state = " [QUARANTINED]"
        print(
            f"{status.event_id}: F1 {status.macro_f1:.3f}, "
            f"cycles {status.next_cycle}/{status.n_cycles}, "
            f"admitted {books['admitted']}, deferred {books['deferred']}, "
            f"shed {books['shed']}, "
            f"spent {status.budget['spent_cents'] / 100:.2f} USD{state}"
        )
    for event_id in quarantined:
        reason = service.health[event_id].quarantine_reason or "breaker open"
        print(f"quarantined {event_id}: {reason}", file=sys.stderr)
    digest = service.combined_digest()
    if getattr(args, "digest_file", None):
        Path(args.digest_file).write_text(digest + "\n")
    print(f"serve digest {digest}")
    if not service.pool.conserved():
        print("pool conservation violated", file=sys.stderr)
        service.close()
        return 4
    service.close()
    if quarantined:
        # Completed-with-casualties: the healthy events drained, the
        # parked ones need operator attention (see docs/SERVING.md).
        return 5
    return 0


def cmd_loadgen(args) -> int:
    """Surge bench over the serving layer; writes BENCH_serve.json."""
    from repro.eval.persistence import CheckpointIntegrityError
    from repro.serve.loadgen import (
        DEFAULT_OUTPUT,
        build_report,
        check_report,
        drive,
        reference_digests,
        render_report,
        run_loadgen,
        write_report,
    )
    from repro.serve.service import CrowdLearnService, ServeJournalError

    if args.resume and not args.serve_dir:
        print("--resume requires --serve-dir", file=sys.stderr)
        return 2
    try:
        if args.resume:
            service = CrowdLearnService.resume(args.serve_dir)
            already_burst = any(
                d.bursts for d in service.registry.all()
            )
            started = time.perf_counter()
            drive(
                service,
                burst_images=0 if already_burst else args.burst_images,
                burst_seed=args.burst_seed,
                crash_at_tick=args.crash_at_tick,
            )
            wall = time.perf_counter() - started
            manifest = service._manifest
            # A chaos run announces itself in the manifest: events with
            # fault plans.  Re-derive the clean reference digests (the
            # reference run is deterministic and fault-free) so the
            # resumed report carries the same blast-radius section.
            faulted = [
                entry["event_id"]
                for entry in manifest["events"]
                if entry.get("fault_plan")
            ]
            clean_digests = None
            if faulted:
                clean_digests = reference_digests(
                    service.setup,
                    n_events=len(service.registry),
                    burst_images=args.burst_images,
                    burst_seed=args.burst_seed,
                )
            meta = {
                "bench": "serve-loadgen",
                "seed": manifest["seed"],
                "fast": manifest["fast"],
                "n_events": len(service.registry),
                "capacity_per_cycle": service.pool.capacity_per_cycle,
                "policy": service.pool.policy.name,
                "max_backlog": service.pool.max_backlog,
                "burst": {
                    "images": args.burst_images, "seed": args.burst_seed,
                },
                "durable": True,
                "fsync": manifest["fsync"],
                "resumed": True,
                "chaos": bool(faulted),
                "faulted_event": faulted[0] if faulted else None,
            }
            report = build_report(
                service, wall, meta, clean_digests=clean_digests
            )
            service.close()
        else:
            report = run_loadgen(
                seed=args.seed,
                fast=not args.full,
                n_events=args.events,
                capacity=args.capacity,
                policy=args.policy,
                max_backlog=args.max_backlog,
                burst_images=args.burst_images,
                burst_seed=args.burst_seed,
                serve_dir=args.serve_dir,
                fsync=args.fsync,
                crash_at_tick=args.crash_at_tick,
                chaos=args.chaos,
            )
    except CheckpointIntegrityError as exc:
        print(
            f"corrupt event checkpoint ({exc.check} check failed): {exc}",
            file=sys.stderr,
        )
        return 3
    except ServeJournalError as exc:
        print(f"serve journal integrity failure: {exc}", file=sys.stderr)
        return 3
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(render_report(report))
    path = write_report(report, args.output or DEFAULT_OUTPUT)
    print(f"wrote {path}", file=sys.stderr)
    if args.check:
        failures = check_report(report, p99_gate_seconds=args.p99_gate)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        if report.get("chaos") is not None:
            print(
                "loadgen chaos check passed: faulted event quarantined, "
                "blast radius contained, healthy digests byte-identical, "
                "books conserved",
                file=sys.stderr,
            )
        else:
            print(
                "loadgen check passed: fleet drained, query and money "
                "books conserved, and the shared crowd was genuinely "
                "contended",
                file=sys.stderr,
            )
    return 0


def cmd_diagnose(args) -> int:
    from repro.eval.diagnostics import diagnose

    setup = _prepare(args)
    for expert in setup.base_committee.experts:
        report = diagnose(expert, setup.test_set)
        print(report.render())
        innate = report.innate_failure_archetypes()
        if innate:
            print(
                "innate failures (confidently wrong): "
                + ", ".join(a.value for a in innate)
            )
        print()
    return 0


_COMMANDS: dict[str, tuple[Callable, str]] = {
    "run": (cmd_run, "run the CrowdLearn closed loop and print its scores"),
    "pilot": (cmd_pilot, "regenerate Figures 5 & 6 (the pilot study)"),
    "table1": (cmd_table1, "regenerate Table I (CQC vs aggregators)"),
    "table2": (cmd_table2, "regenerate Table II, Figure 7 and Table III"),
    "fig8": (cmd_fig8, "regenerate Figure 8 (IPD vs fixed vs random)"),
    "fig9": (cmd_fig9, "regenerate Figure 9 (query-set size sweep)"),
    "budget": (cmd_budget, "regenerate Figures 10 & 11 (budget sweep)"),
    "chaos": (cmd_chaos, "degradation curves under injected platform faults"),
    "supervise": (
        cmd_supervise,
        "run the loop in a watched child process; restart from the "
        "journal and checkpoint after crashes or hangs",
    ),
    "diagnose": (cmd_diagnose, "per-archetype failure report of each expert"),
    "trace": (cmd_trace, "run with telemetry: stage wall-time/cost breakdown"),
    "bench": (cmd_bench, "time cycle stages and cache wins; write BENCH_cycle.json"),
    "serve": (
        cmd_serve,
        "run N concurrent disaster deployments over one shared crowd",
    ),
    "loadgen": (
        cmd_loadgen,
        "surge-replay bench for the serving layer; write BENCH_serve.json",
    ),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CrowdLearn (ICDCS 2019) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, (func, help_text) in _COMMANDS.items():
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument(
            "--full",
            action="store_true",
            help="paper-scale deployment (960 images, 40 cycles)",
        )
        sub.add_argument("--seed", type=int, default=0, help="root seed")
        if name == "trace":
            sub.add_argument(
                "--jsonl", metavar="PATH",
                help="also export the telemetry event log as JSONL",
            )
            sub.add_argument(
                "--prometheus", metavar="PATH",
                help="also export metrics in Prometheus text format",
            )
        if name in ("run", "chaos", "bench", "supervise"):
            sub.add_argument(
                "--scheduler", action="store_true",
                help="enable the virtual-time scheduler: each sensing "
                     "cycle becomes a real deadline and late responses "
                     "are harvested into later cycles",
            )
        if name == "run":
            sub.add_argument(
                "--warm-start", action="store_true", dest="warm_start",
                help="warm-start incremental retraining: fine-tune "
                     "incumbent weights on new crowd labels + a crowd "
                     "replay sample, with periodic full refits",
            )
            sub.add_argument(
                "--fused", action="store_true",
                help="run CNN experts through fused conv+relu(+pool) "
                     "kernels (bit-identical, faster)",
            )
        if name in ("run", "supervise"):
            sub.add_argument(
                "--checkpoint", metavar="PATH",
                required=(name == "supervise"),
                help="write a checkpoint after each sensing cycle "
                     "(and resume from it with --resume)",
            )
            sub.add_argument(
                "--journal", metavar="PATH",
                required=(name == "supervise"),
                help="write-ahead journal of intra-cycle stage effects; "
                     "rotated atomically at each checkpoint",
            )
            sub.add_argument(
                "--checkpoint-every", type=int, default=1, metavar="N",
                dest="checkpoint_every",
                help="checkpoint every N cycles (default 1)",
            )
            sub.add_argument(
                "--digest-file", metavar="PATH", dest="digest_file",
                help="write the run-outcome digest here (parity checks)",
            )
            sub.add_argument(
                "--fsync", choices=("always", "rotate", "never"),
                default="always",
                help="journal durability policy (default always: fsync "
                     "every record)",
            )
        if name in ("run", "supervise", "chaos"):
            sub.add_argument(
                "--cycles", type=int, metavar="N",
                help="trim the deployment to N sensing cycles",
            )
            sub.add_argument(
                "--crash-at", action="append", metavar="SPEC",
                dest="crash_at",
                help="inject a crash at stage[:cycle[:occurrence[:action]]] "
                     "(action: raise|kill|hang); repeatable",
            )
        if name == "run":
            sub.add_argument(
                "--resume", action="store_true",
                help="resume from --checkpoint, replaying --journal "
                     "past it (exit 3 on a corrupt checkpoint)",
            )
        if name == "supervise":
            sub.add_argument(
                "--watchdog", type=float, default=300.0, metavar="SECONDS",
                help="restart the child if its heartbeat is silent this "
                     "long (default 300)",
            )
            sub.add_argument(
                "--max-restarts", type=int, default=5, metavar="N",
                dest="max_restarts",
                help="restart budget before giving up (default 5)",
            )
            sub.add_argument(
                "--backoff", type=float, default=1.0, metavar="SECONDS",
                help="first restart backoff; doubles per restart",
            )
            sub.add_argument(
                "--heartbeat", metavar="PATH",
                help="heartbeat file (default <journal>.heartbeat)",
            )
        if name == "chaos":
            sub.add_argument(
                "--workers", type=int, metavar="N",
                help="run the intensity arms across N worker processes",
            )
            sub.add_argument(
                "--crash", action="store_true",
                help="crash-recovery chaos: kill the loop at stage "
                     "boundaries, supervise the restarts, and assert "
                     "digest parity with an uninterrupted run",
            )
        if name in ("serve", "loadgen"):
            sub.add_argument(
                "--events", type=int, default=3, metavar="N",
                help="number of concurrent disaster events (default 3)",
            )
            sub.add_argument(
                "--capacity", type=int, metavar="N",
                help="shared crowd capacity in query slots per sensing "
                     "window across all events (serve default: unmetered; "
                     "loadgen default: half the fleet's demand)",
            )
            sub.add_argument(
                "--policy", default="fair-share",
                choices=("fair-share", "priority", "deadline"),
                help="admission policy splitting window capacity",
            )
            sub.add_argument(
                "--max-backlog", type=int, metavar="N", dest="max_backlog",
                help="per-event deferred-query bound; overflow is shed "
                     "(default: unbounded)",
            )
            sub.add_argument(
                "--serve-dir", metavar="DIR", dest="serve_dir",
                help="durable mode: per-event checkpoints/journals plus "
                     "the service manifest and journal live here",
            )
            sub.add_argument(
                "--resume", action="store_true",
                help="resume a crashed fleet from --serve-dir "
                     "(exit 3 on integrity failures)",
            )
            sub.add_argument(
                "--fsync", choices=("always", "rotate", "never"),
                default="always",
                help="journal durability policy (default always)",
            )
            sub.add_argument(
                "--crash-at-tick", type=int, metavar="K",
                dest="crash_at_tick",
                help="SIGKILL the process once K global sensing cycles "
                     "have run (crash/recovery drills)",
            )
        if name == "serve":
            sub.add_argument(
                "--digest-file", metavar="PATH", dest="digest_file",
                help="write the fleet's combined digest here "
                     "(parity checks)",
            )
        if name == "loadgen":
            sub.add_argument(
                "--burst-images", type=int, default=10, metavar="N",
                dest="burst_images",
                help="imagery-burst size injected into the first event "
                     "mid-run (0 disables; default 10)",
            )
            sub.add_argument(
                "--burst-seed", type=int, default=1234, metavar="SEED",
                dest="burst_seed",
                help="seed regenerating the burst (journaled for resume)",
            )
            sub.add_argument(
                "--output", metavar="PATH",
                help="where to write BENCH_serve.json "
                     "(default benchmarks/results/BENCH_serve.json)",
            )
            sub.add_argument(
                "--check", action="store_true",
                help="exit nonzero unless the fleet drained, the books "
                     "conserve, and contention actually occurred",
            )
            sub.add_argument(
                "--p99-gate", type=float, metavar="SECONDS",
                dest="p99_gate",
                help="also fail --check if p99 cycle latency exceeds this",
            )
            sub.add_argument(
                "--chaos", action="store_true",
                help="blast-radius drill: run the fleet clean, then with "
                     "a permanent platform outage scoped to the last "
                     "event; with --check, fail unless the faulted event "
                     "quarantines and every healthy event's digest is "
                     "byte-identical to the clean run",
            )
        if name == "bench":
            sub.add_argument(
                "--fast", action="store_true",
                help="force the fast deployment (the default; explicit "
                     "spelling for CI invocations)",
            )
            sub.add_argument(
                "--output", metavar="PATH",
                help="where to write BENCH_cycle.json "
                     "(default benchmarks/results/BENCH_cycle.json)",
            )
            sub.add_argument(
                "--repeats", type=int, default=3,
                help="best-of repeats for the committee-vote timing",
            )
            sub.add_argument(
                "--check", action="store_true",
                help="exit nonzero unless the cached vote path is at least "
                     "as fast as uncached and the loop recorded cache hits",
            )
        sub.set_defaults(func=func)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
