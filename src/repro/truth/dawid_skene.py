"""Full Dawid-Skene truth discovery (confusion-matrix worker model).

An upgrade over the one-coin :class:`~repro.truth.tdem.TruthDiscoveryEM`:
each worker gets a full per-class confusion matrix π_w[j, l] = P(worker
answers l | truth is j), so systematic biases — e.g. workers who always
escalate moderate damage to severe — are modeled rather than averaged away.
Kept separate from TD-EM because the paper's Table I baseline is the
simpler reliability-only model; this class is this repo's extension for
users with enough responses per worker to fit 9 parameters each.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crowd.tasks import QueryResult
from repro.data.metadata import DamageLabel

__all__ = ["DawidSkene"]


@dataclass
class DawidSkene:
    """EM over per-worker confusion matrices (Dawid & Skene, 1979).

    Parameters
    ----------
    n_classes:
        Number of label classes.
    max_iter, tol:
        EM stopping criteria.
    smoothing:
        Dirichlet pseudo-count added to confusion-matrix rows, biased
        toward the diagonal so sparsely observed workers default to
        "mostly correct" rather than to noise.
    """

    n_classes: int = DamageLabel.count()
    max_iter: int = 60
    tol: float = 1e-6
    smoothing: float = 1.0

    def fit(
        self, results: list[QueryResult]
    ) -> tuple[np.ndarray, dict[int, np.ndarray]]:
        """Run EM; returns (posteriors, worker confusion matrices).

        ``posteriors`` has shape ``(n_queries, n_classes)``; the confusion
        dict maps worker id → ``(n_classes, n_classes)`` row-stochastic
        matrix.
        """
        if not results:
            raise ValueError("no query results to aggregate")
        worker_ids = sorted(
            {r.worker_id for result in results for r in result.responses}
        )
        index_of = {wid: i for i, wid in enumerate(worker_ids)}
        n_workers = len(worker_ids)
        n_queries = len(results)
        k = self.n_classes

        responses: list[list[tuple[int, int]]] = []
        for result in results:
            if not result.responses:
                raise ValueError("a query has no responses")
            responses.append(
                [(index_of[r.worker_id], int(r.label)) for r in result.responses]
            )

        # Initialize posteriors from vote fractions.
        posteriors = np.zeros((n_queries, k))
        for q, resp in enumerate(responses):
            for _, label in resp:
                posteriors[q, label] += 1.0
        posteriors /= posteriors.sum(axis=1, keepdims=True)

        # Diagonal-biased Dirichlet prior: sparse workers default reliable.
        prior = self.smoothing * (
            np.full((k, k), 0.5 / max(k - 1, 1)) + np.eye(k) * (2.0 - 0.5)
        )

        confusion = np.tile(
            (np.eye(k) * 0.7 + np.full((k, k), 0.3 / k)), (n_workers, 1, 1)
        )
        class_prior = np.full(k, 1.0 / k)

        for _ in range(self.max_iter):
            # M-step: confusion matrices and class prior from posteriors.
            counts = np.tile(prior, (n_workers, 1, 1))
            for q, resp in enumerate(responses):
                for w, label in resp:
                    counts[w, :, label] += posteriors[q]
            confusion = counts / counts.sum(axis=2, keepdims=True)
            class_prior = np.clip(posteriors.mean(axis=0), 1e-9, None)
            class_prior /= class_prior.sum()

            # E-step: posterior over truths from the confusion likelihoods.
            log_confusion = np.log(np.clip(confusion, 1e-12, None))
            new_posteriors = np.tile(np.log(class_prior), (n_queries, 1))
            for q, resp in enumerate(responses):
                for w, label in resp:
                    new_posteriors[q] += log_confusion[w, :, label]
            new_posteriors -= new_posteriors.max(axis=1, keepdims=True)
            new_posteriors = np.exp(new_posteriors)
            new_posteriors /= new_posteriors.sum(axis=1, keepdims=True)

            shift = float(np.abs(new_posteriors - posteriors).max())
            posteriors = new_posteriors
            if shift < self.tol:
                break

        matrices = {wid: confusion[index_of[wid]] for wid in worker_ids}
        return posteriors, matrices

    def aggregate(self, results: list[QueryResult]) -> np.ndarray:
        """MAP labels for each query."""
        posteriors, _ = self.fit(results)
        return np.argmax(posteriors, axis=1).astype(np.int64)
