"""Truth-discovery baselines for crowd label aggregation (Table I)."""

from repro.truth.dawid_skene import DawidSkene
from repro.truth.filtering import QualityFilter, aggregate_by_filtering
from repro.truth.tdem import TruthDiscoveryEM, aggregate_by_tdem
from repro.truth.voting import aggregate_by_voting, majority_vote, vote_distribution

__all__ = [
    "DawidSkene",
    "QualityFilter",
    "aggregate_by_filtering",
    "TruthDiscoveryEM",
    "aggregate_by_tdem",
    "aggregate_by_voting",
    "majority_vote",
    "vote_distribution",
]
