"""Worker-quality filtering — blacklist-then-vote aggregation.

The *Filtering* baseline [13] blacklists workers whose graded history shows
poor accuracy and majority-votes over the rest.  Its known weakness, which
Table I exhibits, is cold start: workers without enough history cannot be
filtered, so early rounds behave like plain voting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crowd.platform import CrowdsourcingPlatform
from repro.crowd.tasks import QueryResult
from repro.data.metadata import DamageLabel

__all__ = ["QualityFilter", "aggregate_by_filtering"]


@dataclass
class QualityFilter:
    """Majority voting over workers that pass a track-record filter.

    Parameters
    ----------
    platform:
        Source of worker track records (graded past responses).
    min_history:
        Minimum graded responses before a worker can be judged at all.
    min_accuracy:
        Historical accuracy below which a judged worker is blacklisted.
    """

    platform: CrowdsourcingPlatform
    min_history: int = 5
    min_accuracy: float = 0.7

    def is_blacklisted(self, worker_id: int) -> bool:
        """Whether the worker's graded history falls below the bar."""
        graded, correct = self.platform.worker_track_record(worker_id)
        if graded < self.min_history:
            return False  # cold start: cannot judge, must keep
        return correct / graded < self.min_accuracy

    def aggregate_one(
        self, result: QueryResult, n_classes: int = DamageLabel.count()
    ) -> int:
        """Filtered plurality label for one query.

        Falls back to unfiltered voting when the filter would discard every
        response (the platform must return *some* answer).
        """
        kept = [
            r for r in result.responses if not self.is_blacklisted(r.worker_id)
        ]
        if not kept:
            kept = list(result.responses)
        if not kept:
            raise ValueError("query has no responses")
        counts = np.bincount(
            [int(r.label) for r in kept], minlength=n_classes
        )
        return int(np.argmax(counts))

    def aggregate(self, results: list[QueryResult]) -> np.ndarray:
        """Filtered plurality labels for a batch of queries."""
        if not results:
            raise ValueError("no query results to aggregate")
        return np.array([self.aggregate_one(r) for r in results], dtype=np.int64)


def aggregate_by_filtering(
    results: list[QueryResult],
    platform: CrowdsourcingPlatform,
    min_history: int = 5,
    min_accuracy: float = 0.7,
) -> np.ndarray:
    """Convenience wrapper around :class:`QualityFilter`."""
    return QualityFilter(
        platform=platform, min_history=min_history, min_accuracy=min_accuracy
    ).aggregate(results)
