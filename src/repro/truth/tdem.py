"""Truth discovery via expectation-maximization (TD-EM).

A Dawid-Skene-style EM in the spirit of the maximum-likelihood truth
discovery of Wang et al. [29]: the E-step infers a posterior over each
query's true label from current worker reliabilities; the M-step re-estimates
each worker's reliability from the posteriors.  Jointly recovers labels and
worker quality, but degrades when each worker answers few queries — the
sparsity weakness the paper notes [44], reproduced here naturally because the
platform spreads queries over a large pool.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crowd.tasks import QueryResult
from repro.data.metadata import DamageLabel

__all__ = ["TruthDiscoveryEM", "aggregate_by_tdem"]


@dataclass
class TruthDiscoveryEM:
    """EM-based joint estimation of true labels and worker reliability.

    The worker model is single-parameter ("one-coin"): with probability
    ``reliability`` the worker reports the true label, otherwise an error
    uniformly spread over the other classes.

    Parameters
    ----------
    n_classes:
        Number of label classes.
    max_iter, tol:
        EM stopping criteria (iteration cap / posterior change threshold).
    smoothing:
        Pseudo-count regularization on reliability estimates, which keeps
        workers with one or two responses from collapsing to 0 or 1.
    """

    n_classes: int = DamageLabel.count()
    max_iter: int = 50
    tol: float = 1e-6
    smoothing: float = 1.0

    def fit(
        self, results: list[QueryResult]
    ) -> tuple[np.ndarray, dict[int, float]]:
        """Run EM; returns (posteriors ``(n_queries, n_classes)``, reliabilities)."""
        if not results:
            raise ValueError("no query results to aggregate")
        worker_ids = sorted(
            {r.worker_id for result in results for r in result.responses}
        )
        worker_index = {wid: i for i, wid in enumerate(worker_ids)}
        n_workers = len(worker_ids)
        n_queries = len(results)
        k = self.n_classes

        # responses[q] = list of (worker_idx, label)
        responses: list[list[tuple[int, int]]] = []
        for result in results:
            if not result.responses:
                raise ValueError("a query has no responses")
            responses.append(
                [(worker_index[r.worker_id], int(r.label)) for r in result.responses]
            )

        # Initialize posteriors from vote fractions.
        posteriors = np.zeros((n_queries, k))
        for q, resp in enumerate(responses):
            for _, label in resp:
                posteriors[q, label] += 1.0
        posteriors /= posteriors.sum(axis=1, keepdims=True)

        reliability = np.full(n_workers, 0.8)
        priors = np.full(k, 1.0 / k)

        for _ in range(self.max_iter):
            # M-step: reliability = expected fraction of matches, smoothed.
            match = np.full(n_workers, self.smoothing * 0.8)
            count = np.full(n_workers, self.smoothing)
            for q, resp in enumerate(responses):
                for w, label in resp:
                    match[w] += posteriors[q, label]
                    count[w] += 1.0
            reliability = np.clip(match / count, 0.05, 0.99)
            priors = np.clip(posteriors.mean(axis=0), 1e-6, None)
            priors /= priors.sum()

            # E-step: posterior over true labels given worker reliabilities.
            new_posteriors = np.tile(np.log(priors), (n_queries, 1))
            for q, resp in enumerate(responses):
                for w, label in resp:
                    p_correct = reliability[w]
                    p_error = (1.0 - p_correct) / (k - 1)
                    log_like = np.full(k, np.log(p_error))
                    log_like[label] = np.log(p_correct)
                    new_posteriors[q] += log_like
            new_posteriors -= new_posteriors.max(axis=1, keepdims=True)
            new_posteriors = np.exp(new_posteriors)
            new_posteriors /= new_posteriors.sum(axis=1, keepdims=True)

            shift = float(np.abs(new_posteriors - posteriors).max())
            posteriors = new_posteriors
            if shift < self.tol:
                break

        return posteriors, {
            wid: float(reliability[worker_index[wid]]) for wid in worker_ids
        }

    def aggregate(self, results: list[QueryResult]) -> np.ndarray:
        """MAP labels for each query."""
        posteriors, _ = self.fit(results)
        return np.argmax(posteriors, axis=1).astype(np.int64)


def aggregate_by_tdem(
    results: list[QueryResult], n_classes: int = DamageLabel.count()
) -> np.ndarray:
    """Convenience wrapper: EM-aggregated labels with default settings."""
    return TruthDiscoveryEM(n_classes=n_classes).aggregate(results)
