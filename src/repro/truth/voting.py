"""Majority voting — the simplest crowd label aggregator.

The paper's Table I compares CQC against plain majority voting, which is
known to be suboptimal when workers have unequal reliability.
"""

from __future__ import annotations

import numpy as np

from repro.crowd.tasks import QueryResult
from repro.data.metadata import DamageLabel

__all__ = ["majority_vote", "vote_distribution", "aggregate_by_voting"]


def vote_distribution(result: QueryResult, n_classes: int | None = None) -> np.ndarray:
    """Normalized label-vote histogram for one query."""
    if n_classes is None:
        n_classes = DamageLabel.count()
    labels = result.labels()
    if labels.size == 0:
        raise ValueError("query has no responses to vote over")
    counts = np.bincount(labels, minlength=n_classes).astype(np.float64)
    return counts / counts.sum()


def majority_vote(result: QueryResult, n_classes: int | None = None) -> int:
    """The plurality label for one query (ties break to the lower label)."""
    return int(np.argmax(vote_distribution(result, n_classes)))


def aggregate_by_voting(
    results: list[QueryResult], n_classes: int | None = None
) -> np.ndarray:
    """Plurality labels for a batch of queries."""
    if not results:
        raise ValueError("no query results to aggregate")
    return np.array(
        [majority_vote(r, n_classes) for r in results], dtype=np.int64
    )
