"""Classical-vision substrate: HOG, histograms, k-means, BoVW, Grad-CAM."""

from repro.vision.bovw import BoVWEncoder
from repro.vision.gradcam import GradCAM
from repro.vision.histograms import (
    color_histogram,
    grayscale_histogram,
    joint_color_histogram,
)
from repro.vision.hog import gradient_magnitude_orientation, hog_descriptor
from repro.vision.kmeans import KMeans, kmeans_plus_plus_init
from repro.vision.patches import (
    dense_patches,
    describe_image_patches,
    patch_descriptor,
)

__all__ = [
    "BoVWEncoder",
    "GradCAM",
    "color_histogram",
    "grayscale_histogram",
    "joint_color_histogram",
    "gradient_magnitude_orientation",
    "hog_descriptor",
    "KMeans",
    "kmeans_plus_plus_init",
    "dense_patches",
    "describe_image_patches",
    "patch_descriptor",
]
