"""Histogram-of-oriented-gradients descriptor (Dalal & Triggs style).

The BoVW baseline in the paper uses handcrafted features (SIFT, HOG) to train
a neural-network classifier.  This module provides the HOG half; dense patch
descriptors for the visual-word codebook come from :mod:`repro.vision.patches`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gradient_magnitude_orientation", "hog_descriptor"]


def _to_gray(image: np.ndarray) -> np.ndarray:
    """Collapse an (H, W) or (H, W, 3) image to grayscale float64."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim == 2:
        return image
    if image.ndim == 3 and image.shape[2] == 3:
        # ITU-R BT.601 luma weights.
        return image @ np.array([0.299, 0.587, 0.114])
    raise ValueError(f"expected (H, W) or (H, W, 3) image, got shape {image.shape}")


def gradient_magnitude_orientation(
    image: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-pixel gradient magnitude and orientation (radians in [0, pi)).

    Gradients use central differences with replicated borders.
    """
    gray = _to_gray(image)
    gx = np.empty_like(gray)
    gy = np.empty_like(gray)
    gx[:, 1:-1] = (gray[:, 2:] - gray[:, :-2]) / 2.0
    gx[:, 0] = gray[:, 1] - gray[:, 0]
    gx[:, -1] = gray[:, -1] - gray[:, -2]
    gy[1:-1, :] = (gray[2:, :] - gray[:-2, :]) / 2.0
    gy[0, :] = gray[1, :] - gray[0, :]
    gy[-1, :] = gray[-1, :] - gray[-2, :]
    magnitude = np.hypot(gx, gy)
    orientation = np.arctan2(gy, gx) % np.pi  # unsigned orientation
    return magnitude, orientation


def hog_descriptor(
    image: np.ndarray,
    cell_size: int = 8,
    n_bins: int = 9,
    block_size: int = 2,
    eps: float = 1e-6,
) -> np.ndarray:
    """Compute a HOG feature vector for ``image``.

    Parameters
    ----------
    image:
        (H, W) or (H, W, 3) array; H and W must be multiples of ``cell_size``.
    cell_size:
        Side of the square cells the orientation histogram is pooled over.
    n_bins:
        Number of unsigned orientation bins over [0, pi).
    block_size:
        Side (in cells) of the L2-normalized blocks; blocks overlap by one
        cell in each direction, as in the original descriptor.
    """
    if cell_size <= 0 or n_bins <= 0 or block_size <= 0:
        raise ValueError("cell_size, n_bins and block_size must be positive")
    magnitude, orientation = gradient_magnitude_orientation(image)
    h, w = magnitude.shape
    if h % cell_size or w % cell_size:
        raise ValueError(
            f"image dims {h}x{w} must be multiples of cell_size={cell_size}"
        )
    cells_y, cells_x = h // cell_size, w // cell_size
    if cells_y < block_size or cells_x < block_size:
        raise ValueError("image too small for the requested block_size")

    # Soft-assign each pixel's magnitude to the two nearest orientation bins.
    bin_width = np.pi / n_bins
    position = orientation / bin_width - 0.5
    lower = np.floor(position).astype(np.int64)
    frac = position - lower
    lower_bin = lower % n_bins
    upper_bin = (lower + 1) % n_bins

    cell_hist = np.zeros((cells_y, cells_x, n_bins), dtype=np.float64)
    cy = np.repeat(np.arange(cells_y), cell_size)[:, None]
    cx = np.repeat(np.arange(cells_x), cell_size)[None, :]
    cy = np.broadcast_to(cy, (h, w))
    cx = np.broadcast_to(cx, (h, w))
    np.add.at(cell_hist, (cy, cx, lower_bin), magnitude * (1.0 - frac))
    np.add.at(cell_hist, (cy, cx, upper_bin), magnitude * frac)

    blocks = []
    for by in range(cells_y - block_size + 1):
        for bx in range(cells_x - block_size + 1):
            block = cell_hist[by : by + block_size, bx : bx + block_size].ravel()
            norm = np.sqrt((block**2).sum() + eps**2)
            blocks.append(block / norm)
    return np.concatenate(blocks)
