"""Histogram-of-oriented-gradients descriptor (Dalal & Triggs style).

The BoVW baseline in the paper uses handcrafted features (SIFT, HOG) to train
a neural-network classifier.  This module provides the HOG half; dense patch
descriptors for the visual-word codebook come from :mod:`repro.vision.patches`.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = [
    "gradient_magnitude_orientation",
    "batch_gradient_magnitude_orientation",
    "hog_descriptor",
    "hog_descriptor_batch",
]


def _to_gray(image: np.ndarray) -> np.ndarray:
    """Collapse an (H, W) or (H, W, 3) image to grayscale float64."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim == 2:
        return image
    if image.ndim == 3 and image.shape[2] == 3:
        # ITU-R BT.601 luma weights.
        return image @ np.array([0.299, 0.587, 0.114])
    raise ValueError(f"expected (H, W) or (H, W, 3) image, got shape {image.shape}")


def _to_gray_batch(images: np.ndarray) -> np.ndarray:
    """Collapse an (N, H, W) or (N, H, W, 3) batch to grayscale float64."""
    images = np.asarray(images, dtype=np.float64)
    if images.ndim == 3:
        return images
    if images.ndim == 4 and images.shape[3] == 3:
        return images @ np.array([0.299, 0.587, 0.114])
    raise ValueError(
        f"expected (N, H, W) or (N, H, W, 3) batch, got shape {images.shape}"
    )


def gradient_magnitude_orientation(
    image: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-pixel gradient magnitude and orientation (radians in [0, pi)).

    Gradients use central differences with replicated borders.
    """
    gray = _to_gray(image)
    gx = np.empty_like(gray)
    gy = np.empty_like(gray)
    gx[:, 1:-1] = (gray[:, 2:] - gray[:, :-2]) / 2.0
    gx[:, 0] = gray[:, 1] - gray[:, 0]
    gx[:, -1] = gray[:, -1] - gray[:, -2]
    gy[1:-1, :] = (gray[2:, :] - gray[:-2, :]) / 2.0
    gy[0, :] = gray[1, :] - gray[0, :]
    gy[-1, :] = gray[-1, :] - gray[-2, :]
    magnitude = np.hypot(gx, gy)
    orientation = np.arctan2(gy, gx) % np.pi  # unsigned orientation
    return magnitude, orientation


def batch_gradient_magnitude_orientation(
    images: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`gradient_magnitude_orientation` over an (N, H, W[, 3]) batch.

    Every operation is elementwise or a fixed-stencil difference, so each
    batch row is bit-identical to running the scalar function on that
    image alone.
    """
    gray = _to_gray_batch(images)
    gx = np.empty_like(gray)
    gy = np.empty_like(gray)
    gx[:, :, 1:-1] = (gray[:, :, 2:] - gray[:, :, :-2]) / 2.0
    gx[:, :, 0] = gray[:, :, 1] - gray[:, :, 0]
    gx[:, :, -1] = gray[:, :, -1] - gray[:, :, -2]
    gy[:, 1:-1, :] = (gray[:, 2:, :] - gray[:, :-2, :]) / 2.0
    gy[:, 0, :] = gray[:, 1, :] - gray[:, 0, :]
    gy[:, -1, :] = gray[:, -1, :] - gray[:, -2, :]
    magnitude = np.hypot(gx, gy)
    orientation = np.arctan2(gy, gx) % np.pi
    return magnitude, orientation


def hog_descriptor(
    image: np.ndarray,
    cell_size: int = 8,
    n_bins: int = 9,
    block_size: int = 2,
    eps: float = 1e-6,
) -> np.ndarray:
    """Compute a HOG feature vector for ``image``.

    Parameters
    ----------
    image:
        (H, W) or (H, W, 3) array; H and W must be multiples of ``cell_size``.
    cell_size:
        Side of the square cells the orientation histogram is pooled over.
    n_bins:
        Number of unsigned orientation bins over [0, pi).
    block_size:
        Side (in cells) of the L2-normalized blocks; blocks overlap by one
        cell in each direction, as in the original descriptor.
    """
    if cell_size <= 0 or n_bins <= 0 or block_size <= 0:
        raise ValueError("cell_size, n_bins and block_size must be positive")
    magnitude, orientation = gradient_magnitude_orientation(image)
    h, w = magnitude.shape
    if h % cell_size or w % cell_size:
        raise ValueError(
            f"image dims {h}x{w} must be multiples of cell_size={cell_size}"
        )
    cells_y, cells_x = h // cell_size, w // cell_size
    if cells_y < block_size or cells_x < block_size:
        raise ValueError("image too small for the requested block_size")

    # Soft-assign each pixel's magnitude to the two nearest orientation bins.
    bin_width = np.pi / n_bins
    position = orientation / bin_width - 0.5
    lower = np.floor(position).astype(np.int64)
    frac = position - lower
    lower_bin = lower % n_bins
    upper_bin = (lower + 1) % n_bins

    cell_hist = np.zeros((cells_y, cells_x, n_bins), dtype=np.float64)
    cy = np.repeat(np.arange(cells_y), cell_size)[:, None]
    cx = np.repeat(np.arange(cells_x), cell_size)[None, :]
    cy = np.broadcast_to(cy, (h, w))
    cx = np.broadcast_to(cx, (h, w))
    np.add.at(cell_hist, (cy, cx, lower_bin), magnitude * (1.0 - frac))
    np.add.at(cell_hist, (cy, cx, upper_bin), magnitude * frac)

    return _normalized_blocks(cell_hist[None], block_size, eps).reshape(-1)


def _normalized_blocks(
    cell_hist: np.ndarray, block_size: int, eps: float
) -> np.ndarray:
    """L2-normalized overlapping blocks of an (N, cy, cx, bins) histogram.

    Vectorizes the classical per-block loop with a sliding-window view.
    ``moveaxis`` restores the C-order ravel of the loop's
    ``cell_hist[by:by+bs, bx:bx+bs, :]`` slices, so flattened output is
    bit-identical to concatenating the loop's normalized blocks.
    Returns shape ``(N, blocks_y * blocks_x * block_size**2 * bins)``.
    """
    n, cells_y, cells_x, n_bins = cell_hist.shape
    windows = sliding_window_view(
        cell_hist, (block_size, block_size), axis=(1, 2)
    )  # (N, by, bx, bins, bs, bs)
    blocks = np.moveaxis(windows, 3, 5).reshape(
        n, cells_y - block_size + 1, cells_x - block_size + 1, -1
    )
    norms = np.sqrt((blocks**2).sum(axis=3) + eps**2)
    return (blocks / norms[..., None]).reshape(n, -1)


def hog_descriptor_batch(
    images: np.ndarray,
    cell_size: int = 8,
    n_bins: int = 9,
    block_size: int = 2,
    eps: float = 1e-6,
) -> np.ndarray:
    """:func:`hog_descriptor` over a batch of same-shape images, ``(N, D)``.

    The cell histograms accumulate with one ``np.add.at`` over the whole
    batch; since the scatter indices never cross image boundaries, each
    cell receives its pixels' contributions in exactly the order the
    scalar path adds them, keeping rows bit-identical to per-image calls.
    """
    if cell_size <= 0 or n_bins <= 0 or block_size <= 0:
        raise ValueError("cell_size, n_bins and block_size must be positive")
    magnitude, orientation = batch_gradient_magnitude_orientation(images)
    n, h, w = magnitude.shape
    if h % cell_size or w % cell_size:
        raise ValueError(
            f"image dims {h}x{w} must be multiples of cell_size={cell_size}"
        )
    cells_y, cells_x = h // cell_size, w // cell_size
    if cells_y < block_size or cells_x < block_size:
        raise ValueError("image too small for the requested block_size")

    bin_width = np.pi / n_bins
    position = orientation / bin_width - 0.5
    lower = np.floor(position).astype(np.int64)
    frac = position - lower
    lower_bin = lower % n_bins
    upper_bin = (lower + 1) % n_bins

    cell_hist = np.zeros((n, cells_y, cells_x, n_bins), dtype=np.float64)
    ii = np.broadcast_to(np.arange(n)[:, None, None], (n, h, w))
    cy = np.broadcast_to(
        np.repeat(np.arange(cells_y), cell_size)[None, :, None], (n, h, w)
    )
    cx = np.broadcast_to(
        np.repeat(np.arange(cells_x), cell_size)[None, None, :], (n, h, w)
    )
    np.add.at(cell_hist, (ii, cy, cx, lower_bin), magnitude * (1.0 - frac))
    np.add.at(cell_hist, (ii, cy, cx, upper_bin), magnitude * frac)
    return _normalized_blocks(cell_hist, block_size, eps)
