"""Gradient-weighted Class Activation Mapping (Grad-CAM) for numpy CNNs.

The DDM baseline [5] combines a CNN with Grad-CAM: the class-discriminative
heatmap localizes the damaged region, and the heatmap mass is used to grade
severity.  This implementation works directly on
:class:`repro.nn.model.Sequential` models by replaying the forward pass in
training mode (so layer caches are populated) and backpropagating a one-hot
class gradient down to the chosen convolutional layer.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2D, Dropout
from repro.nn.model import Sequential

__all__ = ["GradCAM"]


class GradCAM:
    """Computes Grad-CAM heatmaps for a target conv layer of a model.

    Parameters
    ----------
    model:
        The CNN; its input must be NCHW.
    target_layer:
        Index into ``model.layers`` of the convolution whose output feature
        maps the heatmap is computed over.  Defaults to the last
        :class:`~repro.nn.layers.Conv2D` in the model.
    """

    def __init__(self, model: Sequential, target_layer: int | None = None) -> None:
        if target_layer is None:
            conv_indices = [
                i for i, layer in enumerate(model.layers) if isinstance(layer, Conv2D)
            ]
            if not conv_indices:
                raise ValueError("model contains no Conv2D layer for Grad-CAM")
            target_layer = conv_indices[-1]
        if not 0 <= target_layer < len(model.layers):
            raise ValueError(
                f"target_layer {target_layer} out of range for "
                f"{len(model.layers)} layers"
            )
        self.model = model
        self.target_layer = target_layer

    def _forward(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One instrumented forward pass; returns (target activations, logits).

        Runs in training mode so every layer caches what backward needs —
        except Dropout, which must stay in inference mode or the heatmaps
        (and any prediction derived from them) become stochastic.  Dropout
        is the only layer whose *values* depend on the training flag here,
        so the logits are bit-identical to an inference-mode forward.
        """
        activations = x
        cached: np.ndarray | None = None
        for i, layer in enumerate(self.model.layers):
            training = not isinstance(layer, Dropout)
            activations = layer.forward(activations, training=training)
            if i == self.target_layer:
                cached = activations
        if cached is None:  # pragma: no cover - guarded by constructor
            raise RuntimeError("target layer did not produce activations")
        return cached, activations

    def _cam(
        self, cached: np.ndarray, logits: np.ndarray, class_idx: np.ndarray
    ) -> np.ndarray:
        """Heatmaps from an already-populated forward pass.

        Backward only reads layer caches (it never consumes them), so this
        can run repeatedly — once per class vector — off a single forward.
        """
        # Backpropagate d(logit[class]) / d(feature maps) to the target layer.
        grad = np.zeros_like(logits)
        grad[np.arange(len(class_idx)), class_idx] = 1.0
        self.model.zero_grad()
        for layer in reversed(self.model.layers[self.target_layer + 1 :]):
            grad = layer.backward(grad)

        # Grad-CAM: weight each feature map by its average gradient, sum, ReLU.
        weights = grad.mean(axis=(2, 3))  # (n, channels)
        cam = np.einsum("nc,nchw->nhw", weights, cached)
        np.clip(cam, 0.0, None, out=cam)
        maxes = cam.max(axis=(1, 2), keepdims=True)
        safe = np.where(maxes > 0, maxes, 1.0)
        return cam / safe

    def _check_classes(
        self, x: np.ndarray, class_idx: np.ndarray
    ) -> np.ndarray:
        class_idx = np.asarray(class_idx, dtype=np.int64).ravel()
        if class_idx.shape[0] != x.shape[0]:
            raise ValueError("class_idx must have one entry per input sample")
        return class_idx

    def heatmaps(self, x: np.ndarray, class_idx: np.ndarray) -> np.ndarray:
        """Grad-CAM heatmaps for a batch.

        Parameters
        ----------
        x:
            NCHW input batch.
        class_idx:
            Per-sample class whose evidence to localize, shape ``(n,)``.

        Returns
        -------
        Heatmaps of shape ``(n, fh, fw)`` (the target layer's spatial size),
        ReLU-ed and max-normalized to [0, 1] per sample.
        """
        class_idx = self._check_classes(x, class_idx)
        cached, logits = self._forward(x)
        if logits.ndim != 2 or np.any(class_idx >= logits.shape[1]):
            raise ValueError("class_idx out of range for the model's outputs")
        return self._cam(cached, logits, class_idx)

    def heatmap_mass(self, x: np.ndarray, class_idx: np.ndarray) -> np.ndarray:
        """Fraction of image area the heatmap activates, shape ``(n,)``.

        DDM grades severity by how much of the image the damage evidence
        covers; this returns mean heatmap intensity per sample as that proxy.
        """
        maps = self.heatmaps(x, class_idx)
        return maps.mean(axis=(1, 2))

    def heatmap_masses(
        self, x: np.ndarray, class_rows: list[np.ndarray]
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Heatmap masses for several class vectors off one shared forward.

        Calling :meth:`heatmap_mass` per class vector repeats the full
        forward pass each time; this runs it once and backpropagates once
        per vector (the masses are bit-identical either way).  Also returns
        the logits, so callers needing class probabilities can reuse the
        same pass instead of running the model a third time.
        """
        rows = [self._check_classes(x, row) for row in class_rows]
        cached, logits = self._forward(x)
        if logits.ndim != 2 or any(
            np.any(row >= logits.shape[1]) for row in rows
        ):
            raise ValueError("class_idx out of range for the model's outputs")
        masses = [
            self._cam(cached, logits, row).mean(axis=(1, 2)) for row in rows
        ]
        return masses, logits
