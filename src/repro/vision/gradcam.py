"""Gradient-weighted Class Activation Mapping (Grad-CAM) for numpy CNNs.

The DDM baseline [5] combines a CNN with Grad-CAM: the class-discriminative
heatmap localizes the damaged region, and the heatmap mass is used to grade
severity.  This implementation works directly on
:class:`repro.nn.model.Sequential` models by replaying the forward pass in
training mode (so layer caches are populated) and backpropagating a one-hot
class gradient down to the chosen convolutional layer.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2D, Dropout
from repro.nn.model import Sequential

__all__ = ["GradCAM"]


class GradCAM:
    """Computes Grad-CAM heatmaps for a target conv layer of a model.

    Parameters
    ----------
    model:
        The CNN; its input must be NCHW.
    target_layer:
        Index into ``model.layers`` of the convolution whose output feature
        maps the heatmap is computed over.  Defaults to the last
        :class:`~repro.nn.layers.Conv2D` in the model.
    """

    def __init__(self, model: Sequential, target_layer: int | None = None) -> None:
        if target_layer is None:
            conv_indices = [
                i for i, layer in enumerate(model.layers) if isinstance(layer, Conv2D)
            ]
            if not conv_indices:
                raise ValueError("model contains no Conv2D layer for Grad-CAM")
            target_layer = conv_indices[-1]
        if not 0 <= target_layer < len(model.layers):
            raise ValueError(
                f"target_layer {target_layer} out of range for "
                f"{len(model.layers)} layers"
            )
        self.model = model
        self.target_layer = target_layer

    def heatmaps(self, x: np.ndarray, class_idx: np.ndarray) -> np.ndarray:
        """Grad-CAM heatmaps for a batch.

        Parameters
        ----------
        x:
            NCHW input batch.
        class_idx:
            Per-sample class whose evidence to localize, shape ``(n,)``.

        Returns
        -------
        Heatmaps of shape ``(n, fh, fw)`` (the target layer's spatial size),
        ReLU-ed and max-normalized to [0, 1] per sample.
        """
        class_idx = np.asarray(class_idx, dtype=np.int64).ravel()
        if class_idx.shape[0] != x.shape[0]:
            raise ValueError("class_idx must have one entry per input sample")

        # Forward in training mode so every layer caches what backward needs —
        # except Dropout, which must stay in inference mode or the heatmaps
        # (and any prediction derived from them) become stochastic.
        activations = x
        cached: np.ndarray | None = None
        for i, layer in enumerate(self.model.layers):
            training = not isinstance(layer, Dropout)
            activations = layer.forward(activations, training=training)
            if i == self.target_layer:
                cached = activations
        logits = activations
        if cached is None:  # pragma: no cover - guarded by constructor
            raise RuntimeError("target layer did not produce activations")
        if logits.ndim != 2 or np.any(class_idx >= logits.shape[1]):
            raise ValueError("class_idx out of range for the model's outputs")

        # Backpropagate d(logit[class]) / d(feature maps) to the target layer.
        grad = np.zeros_like(logits)
        grad[np.arange(len(class_idx)), class_idx] = 1.0
        self.model.zero_grad()
        for layer in reversed(self.model.layers[self.target_layer + 1 :]):
            grad = layer.backward(grad)

        # Grad-CAM: weight each feature map by its average gradient, sum, ReLU.
        weights = grad.mean(axis=(2, 3))  # (n, channels)
        cam = np.einsum("nc,nchw->nhw", weights, cached)
        np.clip(cam, 0.0, None, out=cam)
        maxes = cam.max(axis=(1, 2), keepdims=True)
        safe = np.where(maxes > 0, maxes, 1.0)
        return cam / safe

    def heatmap_mass(self, x: np.ndarray, class_idx: np.ndarray) -> np.ndarray:
        """Fraction of image area the heatmap activates, shape ``(n,)``.

        DDM grades severity by how much of the image the damage evidence
        covers; this returns mean heatmap intensity per sample as that proxy.
        """
        maps = self.heatmaps(x, class_idx)
        return maps.mean(axis=(1, 2))
