"""K-means clustering (Lloyd's algorithm with k-means++ seeding).

Used to learn the visual-word codebook for the bag-of-visual-words pipeline.
Implemented from scratch so the reproduction has no sklearn dependency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KMeans", "kmeans_plus_plus_init"]


def kmeans_plus_plus_init(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers proportionally to D^2."""
    n = data.shape[0]
    if k <= 0 or k > n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    centers = np.empty((k, data.shape[1]), dtype=np.float64)
    centers[0] = data[rng.integers(n)]
    closest_sq = np.sum((data - centers[0]) ** 2, axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with chosen centers; pick randomly.
            centers[i:] = data[rng.integers(n, size=k - i)]
            break
        probs = closest_sq / total
        centers[i] = data[rng.choice(n, p=probs)]
        dist_sq = np.sum((data - centers[i]) ** 2, axis=1)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centers


@dataclass
class KMeans:
    """Lloyd's algorithm with k-means++ initialization.

    Attributes
    ----------
    centers:
        ``(k, d)`` array of cluster centers after :meth:`fit`.
    inertia:
        Final sum of squared distances to assigned centers.
    """

    n_clusters: int
    max_iter: int = 100
    tol: float = 1e-6

    def __post_init__(self) -> None:
        if self.n_clusters <= 0:
            raise ValueError(f"n_clusters must be positive, got {self.n_clusters}")
        if self.max_iter <= 0:
            raise ValueError(f"max_iter must be positive, got {self.max_iter}")
        self.centers: np.ndarray | None = None
        self.inertia: float | None = None
        self.n_iter: int = 0

    def fit(self, data: np.ndarray, rng: np.random.Generator) -> "KMeans":
        """Cluster ``data`` (shape ``(n, d)``); returns self."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if data.shape[0] < self.n_clusters:
            raise ValueError(
                f"need at least {self.n_clusters} samples, got {data.shape[0]}"
            )
        centers = kmeans_plus_plus_init(data, self.n_clusters, rng)
        previous_inertia = np.inf
        for iteration in range(1, self.max_iter + 1):
            labels, distances = self._assign(data, centers)
            inertia = float(distances.sum())
            for cluster in range(self.n_clusters):
                members = data[labels == cluster]
                if len(members):
                    centers[cluster] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the point farthest from its
                    # current center to avoid dead clusters.
                    centers[cluster] = data[np.argmax(distances)]
            self.n_iter = iteration
            if previous_inertia - inertia <= self.tol * max(previous_inertia, 1e-12):
                break
            previous_inertia = inertia
        labels, distances = self._assign(data, centers)
        self.centers = centers
        self.inertia = float(distances.sum())
        return self

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Nearest-center index for each row of ``data``."""
        if self.centers is None:
            raise RuntimeError("KMeans.predict called before fit")
        data = np.asarray(data, dtype=np.float64)
        labels, _ = self._assign(data, self.centers)
        return labels

    @staticmethod
    def _assign(
        data: np.ndarray, centers: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Labels and squared distances of each point to its nearest center."""
        # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2, vectorized over all pairs.
        x_sq = np.sum(data**2, axis=1)[:, None]
        c_sq = np.sum(centers**2, axis=1)[None, :]
        d2 = x_sq - 2.0 * data @ centers.T + c_sq
        np.clip(d2, 0.0, None, out=d2)
        labels = np.argmin(d2, axis=1)
        return labels, d2[np.arange(len(data)), labels]
