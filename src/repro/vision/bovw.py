"""Bag-of-visual-words encoder.

Learns a codebook of patch descriptors with k-means and encodes each image as
a normalized histogram of visual-word occurrences, optionally concatenated
with global HOG and color-histogram features.  This is the handcrafted
feature stack of the paper's BoVW baseline [51].
"""

from __future__ import annotations

import numpy as np

from repro.vision.histograms import color_histogram
from repro.vision.hog import hog_descriptor, hog_descriptor_batch
from repro.vision.kmeans import KMeans
from repro.vision.patches import (
    dense_patches,
    describe_image_patches,
    describe_patches,
)

__all__ = ["BoVWEncoder"]


class BoVWEncoder:
    """Fit a visual-word codebook, then encode images to feature vectors.

    Parameters
    ----------
    vocabulary_size:
        Number of visual words (k-means clusters).
    patch_size, stride:
        Dense-sampling grid for patch descriptors.
    include_global:
        When True (default), append global HOG and per-channel color
        histograms to the visual-word histogram.
    """

    def __init__(
        self,
        vocabulary_size: int = 32,
        patch_size: int = 8,
        stride: int = 4,
        include_global: bool = True,
        max_patches_for_fit: int = 20000,
    ) -> None:
        if vocabulary_size <= 0:
            raise ValueError("vocabulary_size must be positive")
        self.vocabulary_size = vocabulary_size
        self.patch_size = patch_size
        self.stride = stride
        self.include_global = include_global
        self.max_patches_for_fit = max_patches_for_fit
        self._kmeans: KMeans | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether a codebook has been learned."""
        return self._kmeans is not None

    def fit(self, images: np.ndarray, rng: np.random.Generator) -> "BoVWEncoder":
        """Learn the visual-word codebook from ``images`` (N, H, W[, C])."""
        descriptors = [
            describe_image_patches(img, self.patch_size, self.stride)
            for img in images
        ]
        all_descriptors = np.concatenate(descriptors, axis=0)
        if all_descriptors.shape[0] > self.max_patches_for_fit:
            idx = rng.choice(
                all_descriptors.shape[0], self.max_patches_for_fit, replace=False
            )
            all_descriptors = all_descriptors[idx]
        if all_descriptors.shape[0] < self.vocabulary_size:
            raise ValueError(
                f"need at least {self.vocabulary_size} patch descriptors, "
                f"got {all_descriptors.shape[0]}"
            )
        self._kmeans = KMeans(n_clusters=self.vocabulary_size).fit(
            all_descriptors, rng
        )
        return self

    def encode(self, image: np.ndarray) -> np.ndarray:
        """Encode one image into its BoVW (+ global) feature vector."""
        if self._kmeans is None:
            raise RuntimeError("BoVWEncoder.encode called before fit")
        descriptors = describe_image_patches(image, self.patch_size, self.stride)
        words = self._kmeans.predict(descriptors)
        hist = np.bincount(words, minlength=self.vocabulary_size).astype(np.float64)
        hist /= max(hist.sum(), 1.0)
        if not self.include_global:
            return hist
        hog = hog_descriptor(image, cell_size=8, n_bins=9, block_size=2)
        colors = color_histogram(image, n_bins=8)
        return np.concatenate([hist, hog, colors])

    def encode_batch(self, images: np.ndarray) -> np.ndarray:
        """Encode a batch of same-shape images, shape ``(n, feature_dim)``.

        Patch descriptors for the whole batch are computed in one
        vectorized pass (the hot path); visual-word assignment stays per
        image so the k-means matmul sees the exact per-image operand
        shapes of :meth:`encode`, keeping every row bit-identical to
        encoding that image alone.
        """
        if self._kmeans is None:
            raise RuntimeError("BoVWEncoder.encode_batch called before fit")
        images = np.asarray(images, dtype=np.float64)
        n = images.shape[0]
        if n == 0:
            dim = self.feature_dim
            return np.empty((0, dim if dim is not None else 0))
        patches = np.stack(
            [dense_patches(img, self.patch_size, self.stride) for img in images]
        )
        descriptors = describe_patches(patches.reshape(-1, *patches.shape[2:]))
        per_image = descriptors.reshape(n, patches.shape[1], -1)
        hists = np.empty((n, self.vocabulary_size))
        for i in range(n):
            words = self._kmeans.predict(per_image[i])
            hist = np.bincount(words, minlength=self.vocabulary_size).astype(
                np.float64
            )
            hists[i] = hist / max(hist.sum(), 1.0)
        if not self.include_global:
            return hists
        hogs = hog_descriptor_batch(images, cell_size=8, n_bins=9, block_size=2)
        colors = np.stack([color_histogram(img, n_bins=8) for img in images])
        return np.concatenate([hists, hogs, colors], axis=1)

    @property
    def feature_dim(self) -> int | None:
        """Dimensionality of encoded vectors (None before fit)."""
        if self._kmeans is None:
            return None
        if not self.include_global:
            return self.vocabulary_size
        # HOG on 32x32 with 8px cells, 2-cell blocks: 9 blocks * 4 cells * 9 bins.
        return self.vocabulary_size + 9 * 4 * 9 + 3 * 8
