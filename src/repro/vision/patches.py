"""Dense patch sampling and patch descriptors for the BoVW codebook.

SIFT proper needs scale-space keypoint detection; at 32x32 the standard
substitute (also common in the BoVW literature) is densely sampled patches
described by small orientation histograms — the same gradient statistics
SIFT aggregates, minus the detector.
"""

from __future__ import annotations

import numpy as np

from repro.vision.hog import gradient_magnitude_orientation

__all__ = ["dense_patches", "patch_descriptor", "describe_image_patches"]


def dense_patches(
    image: np.ndarray, patch_size: int = 8, stride: int = 4
) -> np.ndarray:
    """Extract all ``patch_size`` square patches on a ``stride`` grid.

    Returns an array of shape ``(n_patches, patch_size, patch_size[, C])``.
    """
    if patch_size <= 0 or stride <= 0:
        raise ValueError("patch_size and stride must be positive")
    image = np.asarray(image, dtype=np.float64)
    h, w = image.shape[:2]
    if h < patch_size or w < patch_size:
        raise ValueError(
            f"image {h}x{w} smaller than patch_size {patch_size}"
        )
    patches = []
    for y in range(0, h - patch_size + 1, stride):
        for x in range(0, w - patch_size + 1, stride):
            patches.append(image[y : y + patch_size, x : x + patch_size])
    return np.stack(patches)


def patch_descriptor(patch: np.ndarray, n_bins: int = 8) -> np.ndarray:
    """Describe one patch by an orientation histogram + intensity moments.

    The descriptor concatenates an ``n_bins`` gradient-orientation histogram
    (magnitude weighted, L2-normalized) with the patch's mean and standard
    deviation of intensity, giving ``n_bins + 2`` dimensions.
    """
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    magnitude, orientation = gradient_magnitude_orientation(patch)
    bin_idx = np.clip(
        (orientation / np.pi * n_bins).astype(np.int64), 0, n_bins - 1
    )
    hist = np.bincount(
        bin_idx.ravel(), weights=magnitude.ravel(), minlength=n_bins
    )
    norm = np.sqrt((hist**2).sum()) + 1e-8
    hist = hist / norm
    gray = patch if patch.ndim == 2 else patch.mean(axis=2)
    return np.concatenate([hist, [gray.mean(), gray.std()]])


def describe_image_patches(
    image: np.ndarray,
    patch_size: int = 8,
    stride: int = 4,
    n_bins: int = 8,
) -> np.ndarray:
    """Dense patch descriptors for an image, shape ``(n_patches, n_bins + 2)``."""
    patches = dense_patches(image, patch_size=patch_size, stride=stride)
    return np.stack([patch_descriptor(p, n_bins=n_bins) for p in patches])
