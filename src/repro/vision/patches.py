"""Dense patch sampling and patch descriptors for the BoVW codebook.

SIFT proper needs scale-space keypoint detection; at 32x32 the standard
substitute (also common in the BoVW literature) is densely sampled patches
described by small orientation histograms — the same gradient statistics
SIFT aggregates, minus the detector.

Descriptors are computed by :func:`describe_patches` in one vectorized pass
over a whole patch batch; :func:`patch_descriptor` is the single-patch
reference implementation the batch path is kept bit-identical to.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.vision.hog import (
    batch_gradient_magnitude_orientation,
    gradient_magnitude_orientation,
)

__all__ = [
    "dense_patches",
    "patch_descriptor",
    "describe_patches",
    "describe_image_patches",
]


def dense_patches(
    image: np.ndarray, patch_size: int = 8, stride: int = 4
) -> np.ndarray:
    """Extract all ``patch_size`` square patches on a ``stride`` grid.

    Returns an array of shape ``(n_patches, patch_size, patch_size[, C])``,
    patches in row-major (y, x) grid order.
    """
    if patch_size <= 0 or stride <= 0:
        raise ValueError("patch_size and stride must be positive")
    image = np.asarray(image, dtype=np.float64)
    h, w = image.shape[:2]
    if h < patch_size or w < patch_size:
        raise ValueError(
            f"image {h}x{w} smaller than patch_size {patch_size}"
        )
    # A sliding-window view over the stride grid replaces the per-patch
    # Python loop; the final reshape copies into the same contiguous
    # (n_patches, ...) layout np.stack produced.
    windows = sliding_window_view(image, (patch_size, patch_size), axis=(0, 1))
    grid = windows[::stride, ::stride]
    if image.ndim == 3:
        # (ny, nx, C, ps, ps) -> (ny, nx, ps, ps, C)
        grid = np.moveaxis(grid, 2, -1)
    return grid.reshape(-1, *grid.shape[2:])


def patch_descriptor(patch: np.ndarray, n_bins: int = 8) -> np.ndarray:
    """Describe one patch by an orientation histogram + intensity moments.

    The descriptor concatenates an ``n_bins`` gradient-orientation histogram
    (magnitude weighted, L2-normalized) with the patch's mean and standard
    deviation of intensity, giving ``n_bins + 2`` dimensions.
    """
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    magnitude, orientation = gradient_magnitude_orientation(patch)
    bin_idx = np.clip(
        (orientation / np.pi * n_bins).astype(np.int64), 0, n_bins - 1
    )
    hist = np.bincount(
        bin_idx.ravel(), weights=magnitude.ravel(), minlength=n_bins
    )
    norm = np.sqrt((hist**2).sum()) + 1e-8
    hist = hist / norm
    gray = patch if patch.ndim == 2 else patch.mean(axis=2)
    return np.concatenate([hist, [gray.mean(), gray.std()]])


def describe_patches(patches: np.ndarray, n_bins: int = 8) -> np.ndarray:
    """:func:`patch_descriptor` over an (N, ps, ps[, C]) batch, ``(N, n_bins+2)``.

    One vectorized pass: batched gradients, a single offset ``bincount``
    for every patch's orientation histogram (the scatter never crosses
    patch boundaries, so each histogram accumulates its pixels in the same
    raster order as the scalar path), and axis-wise intensity moments.
    Rows are bit-identical to calling :func:`patch_descriptor` per patch.
    """
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    patches = np.asarray(patches, dtype=np.float64)
    if patches.ndim not in (3, 4):
        raise ValueError(
            f"expected (N, ps, ps) or (N, ps, ps, C) patches, got {patches.shape}"
        )
    n = patches.shape[0]
    if n == 0:
        return np.empty((0, n_bins + 2))
    magnitude, orientation = batch_gradient_magnitude_orientation(patches)
    bin_idx = np.clip(
        (orientation / np.pi * n_bins).astype(np.int64), 0, n_bins - 1
    )
    offsets = np.arange(n, dtype=np.int64)[:, None, None] * n_bins
    hist = np.bincount(
        (bin_idx + offsets).ravel(),
        weights=magnitude.ravel(),
        minlength=n * n_bins,
    ).reshape(n, n_bins)
    norms = np.sqrt((hist**2).sum(axis=1)) + 1e-8
    hist = hist / norms[:, None]
    gray = patches if patches.ndim == 3 else patches.mean(axis=3)
    means = gray.mean(axis=(1, 2))
    stds = gray.std(axis=(1, 2))
    return np.concatenate([hist, means[:, None], stds[:, None]], axis=1)


def describe_image_patches(
    image: np.ndarray,
    patch_size: int = 8,
    stride: int = 4,
    n_bins: int = 8,
) -> np.ndarray:
    """Dense patch descriptors for an image, shape ``(n_patches, n_bins + 2)``."""
    patches = dense_patches(image, patch_size=patch_size, stride=stride)
    return describe_patches(patches, n_bins=n_bins)
