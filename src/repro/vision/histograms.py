"""Color-histogram features for the handcrafted-feature (BoVW) pipeline."""

from __future__ import annotations

import numpy as np

__all__ = ["color_histogram", "grayscale_histogram", "joint_color_histogram"]


def _validate_image(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image, dtype=np.float64)
    if image.ndim not in (2, 3):
        raise ValueError(f"expected (H, W) or (H, W, C) image, got {image.shape}")
    return image


def grayscale_histogram(
    image: np.ndarray, n_bins: int = 16, value_range: tuple[float, float] = (0.0, 1.0)
) -> np.ndarray:
    """Normalized intensity histogram of a grayscale (or flattened) image."""
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    image = _validate_image(image)
    hist, _ = np.histogram(image.ravel(), bins=n_bins, range=value_range)
    total = hist.sum()
    if total == 0:
        return np.full(n_bins, 1.0 / n_bins)
    return hist / total


def color_histogram(
    image: np.ndarray,
    n_bins: int = 8,
    value_range: tuple[float, float] = (0.0, 1.0),
) -> np.ndarray:
    """Per-channel normalized histograms concatenated into one vector.

    For a 3-channel image with ``n_bins`` bins this yields ``3 * n_bins``
    features.
    """
    image = _validate_image(image)
    if image.ndim == 2:
        return grayscale_histogram(image, n_bins, value_range)
    channels = [
        grayscale_histogram(image[:, :, c], n_bins, value_range)
        for c in range(image.shape[2])
    ]
    return np.concatenate(channels)


def joint_color_histogram(
    image: np.ndarray,
    bins_per_channel: int = 4,
    value_range: tuple[float, float] = (0.0, 1.0),
) -> np.ndarray:
    """Joint RGB histogram, capturing color co-occurrence.

    Produces ``bins_per_channel ** 3`` features; coarse bins keep the
    dimensionality manageable.
    """
    image = _validate_image(image)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"joint histogram needs an (H, W, 3) image, got {image.shape}")
    if bins_per_channel <= 0:
        raise ValueError(f"bins_per_channel must be positive, got {bins_per_channel}")
    low, high = value_range
    scaled = (image - low) / max(high - low, 1e-12)
    idx = np.clip((scaled * bins_per_channel).astype(np.int64), 0, bins_per_channel - 1)
    flat = (
        idx[:, :, 0] * bins_per_channel**2
        + idx[:, :, 1] * bins_per_channel
        + idx[:, :, 2]
    ).ravel()
    hist = np.bincount(flat, minlength=bins_per_channel**3).astype(np.float64)
    return hist / hist.sum()
