"""Common interface for incentive policies.

A policy observes a context (temporal context index), selects an arm (an
incentive level), and later receives the realized payoff (negative response
delay) plus the incurred cost.  All the paper's compared policies — the CCMB
(UCB-ALP), fixed incentives, random incentives, and a context-free bandit
ablation — implement this interface, so the IPD module and the Figure 8
benchmark can swap them freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ArmStats", "ContextualPolicy"]


@dataclass
class ArmStats:
    """Running payoff statistics for one (context, arm) cell."""

    pulls: int = 0
    total_payoff: float = 0.0
    payoffs: list[float] = field(default_factory=list)

    @property
    def mean_payoff(self) -> float:
        """Empirical mean payoff (0 before any pull)."""
        if self.pulls == 0:
            return 0.0
        return self.total_payoff / self.pulls

    def record(self, payoff: float) -> None:
        """Record one observed payoff."""
        self.pulls += 1
        self.total_payoff += float(payoff)
        self.payoffs.append(float(payoff))


class ContextualPolicy:
    """Base class for contextual incentive policies.

    Parameters
    ----------
    n_contexts:
        Number of discrete contexts (4 temporal contexts in the paper).
    arms:
        The incentive levels in cents, e.g. ``(1, 2, 4, 6, 8, 10, 20)``.
    """

    def __init__(self, n_contexts: int, arms: tuple[float, ...]) -> None:
        if n_contexts <= 0:
            raise ValueError(f"n_contexts must be positive, got {n_contexts}")
        if not arms:
            raise ValueError("at least one arm (incentive level) is required")
        if any(a <= 0 for a in arms):
            raise ValueError(f"incentive levels must be positive, got {arms}")
        self.n_contexts = n_contexts
        self.arms = tuple(float(a) for a in arms)
        self.stats = [
            [ArmStats() for _ in self.arms] for _ in range(n_contexts)
        ]
        self.t = 0  # total decisions taken

    def select(
        self,
        context: int,
        budget_per_round: float | None = None,
        context_distribution: np.ndarray | None = None,
    ) -> int:
        """Choose an arm index for ``context``.

        ``budget_per_round`` is the average budget available per remaining
        round; ``context_distribution`` is the expected occupancy of each
        context over the *remaining* rounds.  Constrained policies use them,
        unconstrained ones ignore them.
        """
        raise NotImplementedError

    def update(self, context: int, arm: int, payoff: float) -> None:
        """Feed back the realized payoff of pulling ``arm`` in ``context``."""
        self._check_indices(context, arm)
        self.stats[context][arm].record(payoff)
        self.t += 1

    def arm_cost(self, arm: int) -> float:
        """Cost (incentive in cents) of pulling ``arm``."""
        return self.arms[arm]

    def mean_payoffs(self, context: int) -> np.ndarray:
        """Empirical mean payoff of every arm in ``context``."""
        self._check_indices(context, 0)
        return np.array([s.mean_payoff for s in self.stats[context]])

    def pull_counts(self, context: int) -> np.ndarray:
        """Pull counts of every arm in ``context``."""
        self._check_indices(context, 0)
        return np.array([s.pulls for s in self.stats[context]], dtype=np.int64)

    def _check_indices(self, context: int, arm: int) -> None:
        if not 0 <= context < self.n_contexts:
            raise IndexError(
                f"context {context} out of range [0, {self.n_contexts})"
            )
        if not 0 <= arm < len(self.arms):
            raise IndexError(f"arm {arm} out of range [0, {len(self.arms)})")
