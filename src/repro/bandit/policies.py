"""Non-learning incentive policies: the paper's comparison points for IPD.

Hybrid-Para and Hybrid-AL use a *fixed* incentive (the maximum per-query
incentive the budget allows); Figure 8 also compares against *random*
incentive assignment.
"""

from __future__ import annotations

import numpy as np

from repro.bandit.base import ContextualPolicy

__all__ = ["FixedIncentivePolicy", "RandomIncentivePolicy"]


class FixedIncentivePolicy(ContextualPolicy):
    """Always pays the same incentive level.

    Parameters
    ----------
    arm:
        Index into ``arms`` of the level to pay.  Defaults to the most
        expensive arm, matching the paper's fixed baseline ("the total budget
        divided by the number of queries", i.e. the maximum affordable).
    """

    def __init__(
        self,
        n_contexts: int,
        arms: tuple[float, ...],
        arm: int | None = None,
    ) -> None:
        super().__init__(n_contexts, arms)
        if arm is None:
            arm = int(np.argmax(self.arms))
        self._check_indices(0, arm)
        self.fixed_arm = arm

    def select(
        self,
        context: int,
        budget_per_round: float | None = None,
        context_distribution: object = None,
    ) -> int:
        del context_distribution  # fixed policy is context-blind
        self._check_indices(context, 0)
        if budget_per_round is not None:
            # Fall back to the most expensive arm that still fits the budget.
            costs = np.array(self.arms)
            if costs[self.fixed_arm] > budget_per_round + 1e-9:
                affordable = np.flatnonzero(costs <= budget_per_round + 1e-9)
                if affordable.size == 0:
                    return int(np.argmin(costs))
                return int(affordable[np.argmax(costs[affordable])])
        return self.fixed_arm


class RandomIncentivePolicy(ContextualPolicy):
    """Picks a uniformly random (affordable) incentive level each round."""

    def __init__(
        self,
        n_contexts: int,
        arms: tuple[float, ...],
        rng: np.random.Generator,
    ) -> None:
        super().__init__(n_contexts, arms)
        self.rng = rng

    def select(
        self,
        context: int,
        budget_per_round: float | None = None,
        context_distribution: object = None,
    ) -> int:
        del context_distribution  # random policy is context-blind
        self._check_indices(context, 0)
        costs = np.array(self.arms)
        if budget_per_round is None:
            candidates = np.arange(len(self.arms))
        else:
            mask = costs <= max(budget_per_round, 0.0) + 1e-9
            if not mask.any():
                mask[int(np.argmin(costs))] = True
            candidates = np.flatnonzero(mask)
        return int(self.rng.choice(candidates))
