"""Bandit substrate: constrained contextual MAB and baseline policies."""

from repro.bandit.base import ArmStats, ContextualPolicy
from repro.bandit.budget import BudgetExhausted, BudgetLedger
from repro.bandit.ccmb import UCBALPBandit
from repro.bandit.epsilon import EpsilonGreedyBandit
from repro.bandit.policies import FixedIncentivePolicy, RandomIncentivePolicy
from repro.bandit.regret import PullRecord, RegretTracker

__all__ = [
    "PullRecord",
    "RegretTracker",
    "ArmStats",
    "ContextualPolicy",
    "BudgetExhausted",
    "BudgetLedger",
    "UCBALPBandit",
    "EpsilonGreedyBandit",
    "FixedIncentivePolicy",
    "RandomIncentivePolicy",
]
