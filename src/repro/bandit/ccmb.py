"""Constrained contextual multi-armed bandit (UCB-ALP, Wu et al. [40]).

The paper's IPD learner (§IV-B.2).  Per (context, arm) UCB indices estimate
the expected payoff (negative normalized delay); an **adaptive linear
program** relaxes the budget constraint: given the average remaining budget
per remaining round ρ and the context occupancy distribution, solve

    max   Σ_z P(z) Σ_k x_{z,k} · u_{z,k}
    s.t.  Σ_z P(z) Σ_k x_{z,k} · c_k ≤ ρ,   Σ_k x_{z,k} = 1  ∀z,
          0 ≤ x ≤ 1,

and play an arm drawn from x[current context].  The LP is what moves spend
*across* contexts: it buys expensive arms where they pay (morning) and cheap
arms where delay is flat anyway (evening/midnight) — the behaviour Figure 8
credits IPD with.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.bandit.base import ContextualPolicy

__all__ = ["UCBALPBandit"]


class UCBALPBandit(ContextualPolicy):
    """UCB-ALP constrained contextual bandit.

    Parameters
    ----------
    n_contexts, arms:
        See :class:`~repro.bandit.base.ContextualPolicy`.
    exploration:
        Multiplier on the UCB confidence radius.  The default (0.3) is
        tuned for warm-started deployments like IPD, where the pilot study
        already gives every (context, arm) cell ~20 observations and the
        run itself is short (200 queries); a full-width radius would swamp
        the real payoff gaps and keep the policy exploring forever.
    context_distribution:
        Occupancy probability of each context (uniform when omitted; the
        paper's deployment spends exactly 1/4 of its cycles per context).
    rng:
        Randomness for sampling from the LP's mixed strategies; a
        deterministic argmax is used when omitted.
    """

    def __init__(
        self,
        n_contexts: int,
        arms: tuple[float, ...],
        exploration: float = 0.3,
        context_distribution: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(n_contexts, arms)
        if exploration < 0:
            raise ValueError(f"exploration must be >= 0, got {exploration}")
        if context_distribution is None:
            context_distribution = np.full(n_contexts, 1.0 / n_contexts)
        context_distribution = np.asarray(context_distribution, dtype=np.float64)
        if context_distribution.shape != (n_contexts,):
            raise ValueError(
                f"context_distribution must have shape ({n_contexts},)"
            )
        if np.any(context_distribution < 0) or context_distribution.sum() <= 0:
            raise ValueError("context_distribution must be a distribution")
        self.context_distribution = context_distribution / context_distribution.sum()
        self.exploration = exploration
        self.rng = rng

    def ucb_indices(self, context: int) -> np.ndarray:
        """UCB index of every arm in ``context`` (inf for unpulled arms)."""
        self._check_indices(context, 0)
        indices = np.empty(len(self.arms))
        total = max(self.t, 1)
        for arm, stats in enumerate(self.stats[context]):
            if stats.pulls == 0:
                indices[arm] = np.inf
            else:
                radius = self.exploration * np.sqrt(
                    2.0 * np.log(total) / stats.pulls
                )
                indices[arm] = stats.mean_payoff + radius
        return indices

    def _bounded_indices(self) -> np.ndarray:
        """All (context, arm) UCB indices with infinities made optimistic."""
        table = np.stack(
            [self.ucb_indices(z) for z in range(self.n_contexts)]
        )
        finite = table[np.isfinite(table)]
        ceiling = float(finite.max()) + 1.0 if finite.size else 1.0
        return np.where(np.isfinite(table), table, ceiling)

    def allocation(
        self,
        budget_per_round: float | None,
        context_distribution: np.ndarray | None = None,
    ) -> np.ndarray:
        """Solve the adaptive LP; returns per-context arm probabilities.

        Shape ``(n_contexts, n_arms)``; each row sums to 1.  With no budget
        signal the LP constraint is dropped and each context plays its
        UCB-best arm.  ``context_distribution`` overrides the static prior
        with the occupancy of the *remaining* rounds — in blocked deployments
        (10 consecutive cycles per context) this is what stops the LP from
        assuming already-finished contexts will come around again.
        """
        indices = self._bounded_indices()
        n_z, n_k = indices.shape
        if budget_per_round is None:
            allocation = np.zeros_like(indices)
            allocation[np.arange(n_z), np.argmax(indices, axis=1)] = 1.0
            return allocation

        if context_distribution is None:
            p = self.context_distribution
        else:
            p = np.asarray(context_distribution, dtype=np.float64)
            if p.shape != (n_z,) or np.any(p < 0) or p.sum() <= 0:
                raise ValueError(
                    "context_distribution must be a distribution over contexts"
                )
            p = p / p.sum()
        costs = np.array(self.arms)
        rho = max(budget_per_round, 0.0)
        if rho < costs.min():
            # Even the cheapest arm exceeds the pace: play it anyway (the
            # ledger is the hard stop, the LP only paces).
            allocation = np.zeros_like(indices)
            allocation[:, int(np.argmin(costs))] = 1.0
            return allocation

        # Variables x_{z,k}, flattened row-major.
        c_obj = -(p[:, None] * indices).ravel()  # maximize payoff
        a_ub = (p[:, None] * costs[None, :]).ravel()[None, :]
        b_ub = np.array([rho])
        a_eq = np.zeros((n_z, n_z * n_k))
        for z in range(n_z):
            a_eq[z, z * n_k : (z + 1) * n_k] = 1.0
        b_eq = np.ones(n_z)
        result = linprog(
            c_obj,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=(0.0, 1.0),
            method="highs",
        )
        if not result.success:  # pragma: no cover - highs solves this LP class
            allocation = np.zeros_like(indices)
            allocation[:, int(np.argmin(costs))] = 1.0
            return allocation
        allocation = np.clip(result.x.reshape(n_z, n_k), 0.0, None)
        row_sums = allocation.sum(axis=1, keepdims=True)
        return allocation / np.where(row_sums > 0, row_sums, 1.0)

    def select(
        self,
        context: int,
        budget_per_round: float | None = None,
        context_distribution: np.ndarray | None = None,
    ) -> int:
        """Draw an arm from the LP allocation for ``context``.

        With an ``rng``, samples the mixed strategy (the faithful UCB-ALP
        behaviour); otherwise plays its argmax deterministically.
        """
        self._check_indices(context, 0)
        probs = self.allocation(budget_per_round, context_distribution)[context]
        if self.rng is not None:
            return int(self.rng.choice(len(self.arms), p=probs))
        return int(np.argmax(probs))

    def greedy_arm(self, context: int) -> int:
        """The arm with the best empirical mean (no exploration bonus)."""
        means = self.mean_payoffs(context)
        return int(np.argmax(means))
