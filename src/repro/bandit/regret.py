"""Empirical regret accounting for incentive policies.

Measures how much payoff a policy left on the table relative to the best
fixed arm per context in hindsight — the standard contextual-bandit regret
notion, computed from the realized pull history.  Used to sanity-check that
the UCB-ALP learner actually converges (sublinear cumulative regret) and to
compare policies quantitatively beyond raw delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PullRecord", "RegretTracker"]


@dataclass(frozen=True)
class PullRecord:
    """One realized (context, arm, payoff) observation."""

    context: int
    arm: int
    payoff: float


@dataclass
class RegretTracker:
    """Accumulates pulls and computes hindsight regret.

    Parameters
    ----------
    n_contexts, n_arms:
        Dimensions of the policy's decision space.
    """

    n_contexts: int
    n_arms: int
    pulls: list[PullRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_contexts <= 0 or self.n_arms <= 0:
            raise ValueError("n_contexts and n_arms must be positive")

    def record(self, context: int, arm: int, payoff: float) -> None:
        """Record one realized pull."""
        if not 0 <= context < self.n_contexts:
            raise IndexError(f"context {context} out of range")
        if not 0 <= arm < self.n_arms:
            raise IndexError(f"arm {arm} out of range")
        self.pulls.append(PullRecord(context, arm, float(payoff)))

    def __len__(self) -> int:
        return len(self.pulls)

    def mean_payoff_matrix(self) -> np.ndarray:
        """Empirical mean payoff per (context, arm); NaN for unpulled cells."""
        total = np.zeros((self.n_contexts, self.n_arms))
        count = np.zeros((self.n_contexts, self.n_arms))
        for pull in self.pulls:
            total[pull.context, pull.arm] += pull.payoff
            count[pull.context, pull.arm] += 1
        with np.errstate(invalid="ignore"):
            means = total / count
        means[count == 0] = np.nan
        return means

    def best_arm_per_context(self) -> np.ndarray:
        """Hindsight-best arm per context (−1 where nothing was pulled)."""
        means = self.mean_payoff_matrix()
        best = np.full(self.n_contexts, -1, dtype=np.int64)
        for z in range(self.n_contexts):
            row = means[z]
            if np.isnan(row).all():
                continue
            best[z] = int(np.nanargmax(row))
        return best

    def cumulative_regret(self) -> np.ndarray:
        """Per-pull cumulative regret vs the hindsight-best arm per context.

        Regret of pull t = (mean payoff of the context's best arm) −
        (realized payoff of pull t); the returned array is its cumsum.
        Empty history yields an empty array.
        """
        if not self.pulls:
            return np.empty(0)
        means = self.mean_payoff_matrix()
        best_value = np.nanmax(
            np.where(np.isnan(means), -np.inf, means), axis=1
        )
        per_pull = np.array(
            [best_value[p.context] - p.payoff for p in self.pulls]
        )
        return np.cumsum(per_pull)

    def total_regret(self) -> float:
        """Final cumulative regret (0 for an empty history)."""
        cumulative = self.cumulative_regret()
        return float(cumulative[-1]) if cumulative.size else 0.0

    def is_sublinear(self, window_fraction: float = 0.25) -> bool:
        """Heuristic convergence check: late regret slope < early slope.

        Compares the average per-pull regret in the first and last
        ``window_fraction`` of the history.
        """
        if not 0.0 < window_fraction <= 0.5:
            raise ValueError("window_fraction must be in (0, 0.5]")
        cumulative = self.cumulative_regret()
        n = cumulative.size
        window = max(int(n * window_fraction), 1)
        if n < 2 * window:
            return False
        early = cumulative[window - 1] / window
        late = (cumulative[-1] - cumulative[-window - 1]) / window
        return late <= early + 1e-12
