"""ε-greedy contextual bandit (ablation baseline for the IPD learner)."""

from __future__ import annotations

import numpy as np

from repro.bandit.base import ContextualPolicy

__all__ = ["EpsilonGreedyBandit"]


class EpsilonGreedyBandit(ContextualPolicy):
    """Plays the empirically best affordable arm w.p. 1-ε, else a random one.

    Parameters
    ----------
    epsilon:
        Exploration probability.
    rng:
        Randomness source for exploration draws.
    contextual:
        When False, statistics are pooled across contexts — the
        "context-free bandit" ablation showing why IPD needs contexts.
    """

    def __init__(
        self,
        n_contexts: int,
        arms: tuple[float, ...],
        rng: np.random.Generator,
        epsilon: float = 0.1,
        contextual: bool = True,
    ) -> None:
        super().__init__(n_contexts, arms)
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.epsilon = epsilon
        self.rng = rng
        self.contextual = contextual

    def _effective_context(self, context: int) -> int:
        return context if self.contextual else 0

    def update(self, context: int, arm: int, payoff: float) -> None:
        super().update(self._effective_context(context), arm, payoff)

    def select(
        self,
        context: int,
        budget_per_round: float | None = None,
        context_distribution: object = None,
    ) -> int:
        del context_distribution  # unconstrained across contexts
        self._check_indices(context, 0)
        context = self._effective_context(context)
        costs = np.array(self.arms)
        if budget_per_round is None:
            affordable = np.arange(len(self.arms))
        else:
            mask = costs <= max(budget_per_round, 0.0) + 1e-9
            if not mask.any():
                mask[int(np.argmin(costs))] = True
            affordable = np.flatnonzero(mask)
        if self.rng.random() < self.epsilon:
            return int(self.rng.choice(affordable))
        pulls = self.pull_counts(context)[affordable]
        unpulled = affordable[pulls == 0]
        if unpulled.size:
            return int(unpulled[0])
        means = self.mean_payoffs(context)[affordable]
        return int(affordable[np.argmax(means)])
