"""Budget accounting for the crowdsourcing platform.

The paper gives the application a total budget ``B`` for crowd queries
(Eq. 1/Eq. 4).  The ledger enforces the constraint and exposes the
remaining-budget signal the constrained bandit plans against.
"""

from __future__ import annotations

__all__ = ["BudgetExhausted", "BudgetLedger"]


class BudgetExhausted(RuntimeError):
    """Raised when a charge would push spending past the total budget."""


class BudgetLedger:
    """Tracks spending against a fixed total budget (in cents).

    Parameters
    ----------
    total:
        Total budget in cents; must be positive.
    """

    def __init__(self, total: float) -> None:
        if total <= 0:
            raise ValueError(f"total budget must be positive, got {total}")
        self._total = float(total)
        self._spent = 0.0
        self._charges: list[float] = []

    @property
    def total(self) -> float:
        """The total budget in cents."""
        return self._total

    @property
    def spent(self) -> float:
        """Total amount charged so far."""
        return self._spent

    @property
    def remaining(self) -> float:
        """Budget still available."""
        return self._total - self._spent

    @property
    def n_charges(self) -> int:
        """Number of individual charges recorded."""
        return len(self._charges)

    def can_afford(self, amount: float) -> bool:
        """Whether ``amount`` fits in the remaining budget."""
        return 0 <= amount <= self.remaining + 1e-9

    def charge(self, amount: float) -> float:
        """Record a charge of ``amount`` cents; returns the new remaining budget.

        Raises
        ------
        BudgetExhausted
            If the charge exceeds the remaining budget.
        ValueError
            If the amount is negative.
        """
        if amount < 0:
            raise ValueError(f"cannot charge a negative amount: {amount}")
        if not self.can_afford(amount):
            raise BudgetExhausted(
                f"charge of {amount:.2f} exceeds remaining budget "
                f"{self.remaining:.2f} (total {self._total:.2f})"
            )
        self._spent += float(amount)
        self._charges.append(float(amount))
        return self.remaining

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BudgetLedger(total={self._total:.2f}, spent={self._spent:.2f}, "
            f"remaining={self.remaining:.2f})"
        )
