"""Budget accounting for the crowdsourcing platform.

The paper gives the application a total budget ``B`` for crowd queries
(Eq. 1/Eq. 4).  The ledger enforces the constraint and exposes the
remaining-budget signal the constrained bandit plans against.  Charges can
be partially returned via :meth:`BudgetLedger.refund` — when a query fails
(platform outage, total worker abandonment) the money flows back into the
bandit's planning signal instead of silently vanishing.
"""

from __future__ import annotations

import math

__all__ = ["BudgetExhausted", "BudgetLedger"]


class BudgetExhausted(RuntimeError):
    """Raised when a charge would push spending past the total budget."""


class BudgetLedger:
    """Tracks spending against a fixed total budget (in cents).

    Parameters
    ----------
    total:
        Total budget in cents; must be positive and finite.
    """

    def __init__(self, total: float) -> None:
        if not math.isfinite(total):
            raise ValueError(f"total budget must be finite, got {total}")
        if total <= 0:
            raise ValueError(f"total budget must be positive, got {total}")
        self._total = float(total)
        self._spent = 0.0
        self._charges: list[float] = []
        self._refunds: list[float] = []

    @property
    def total(self) -> float:
        """The total budget in cents."""
        return self._total

    @property
    def spent(self) -> float:
        """Total amount charged so far, net of refunds."""
        return self._spent

    @property
    def remaining(self) -> float:
        """Budget still available."""
        return self._total - self._spent

    @property
    def n_charges(self) -> int:
        """Number of individual charges recorded."""
        return len(self._charges)

    @property
    def n_refunds(self) -> int:
        """Number of individual refunds recorded."""
        return len(self._refunds)

    @property
    def total_charged(self) -> float:
        """Gross amount taken via :meth:`charge` (before refunds).

        With :attr:`total_refunded` this lets an auditor balance the
        books: ``total_charged − total_refunded`` must equal
        :attr:`spent`, or a charge was applied twice (e.g. a crash-replay
        double-charging a journaled post).
        """
        return float(sum(self._charges))

    @property
    def total_refunded(self) -> float:
        """Total amount returned via :meth:`refund`."""
        return float(sum(self._refunds))

    def can_afford(self, amount: float) -> bool:
        """Whether ``amount`` fits in the remaining budget.

        Raises
        ------
        ValueError
            If ``amount`` is NaN or infinite — a non-finite amount is a
            caller bug, not an affordability question.
        """
        if not math.isfinite(amount):
            raise ValueError(
                f"cannot evaluate affordability of a non-finite amount: {amount}"
            )
        return 0 <= amount <= self.remaining + 1e-9

    def charge(self, amount: float) -> float:
        """Record a charge of ``amount`` cents; returns the new remaining budget.

        Raises
        ------
        BudgetExhausted
            If the charge exceeds the remaining budget.
        ValueError
            If the amount is negative, NaN or infinite.
        """
        if not math.isfinite(amount):
            raise ValueError(f"cannot charge a non-finite amount: {amount}")
        if amount < 0:
            raise ValueError(f"cannot charge a negative amount: {amount}")
        if not self.can_afford(amount):
            raise BudgetExhausted(
                f"charge of {amount:.2f} exceeds remaining budget "
                f"{self.remaining:.2f} (total {self._total:.2f})"
            )
        self._spent += float(amount)
        self._charges.append(float(amount))
        return self.remaining

    def refund(self, amount: float) -> float:
        """Return ``amount`` cents to the budget; returns the new remaining.

        Used when a charged query fails (platform outage mid-flight, every
        worker abandoning): the money re-enters the remaining budget so the
        bandit's pacing signal reflects what is actually still spendable.

        Raises
        ------
        ValueError
            If the amount is negative, non-finite, or exceeds net spending.
        """
        if not math.isfinite(amount):
            raise ValueError(f"cannot refund a non-finite amount: {amount}")
        if amount < 0:
            raise ValueError(f"cannot refund a negative amount: {amount}")
        if amount > self._spent + 1e-9:
            raise ValueError(
                f"refund of {amount:.2f} exceeds net spending {self._spent:.2f}"
            )
        self._spent = max(0.0, self._spent - float(amount))
        self._refunds.append(float(amount))
        return self.remaining

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BudgetLedger(total={self._total:.2f}, spent={self._spent:.2f}, "
            f"remaining={self.remaining:.2f})"
        )
