"""Shared, retrain-aware prediction/feature cache.

Every sensing cycle used to recompute each expert's votes at every call
site that needed them — QSS entropy, MIC reweighting, the guard's holdout
scoring, final labels — and :class:`~repro.models.bovw_model.BoVWModel`
kept its own *unbounded* per-image feature memo on top.  This module
replaces both with one bounded, version-aware cache shared by the
committee, the guard and the models:

- **predictions** are memoized per ``(expert name, model version, pool)``,
  where the pool key is the tuple of image ids in dataset order.  Caching
  whole pools (rather than stitching per-image rows) keeps cached results
  *bit-identical* to a cache-free run: BLAS matmuls do not guarantee that
  a row of a batched forward pass equals the same row computed in a
  different batch, so a hit returns exactly the array that the expert
  produced for exactly that pool.
- **features** are memoized per ``(feature version, image id)`` — BoVW's
  per-image encoding is computed image-by-image, so per-image granularity
  is exact there.

Invalidation is by *versioning*, not by explicit flushes: every
``fit``/``retrain`` (and every guard rollback, which restores a snapshot
carrying its own older version) changes the expert's
:attr:`~repro.models.base.DDAModel.model_version`, so stale entries can
never be served.  Versions come from a process-wide monotonic counter
(see :func:`repro.models.base.next_model_version`), which means a
rolled-back expert that later retrains can never collide with the version
its discarded candidate used.  Stale entries are additionally dropped —
and counted as invalidations — whenever a newer version of the same
expert stores a result.

Both stores are bounded LRU maps, and both drop their entries when
pickled: a checkpoint therefore never carries cached arrays across
processes, where a fresh version counter could otherwise alias keys.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Callable, Hashable, Iterable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.dataset import DisasterDataset
    from repro.models.base import DDAModel

__all__ = ["CacheStats", "BoundedCache", "PredictionCache", "pool_key"]


def pool_key(dataset: "DisasterDataset") -> tuple[int, ...]:
    """The cache identity of an image pool: its image ids, in order.

    Image ids are unique per generated image and order matters (a vote
    array is positional), so two datasets share a key exactly when an
    expert at a fixed version would produce the same vote array for both.
    """
    return tuple(int(image.image_id) for image in dataset)


@dataclass
class CacheStats:
    """Counters of one bounded store's activity."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    def as_dict(self) -> dict[str, int]:
        """JSON-safe mapping of counter name to value."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def hit_rate(self) -> float:
        """Hits / lookups (0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class BoundedCache:
    """A bounded LRU mapping for memoized arrays.

    ``get`` refreshes recency; ``put`` evicts the least recently used
    entry once ``capacity`` is exceeded.  Values are treated as
    *read-only* by convention — hits return the stored array itself, so a
    caller must never mutate what it gets back.

    Pickling keeps the capacity and counters but **drops the entries**:
    cached arrays are pure derived state, and carrying them into another
    process (where the version counter restarts) could alias keys.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._data: OrderedDict[Hashable, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def keys(self) -> list[Hashable]:
        """The stored keys, least recently used first (for inspection)."""
        return list(self._data)

    def get(self, key: Hashable) -> Any | None:
        """The stored value (refreshing recency), or ``None`` on a miss."""
        try:
            value = self._data[key]
        except KeyError:
            self.stats.misses += 1
            return None
        self._data.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``key -> value``, evicting the LRU entry past capacity."""
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key matches; returns how many dropped."""
        doomed = [key for key in self._data if predicate(key)]
        for key in doomed:
            del self._data[key]
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        """Drop every entry (counted as invalidations)."""
        self.stats.invalidations += len(self._data)
        self._data.clear()

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        state["_data"] = OrderedDict()  # entries never cross processes
        return state


class PredictionCache:
    """The shared cache the committee, guard and models route through.

    Parameters
    ----------
    max_pools:
        Bound on memoized ``(expert, version, pool)`` vote arrays.
    max_features:
        Bound on memoized per-image feature vectors (shared by every
        expert that calls :meth:`~repro.models.base.DDAModel.attach_cache`
        with feature state — currently BoVW).
    namespace:
        Key prefix isolating this handle's prediction entries.  Expert
        names repeat across deployments (every event clones the same base
        committee) and model-version counters restart per process, so two
        events sharing one physical store would otherwise serve each
        other's vote arrays.  Use :meth:`scoped` to derive a per-event
        view over the same bounded stores.
    """

    def __init__(
        self,
        max_pools: int = 256,
        max_features: int = 8192,
        namespace: str = "",
    ) -> None:
        self.predictions = BoundedCache(max_pools)
        self.features = BoundedCache(max_features)
        self.namespace = namespace

    def scoped(self, namespace: str) -> "PredictionCache":
        """A view over the *same* bounded stores under another namespace.

        The view shares entries, bounds and statistics with its parent —
        only the key prefix differs, so deployments share capacity while
        their prediction entries can never collide.
        """
        view = object.__new__(PredictionCache)
        view.predictions = self.predictions
        view.features = self.features
        view.namespace = namespace
        return view

    def predict_proba(
        self, expert: "DDAModel", dataset: "DisasterDataset"
    ) -> np.ndarray:
        """``expert.predict_proba(dataset)``, memoized per
        (namespace, name, version, pool).

        On a miss the freshly computed array is stored and every entry of
        the same expert at *any other* version is dropped (the expert has
        moved on; those arrays can never be served again).
        """
        namespace = getattr(self, "namespace", "")
        key = (
            namespace, expert.name, expert.model_version, pool_key(dataset)
        )
        cached = self.predictions.get(key)
        if cached is None:
            cached = expert.predict_proba(dataset)
            self.invalidate_expert(expert.name, keep_version=key[2])
            self.predictions.put(key, cached)
        return cached

    def invalidate_expert(
        self, name: str, keep_version: int | None = None
    ) -> int:
        """Drop an expert's cached votes, optionally sparing one version.

        Scoped to this handle's namespace: another deployment's entries
        for a same-named expert are never touched.  Called automatically
        when a newer version stores a result, and explicitly by the guard
        after a rollback so a restored snapshot never shares the store
        with its discarded candidate's arrays.
        """
        namespace = getattr(self, "namespace", "")
        return self.predictions.invalidate(
            lambda key: (
                key[0] == namespace and key[1] == name
                and key[2] != keep_version
            )
        )

    def stats(self) -> dict[str, int]:
        """Flat counter mapping across both stores (telemetry-friendly)."""
        out: dict[str, int] = {}
        for prefix, store in (
            ("prediction", self.predictions),
            ("feature", self.features),
        ):
            for name, value in store.stats.as_dict().items():
                out[f"{prefix}_{name}"] = value
        return out

    def counters(self) -> Iterable[tuple[str, int]]:
        """``stats`` as items (convenience for bridging loops)."""
        return self.stats().items()
