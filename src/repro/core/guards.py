"""Learning-loop guardrails (model-side graceful degradation).

:mod:`repro.core.resilience` protects the closed loop from a misbehaving
*crowd platform*; this module protects it from misbehaving *learning*.  The
loop's last unguarded edge is MIC's calibration step: whatever labels CQC
produced flow straight into every expert's parameters and into the
committee weights, so one poisoned cycle (the paper's adversarial-worker
scenario, §VI) can permanently corrupt the machine half of the system.

Four mechanisms, configured by :class:`GuardPolicy` and orchestrated by
:class:`ModelGuard`:

- **regression-gated retraining** — before each MIC retrain, every expert
  is snapshotted into a checksummed :class:`SnapshotRing` and scored on a
  small golden holdout slice; a candidate whose holdout accuracy regresses
  beyond a tolerance is rolled back to its incumbent, bit-for-bit;
- **divergence sentinel** — :class:`DivergenceSentinel`, installed as the
  process default around guarded retrains, lets
  :meth:`~repro.nn.trainer.Trainer.fit` abort an epoch whose loss goes
  NaN/inf or whose update norm explodes, restore the last good weights,
  and retry once at a reduced learning rate before giving up cleanly;
- **committee-member quarantine** — a member whose accuracy on the golden
  holdout slice collapses (the query set is adversarially hard by
  construction, so holdout accuracy is the collapse signal) is excluded
  from the committee vote, QSS entropy and the exponential-weights update;
  re-admission needs sustained recovery (hysteresis), so a flapping expert
  cannot whipsaw the committee's uncertainty estimates;
- **label-drift detector** — a cycle whose CQC output disagrees
  anomalously with the committee consensus (relative to the run's own
  history) while the responding workers' historical reliability is poor is
  flagged, and retraining (and by default reweighting) is *skipped* on the
  flagged batch rather than merely down-weighted.

Every intervention is tallied in :class:`GuardCounters` (surfaced per
cycle on :class:`~repro.core.system.CycleOutcome`, aggregated by
:class:`~repro.core.system.RunOutcome.guard_totals` and bridged into
telemetry as ``guard_*_total`` counters).  With ``GuardPolicy.disabled()``
— or a system built without a guard — every code path is byte-identical
to the unguarded loop.
"""

from __future__ import annotations

import hashlib
import math
import pickle
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import PredictionCache
    from repro.core.committee import Committee
    from repro.core.mic import MachineIntelligenceCalibrator
    from repro.data.dataset import DisasterDataset, DisasterImage

__all__ = [
    "GuardPolicy",
    "GuardCounters",
    "Snapshot",
    "SnapshotChecksumError",
    "SnapshotRing",
    "DivergenceSentinel",
    "get_divergence_sentinel",
    "set_divergence_sentinel",
    "use_divergence_sentinel",
    "ModelGuard",
]


@dataclass(frozen=True)
class GuardPolicy:
    """How the learning loop defends itself against bad training signal.

    The default policy is deliberately conservative: on a healthy (fault
    free) deployment none of its branches trigger, so guarded runs are
    byte-identical to unguarded ones.  :meth:`hardened` is the sensitive
    profile the adversarial chaos arm uses; :meth:`disabled` turns the
    subsystem off entirely (old behaviour).

    Parameters
    ----------
    enabled:
        Master switch.  Disabled, no guard state is even constructed.
    regression_gate:
        Gate MIC retraining on holdout accuracy (snapshot + rollback).
    holdout_size:
        Number of golden training images reserved as the validation slice
        every candidate expert is scored on.
    regression_tolerance:
        Maximum tolerated drop in holdout accuracy (incumbent - candidate)
        before the candidate is rolled back.  The default leaves headroom
        over the sampling noise of a small holdout (ordinary healthy
        retrains move a 24-image slice by up to ~4 images); the hardened
        profile tolerates no regression at all.
    snapshot_ring_size:
        Snapshots kept per expert (ring buffer, newest wins).
    sentinel:
        Install a :class:`DivergenceSentinel` around guarded retrains.
    max_update_ratio:
        Sentinel threshold: an epoch whose parameter update norm exceeds
        this multiple of the pre-epoch parameter norm is treated as
        divergent (NaN/inf loss or parameters always are).
    lr_backoff_factor:
        Learning-rate multiplier for the sentinel's single retry.
    quarantine:
        Exclude collapsed committee members from votes/QSS/weight updates.
    quarantine_threshold:
        EWMA golden-holdout accuracy below which a member is quarantined.
    readmit_threshold, readmit_patience:
        Hysteresis: a quarantined member returns only after its EWMA
        accuracy stays >= ``readmit_threshold`` for ``readmit_patience``
        consecutive cycles.
    accuracy_ewma_alpha:
        Smoothing factor of the per-member accuracy EWMA.
    drift_detector:
        Flag anomalous CQC-vs-committee disagreement and skip learning.
    drift_warmup:
        Cycles of history required before the detector may flag.
    drift_sigma:
        A cycle is anomalous when its disagreement exceeds the history
        mean by this many standard deviations...
    drift_min_disagreement:
        ...and exceeds this absolute floor (guards against tiny-variance
        histories flagging ordinary noise).
    drift_reliability_floor:
        Cycles whose responding workers have a graded historical accuracy
        at or above this floor are trusted and never flagged.
    drift_skips_reweight:
        Whether a flagged cycle also skips the exponential-weights update
        (poisoned labels corrupt weights as surely as parameters).
    drift_skips_offload:
        Whether a flagged cycle also keeps the committee's labels for the
        query set instead of offloading the crowd's: labels too anomalous
        to train on are too anomalous to publish as final output.
    """

    enabled: bool = True
    # Regression-gated retraining.
    regression_gate: bool = True
    holdout_size: int = 24
    regression_tolerance: float = 0.25
    snapshot_ring_size: int = 3
    # Divergence sentinel.
    sentinel: bool = True
    max_update_ratio: float = 2.0
    lr_backoff_factor: float = 0.5
    # Committee-member quarantine.
    quarantine: bool = True
    quarantine_threshold: float = 0.1
    readmit_threshold: float = 0.4
    readmit_patience: int = 2
    accuracy_ewma_alpha: float = 0.4
    # Label-drift detector.
    drift_detector: bool = True
    drift_warmup: int = 3
    drift_sigma: float = 3.0
    drift_min_disagreement: float = 0.85
    drift_reliability_floor: float = 0.8
    drift_skips_reweight: bool = True
    drift_skips_offload: bool = True

    def __post_init__(self) -> None:
        if self.holdout_size <= 0:
            raise ValueError(
                f"holdout_size must be positive, got {self.holdout_size}"
            )
        if self.regression_tolerance < 0:
            raise ValueError(
                "regression_tolerance must be >= 0, "
                f"got {self.regression_tolerance}"
            )
        if self.snapshot_ring_size <= 0:
            raise ValueError(
                f"snapshot_ring_size must be positive, got {self.snapshot_ring_size}"
            )
        if self.max_update_ratio <= 0:
            raise ValueError(
                f"max_update_ratio must be positive, got {self.max_update_ratio}"
            )
        if not 0.0 < self.lr_backoff_factor < 1.0:
            raise ValueError(
                f"lr_backoff_factor must be in (0, 1), got {self.lr_backoff_factor}"
            )
        if not 0.0 <= self.quarantine_threshold <= self.readmit_threshold <= 1.0:
            raise ValueError(
                "need 0 <= quarantine_threshold <= readmit_threshold <= 1, got "
                f"{self.quarantine_threshold} / {self.readmit_threshold}"
            )
        if self.readmit_patience < 1:
            raise ValueError(
                f"readmit_patience must be >= 1, got {self.readmit_patience}"
            )
        if not 0.0 < self.accuracy_ewma_alpha <= 1.0:
            raise ValueError(
                f"accuracy_ewma_alpha must be in (0, 1], got {self.accuracy_ewma_alpha}"
            )
        if self.drift_warmup < 1:
            raise ValueError(
                f"drift_warmup must be >= 1, got {self.drift_warmup}"
            )
        if self.drift_sigma < 0:
            raise ValueError(f"drift_sigma must be >= 0, got {self.drift_sigma}")
        if not 0.0 <= self.drift_min_disagreement <= 1.0:
            raise ValueError(
                "drift_min_disagreement must be in [0, 1], "
                f"got {self.drift_min_disagreement}"
            )
        if not 0.0 <= self.drift_reliability_floor <= 1.0:
            raise ValueError(
                "drift_reliability_floor must be in [0, 1], "
                f"got {self.drift_reliability_floor}"
            )

    @staticmethod
    def disabled() -> "GuardPolicy":
        """The unguarded (pre-guardrails) behaviour."""
        return GuardPolicy(
            enabled=False,
            regression_gate=False,
            sentinel=False,
            quarantine=False,
            drift_detector=False,
        )

    @staticmethod
    def hardened() -> "GuardPolicy":
        """A sensitive profile for hostile-label environments.

        Trades a little learning speed for safety: tight regression
        tolerance, an eager drift detector, and a quicker quarantine
        trigger.  Used by the adversarial arm of the chaos experiment.
        """
        return GuardPolicy(
            regression_tolerance=0.05,
            quarantine_threshold=0.25,
            readmit_threshold=0.5,
            drift_warmup=2,
            # sigma 0 makes the absolute floor dominate: in a hostile
            # environment the run's own history is itself suspect, so
            # "unusually high for this run" is a weaker signal than
            # "majority disagreement with the committee".
            drift_sigma=0.0,
            drift_min_disagreement=0.45,
            drift_reliability_floor=0.9,
        )


@dataclass
class GuardCounters:
    """Structured counters of every guard intervention in a run/cycle."""

    snapshots: int = 0
    rollbacks: int = 0
    sentinel_aborts: int = 0
    sentinel_retries: int = 0
    sentinel_failures: int = 0
    quarantines: int = 0
    readmissions: int = 0
    drift_flags: int = 0
    retrains_skipped: int = 0
    reweights_skipped: int = 0
    offloads_skipped: int = 0

    def merge(self, other: "GuardCounters") -> "GuardCounters":
        """Accumulate ``other`` into this instance (returns self)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def any(self) -> bool:
        """Whether any guard intervened at all (snapshots don't count)."""
        return any(
            getattr(self, f.name) for f in fields(self) if f.name != "snapshots"
        )

    def as_dict(self) -> dict[str, float]:
        """JSON-safe mapping of counter name to value."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @staticmethod
    def from_dict(data: dict) -> "GuardCounters":
        """Inverse of :meth:`as_dict` (ignores unknown keys)."""
        known = {f.name for f in fields(GuardCounters)}
        return GuardCounters(**{k: v for k, v in data.items() if k in known})


# ---------------------------------------------------------------------------
# Snapshot ring
# ---------------------------------------------------------------------------


class SnapshotChecksumError(RuntimeError):
    """A snapshot's payload no longer matches its recorded SHA-256 digest."""


@dataclass(frozen=True)
class Snapshot:
    """One checksummed, pickled object state."""

    payload: bytes
    sha256: str
    tag: str = ""

    def verify(self) -> None:
        """Raise :class:`SnapshotChecksumError` if the payload is corrupt."""
        digest = hashlib.sha256(self.payload).hexdigest()
        if digest != self.sha256:
            raise SnapshotChecksumError(
                f"snapshot {self.tag!r} failed its integrity check: stored "
                f"sha256 {self.sha256[:12]}..., computed {digest[:12]}...; "
                "the snapshot bytes were corrupted in memory or on disk"
            )

    def restore(self) -> Any:
        """Verify the checksum and unpickle the stored object."""
        self.verify()
        return pickle.loads(self.payload)


class SnapshotRing:
    """A bounded ring of checksummed object snapshots (newest last).

    Used per expert by :class:`ModelGuard`: pushing pickles the object and
    records its SHA-256, restoring verifies the digest before unpickling,
    so a rollback can never silently resurrect corrupted parameters.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._ring: list[Snapshot] = []

    def __len__(self) -> int:
        return len(self._ring)

    def push(self, obj: Any, tag: str = "") -> Snapshot:
        """Snapshot ``obj`` (pickle + SHA-256), evicting the oldest entry."""
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        snapshot = Snapshot(
            payload=payload,
            sha256=hashlib.sha256(payload).hexdigest(),
            tag=tag,
        )
        self._ring.append(snapshot)
        if len(self._ring) > self.capacity:
            self._ring.pop(0)
        return snapshot

    def latest(self) -> Snapshot:
        """The most recent snapshot (raises :class:`LookupError` if empty)."""
        if not self._ring:
            raise LookupError("snapshot ring is empty")
        return self._ring[-1]

    def restore_latest(self) -> Any:
        """Verify and unpickle the most recent snapshot."""
        return self.latest().restore()


# ---------------------------------------------------------------------------
# Divergence sentinel
# ---------------------------------------------------------------------------


@dataclass
class DivergenceSentinel:
    """Detects divergent training epochs for :class:`~repro.nn.trainer.Trainer`.

    An epoch is *divergent* when its mean loss or any parameter is
    non-finite, or when the epoch's total parameter update norm exceeds
    ``max_update_ratio`` times the pre-epoch parameter norm.  The trainer
    reacts by restoring the pre-epoch weights and retrying once at
    ``lr_backoff_factor`` times the learning rate; a second divergence
    stops the fit cleanly (the last good weights stay in place).

    The sentinel is stateful only in its counters, which
    :class:`ModelGuard` drains into the cycle's :class:`GuardCounters`.
    """

    enabled: bool = True
    max_update_ratio: float = 2.0
    lr_backoff_factor: float = 0.5
    aborts: int = 0
    retries: int = 0
    failures: int = 0

    def diverged(
        self,
        loss: float,
        params_before: list[np.ndarray],
        params_after: list[np.ndarray],
    ) -> bool:
        """Whether the epoch that moved ``before`` to ``after`` diverged."""
        if not math.isfinite(loss):
            return True
        sq_update = 0.0
        sq_before = 0.0
        for before, after in zip(params_before, params_after):
            if not np.all(np.isfinite(after)):
                return True
            delta = after - before
            sq_update += float(np.sum(delta * delta))
            sq_before += float(np.sum(before * before))
        update_norm = math.sqrt(sq_update)
        base_norm = math.sqrt(sq_before)
        return update_norm > self.max_update_ratio * (base_norm + 1e-12)

    def counter_state(self) -> tuple[int, int, int]:
        """(aborts, retries, failures) — for delta bookkeeping."""
        return (self.aborts, self.retries, self.failures)


#: Context-local default sentinel.  A :class:`~contextvars.ContextVar`
#: rather than a module global so two interleaved deployments (asyncio
#: tasks, copied contexts) can never observe each other's guard state.
_sentinel_default: ContextVar[DivergenceSentinel | None] = ContextVar(
    "repro_divergence_sentinel", default=None
)


def get_divergence_sentinel() -> DivergenceSentinel | None:
    """The context-default sentinel (``None`` unless a guard installed one)."""
    return _sentinel_default.get()


def set_divergence_sentinel(
    sentinel: DivergenceSentinel | None,
) -> DivergenceSentinel | None:
    """Install ``sentinel`` as the context default; returns the previous one.

    Mirrors :func:`repro.telemetry.runtime.set_telemetry`: trainers are
    constructed deep inside the expert models, so the guard reaches them
    through a context-local default rather than threading a parameter
    through every model.
    """
    previous = _sentinel_default.get()
    _sentinel_default.set(sentinel)
    return previous


@contextmanager
def use_divergence_sentinel(
    sentinel: DivergenceSentinel | None,
) -> Iterator[DivergenceSentinel | None]:
    """Scoped :func:`set_divergence_sentinel` (restores the previous one)."""
    previous = set_divergence_sentinel(sentinel)
    try:
        yield sentinel
    finally:
        set_divergence_sentinel(previous)


# ---------------------------------------------------------------------------
# The guard orchestrator
# ---------------------------------------------------------------------------


class ModelGuard:
    """Orchestrates all four guard mechanisms for one deployment.

    Holds the per-expert snapshot rings, the golden holdout slice, the
    quarantine state machine and the drift detector's history.  The whole
    object is plain picklable state, so it rides inside deployment
    checkpoints and a resumed run keeps its guard memory.

    Construct via :meth:`build` (reserves the holdout from the golden
    training pool) or directly with a pre-built holdout dataset.
    """

    #: Shared prediction cache; set by the system so holdout scoring
    #: reuses (and primes) the same per-version votes as the committee.
    #: Class-level default so guards unpickled from pre-cache checkpoints
    #: keep working (uncached).
    cache: "PredictionCache | None" = None

    def __init__(
        self,
        policy: GuardPolicy,
        holdout: "DisasterDataset",
        n_experts: int,
    ) -> None:
        if n_experts <= 0:
            raise ValueError(f"n_experts must be positive, got {n_experts}")
        if policy.regression_gate and len(holdout) == 0:
            raise ValueError("regression gate requires a non-empty holdout")
        if policy.quarantine and len(holdout) == 0:
            raise ValueError("quarantine requires a non-empty holdout")
        self.policy = policy
        self.holdout = holdout
        self.n_experts = n_experts
        self._rings = [
            SnapshotRing(policy.snapshot_ring_size) for _ in range(n_experts)
        ]
        self._quarantined = np.zeros(n_experts, dtype=bool)
        self._accuracy_ewma = np.full(n_experts, np.nan)
        self._recovery_streak = np.zeros(n_experts, dtype=np.int64)
        self._disagreement_history: list[float] = []
        self._sentinel = DivergenceSentinel(
            max_update_ratio=policy.max_update_ratio,
            lr_backoff_factor=policy.lr_backoff_factor,
        )

    @classmethod
    def build(
        cls,
        policy: GuardPolicy,
        golden_pool: "DisasterDataset",
        n_experts: int,
        rng: np.random.Generator,
    ) -> "ModelGuard":
        """Reserve the holdout slice from the golden training pool.

        The slice is drawn with the guard's own named generator, so adding
        a guard to a deployment perturbs no other component's randomness.
        """
        if len(golden_pool) == 0:
            raise ValueError("cannot build a guard from an empty golden pool")
        take = min(policy.holdout_size, len(golden_pool))
        chosen = rng.choice(len(golden_pool), size=take, replace=False)
        return cls(policy, golden_pool.subset(np.sort(chosen)), n_experts)

    def rebind(self, n_experts: int) -> None:
        """Reset per-expert state for a differently-sized committee.

        Swapping a new committee into a live system (the custom-committee
        example does exactly that) invalidates all per-expert memory:
        snapshot rings, quarantine flags and accuracy EWMAs describe
        experts that no longer exist.  The holdout slice and the drift
        detector's history survive — the former is committee-independent,
        the latter tracks the label stream, not the experts.
        :meth:`CrowdLearnSystem.run_cycle` calls this automatically when it
        notices the committee size changed.
        """
        if n_experts <= 0:
            raise ValueError(f"n_experts must be positive, got {n_experts}")
        self.n_experts = n_experts
        self._rings = [
            SnapshotRing(self.policy.snapshot_ring_size)
            for _ in range(n_experts)
        ]
        self._quarantined = np.zeros(n_experts, dtype=bool)
        self._accuracy_ewma = np.full(n_experts, np.nan)
        self._recovery_streak = np.zeros(n_experts, dtype=np.int64)

    # -- quarantine ------------------------------------------------------

    def active_mask(self) -> np.ndarray | None:
        """Boolean mask of non-quarantined experts; ``None`` when all active.

        Returning ``None`` on the all-active path keeps the committee's
        arithmetic bit-identical to the unguarded loop.
        """
        if not self._quarantined.any():
            return None
        return ~self._quarantined

    @property
    def quarantined(self) -> np.ndarray:
        """Copy of the per-expert quarantine flags."""
        return self._quarantined.copy()

    def observe_committee(
        self, committee: "Committee", counters: GuardCounters
    ) -> None:
        """Score every member on the golden holdout and update quarantine.

        The query set is selected *because* the committee is uncertain on
        it, so query-set accuracy cannot separate a collapsed expert from a
        healthy one having a hard cycle; the golden holdout can.
        """
        if not self.policy.quarantine:
            return
        accuracies = np.array(
            [self.holdout_accuracy(expert) for expert in committee.experts]
        )
        self.observe_member_accuracy(accuracies, counters)

    def observe_member_accuracy(
        self, accuracies: np.ndarray, counters: GuardCounters
    ) -> None:
        """Feed per-member holdout accuracy into the quarantine machine.

        Quarantine triggers when a member's EWMA accuracy falls below
        ``quarantine_threshold``; re-admission requires the EWMA to hold at
        or above ``readmit_threshold`` for ``readmit_patience`` consecutive
        cycles.  At least one member always stays active — an uncertainty
        estimate from zero experts is no estimate at all.
        """
        if not self.policy.quarantine:
            return
        accuracies = np.asarray(accuracies, dtype=np.float64).ravel()
        if accuracies.shape[0] != self.n_experts:
            raise ValueError(
                f"need {self.n_experts} member accuracies, got {accuracies.shape[0]}"
            )
        alpha = self.policy.accuracy_ewma_alpha
        for m in range(self.n_experts):
            previous = self._accuracy_ewma[m]
            current = (
                accuracies[m]
                if np.isnan(previous)
                else alpha * accuracies[m] + (1.0 - alpha) * previous
            )
            self._accuracy_ewma[m] = current
            if not self._quarantined[m]:
                collapsed = current < self.policy.quarantine_threshold
                last_active = (~self._quarantined).sum() <= 1
                if collapsed and not last_active:
                    self._quarantined[m] = True
                    self._recovery_streak[m] = 0
                    counters.quarantines += 1
            else:
                if current >= self.policy.readmit_threshold:
                    self._recovery_streak[m] += 1
                    if self._recovery_streak[m] >= self.policy.readmit_patience:
                        self._quarantined[m] = False
                        self._recovery_streak[m] = 0
                        counters.readmissions += 1
                else:
                    self._recovery_streak[m] = 0

    # -- label drift -----------------------------------------------------

    def observe_labels(
        self,
        consensus_labels: np.ndarray,
        truthful_labels: np.ndarray,
        worker_reliability: float | None,
        counters: GuardCounters,
    ) -> bool:
        """Record one cycle's CQC-vs-committee disagreement; returns the flag.

        ``worker_reliability`` is the graded historical accuracy of the
        workers who answered this cycle (``None`` when nothing has been
        graded yet).  A flagged cycle's disagreement is *not* added to the
        history — poisoned cycles must not teach the detector that poison
        is normal.
        """
        if not self.policy.drift_detector:
            return False
        consensus_labels = np.asarray(consensus_labels).ravel()
        truthful_labels = np.asarray(truthful_labels).ravel()
        if consensus_labels.shape != truthful_labels.shape:
            raise ValueError("consensus and truthful labels must align")
        if consensus_labels.size == 0:
            return False
        disagreement = float(np.mean(consensus_labels != truthful_labels))
        trusted_workers = (
            worker_reliability is not None
            and worker_reliability >= self.policy.drift_reliability_floor
        )
        flagged = False
        history = self._disagreement_history
        if len(history) >= self.policy.drift_warmup and not trusted_workers:
            mean = float(np.mean(history))
            std = float(np.std(history))
            threshold = max(
                self.policy.drift_min_disagreement,
                mean + self.policy.drift_sigma * std,
            )
            flagged = disagreement > threshold
        if flagged:
            counters.drift_flags += 1
        else:
            history.append(disagreement)
        return flagged

    # -- regression-gated retraining -------------------------------------

    def holdout_accuracy(self, expert) -> float:
        """An expert's accuracy on the reserved golden holdout slice.

        With a shared cache attached the expert's holdout votes are
        computed at most once per model version — this method is called up
        to three times per expert per cycle (quarantine scoring, incumbent
        scoring, candidate scoring) and all but the candidate call see the
        incumbent's parameters.
        """
        cache = getattr(self, "cache", None)
        if cache is not None:
            predicted = np.argmax(cache.predict_proba(expert, self.holdout), axis=1)
        else:
            predicted = expert.predict(self.holdout)
        return float(np.mean(predicted == self.holdout.labels()))

    def snapshot_ring(self, index: int) -> SnapshotRing:
        """The snapshot ring of expert ``index`` (for inspection/tests)."""
        return self._rings[index]

    def guarded_retrain(
        self,
        mic: "MachineIntelligenceCalibrator",
        committee: "Committee",
        query_images: list["DisasterImage"],
        truthful_labels: np.ndarray,
        replay_pool: "DisasterDataset",
        rng: np.random.Generator,
        counters: GuardCounters,
    ) -> None:
        """MIC retraining wrapped in snapshot, sentinel and rollback.

        Each expert is pickled into its ring (with a SHA-256 digest) and
        scored on the holdout before the retrain; afterwards any candidate
        whose holdout accuracy regressed beyond the policy tolerance is
        replaced, bit-for-bit, by its verified snapshot.  The divergence
        sentinel is installed as the process default for the duration so
        trainers constructed deep inside the experts see it.
        """
        if len(committee.experts) != self.n_experts:
            raise ValueError(
                f"guard was built for {self.n_experts} experts, committee has "
                f"{len(committee.experts)}"
            )
        gate = self.policy.regression_gate
        incumbent_accuracy: list[float] = []
        if gate:
            for m, expert in enumerate(committee.experts):
                self._rings[m].push(expert, tag=f"{expert.name}[{m}]")
                incumbent_accuracy.append(self.holdout_accuracy(expert))
                counters.snapshots += 1
        sentinel = self._sentinel if self.policy.sentinel else None
        before = (
            sentinel.counter_state() if sentinel is not None else (0, 0, 0)
        )
        with use_divergence_sentinel(sentinel):
            mic.retrain_experts(
                committee, query_images, truthful_labels, replay_pool, rng
            )
        if sentinel is not None:
            aborts, retries, failures = sentinel.counter_state()
            counters.sentinel_aborts += aborts - before[0]
            counters.sentinel_retries += retries - before[1]
            counters.sentinel_failures += failures - before[2]
        if not gate:
            return
        cache = getattr(self, "cache", None)
        for m in range(self.n_experts):
            candidate = self.holdout_accuracy(committee.experts[m])
            if candidate < incumbent_accuracy[m] - self.policy.regression_tolerance:
                restored = self._rings[m].restore_latest()
                committee.experts[m] = restored
                counters.rollbacks += 1
                if cache is not None:
                    # The restored expert carries the snapshot's (older)
                    # version, so the incumbent's cached votes stay valid;
                    # the discarded candidate's entries must go, and the
                    # unpickled expert needs the shared store re-attached
                    # (pickling intentionally drops cache contents).
                    restored.attach_cache(cache)
                    cache.invalidate_expert(
                        restored.name, keep_version=restored.model_version
                    )
