"""The QBC committee (Definitions 4-8).

A committee is a set of DDA experts with dynamic weights.  It produces the
weighted committee vote of Eq. 2 and the committee entropy of Eq. 3, which
QSS uses to find the samples the AI is uncertain about and MIC uses to
derive final labels after reweighting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.data.dataset import DisasterDataset
from repro.metrics.information import batch_entropy
from repro.models.base import DDAModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import PredictionCache

__all__ = ["Committee"]


class Committee:
    """A weighted committee of DDA experts.

    Parameters
    ----------
    experts:
        The member models (the paper uses VGG16, BoVW and DDM).
    weights:
        Initial expert weights; uniform when omitted.  Weights are kept
        normalized to sum to 1.
    """

    #: Shared prediction/feature cache; ``None`` computes votes directly.
    #: A class-level default so committees unpickled from pre-cache
    #: checkpoints keep working (uncached).
    cache: "PredictionCache | None" = None

    def __init__(
        self, experts: list[DDAModel], weights: np.ndarray | None = None
    ) -> None:
        if not experts:
            raise ValueError("committee requires at least one expert")
        self.experts = list(experts)
        if weights is None:
            weights = np.full(len(experts), 1.0 / len(experts))
        self.set_weights(weights)

    @property
    def n_experts(self) -> int:
        return len(self.experts)

    @property
    def weights(self) -> np.ndarray:
        """Current normalized expert weights (copy)."""
        return self._weights.copy()

    def set_weights(self, weights: np.ndarray) -> None:
        """Replace the expert weights (renormalized to sum to 1)."""
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if weights.shape[0] != len(self.experts):
            raise ValueError(
                f"need {len(self.experts)} weights, got {weights.shape[0]}"
            )
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ValueError("weights must be non-negative with positive sum")
        self._weights = weights / weights.sum()

    def attach_cache(self, cache: "PredictionCache | None") -> None:
        """Route expert votes through a shared prediction cache.

        Propagates to every member so experts with cacheable derived state
        (e.g. BoVW features) host it in the same bounded store.  ``None``
        detaches the cache.
        """
        self.cache = cache
        for expert in self.experts:
            expert.attach_cache(cache)

    def set_fused(self, fused: bool) -> "Committee":
        """Toggle fused conv kernels on every expert that supports them.

        Third-party experts without the hook are skipped; built-in CNN
        experts switch execution strategy bit-identically (no version bump
        needed — predictions are unchanged).
        """
        for expert in self.experts:
            set_fused = getattr(expert, "set_fused", None)
            if callable(set_fused):
                set_fused(fused)
        return self

    def _after_update(self, expert: DDAModel, version_before: int) -> None:
        """Ensure a retrained expert's version moved and evict stale votes.

        Built-in experts bump their own version inside ``fit``/``retrain``;
        third-party experts may not, so the committee enforces the bump.
        Either way the expert's now-stale cached predictions are dropped
        eagerly rather than waiting for LRU pressure.
        """
        if expert.model_version == version_before:
            expert.bump_version()
        if self.cache is not None:
            self.cache.invalidate_expert(
                expert.name, keep_version=expert.model_version
            )

    def fit(self, dataset: DisasterDataset, rng: np.random.Generator) -> "Committee":
        """Train every expert on the same labeled dataset."""
        for expert in self.experts:
            before = expert.model_version
            expert.fit(dataset, rng)
            self._after_update(expert, before)
        return self

    def expert_votes(self, dataset: DisasterDataset) -> list[np.ndarray]:
        """Each expert's vote V(AI_m) — one ``(n, k)`` array per expert.

        With a cache attached, each expert's votes for this pool are
        computed once per model version and served from the cache for
        every later call site (QSS entropy, MIC reweighting, guard
        scoring, final labels).
        """
        if self.cache is not None:
            cache = self.cache
            return [cache.predict_proba(expert, dataset) for expert in self.experts]
        return [expert.predict_proba(dataset) for expert in self.experts]

    def _effective_weights(self, mask: np.ndarray | None) -> np.ndarray:
        """The vote weights after applying an optional active-member mask.

        ``mask=None`` returns the stored weights untouched (the unguarded
        path stays bit-identical).  A boolean mask zeroes excluded members
        — e.g. experts quarantined by :class:`~repro.core.guards.ModelGuard`
        — and renormalizes the survivors; if every *weighted* member is
        masked out, the active members share weight uniformly.
        """
        if mask is None:
            return self._weights
        mask = np.asarray(mask, dtype=bool).ravel()
        if mask.shape[0] != len(self.experts):
            raise ValueError(
                f"mask must cover {len(self.experts)} experts, got {mask.shape[0]}"
            )
        if not mask.any():
            raise ValueError("mask must keep at least one expert active")
        masked = np.where(mask, self._weights, 0.0)
        total = masked.sum()
        if total <= 0:
            masked = mask.astype(np.float64)
            total = masked.sum()
        return masked / total

    def committee_vote(
        self,
        dataset: DisasterDataset,
        votes: list[np.ndarray] | None = None,
        mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Weighted, normalized committee vote ρ (Eq. 2), shape ``(n, k)``.

        Pass precomputed ``votes`` to avoid re-running the experts, and an
        optional boolean ``mask`` to exclude (quarantined) members from the
        vote without disturbing their stored weights.
        """
        if votes is None:
            votes = self.expert_votes(dataset)
        if len(votes) != len(self.experts):
            raise ValueError("one vote array per expert is required")
        weights = self._effective_weights(mask)
        stacked = np.einsum("m,mnk->nk", weights, np.stack(votes))
        totals = stacked.sum(axis=1, keepdims=True)
        zero_rows = (totals <= 0.0).ravel()
        if zero_rows.any():
            # A row can end up with zero mass when every active expert
            # assigns (numerically) zero probability everywhere — fall back
            # to a uniform vote for those rows instead of dividing to NaN.
            k = stacked.shape[1]
            stacked = np.where(zero_rows[:, None], 1.0 / k, stacked)
            totals = np.where(zero_rows[:, None], 1.0, totals)
        return stacked / totals

    def committee_entropy(
        self,
        dataset: DisasterDataset,
        votes: list[np.ndarray] | None = None,
        mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Committee entropy H per sample (Eq. 3), shape ``(n,)``."""
        rho = self.committee_vote(dataset, votes, mask=mask)
        return batch_entropy(rho)

    def predict(
        self,
        dataset: DisasterDataset,
        votes: list[np.ndarray] | None = None,
        mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Final labels: argmax of the committee vote."""
        return np.argmax(self.committee_vote(dataset, votes, mask=mask), axis=1)

    def retrain(
        self,
        dataset: DisasterDataset,
        labels: np.ndarray,
        rng: np.random.Generator,
        epochs: int | None = None,
    ) -> "Committee":
        """Incrementally retrain every expert on crowd-labeled data.

        ``epochs`` overrides each expert's per-retrain epoch schedule
        (warm-start fine-tuning passes 1-2 here).  It is only forwarded
        when set, so third-party experts whose ``retrain`` lacks the
        keyword keep working on the default path.
        """
        for expert in self.experts:
            before = expert.model_version
            if epochs is None:
                expert.retrain(dataset, labels, rng)
            else:
                expert.retrain(dataset, labels, rng, epochs=epochs)
            self._after_update(expert, before)
        return self
