"""Machine Intelligence Calibration (§IV-D).

MIC closes the loop: given CQC's truthful labels for the query set it

1. **reweights the committee** — each expert's loss is the bounded symmetric
   KL divergence between its vote and the truthful distribution (Eq. 5),
   driving a classical exponential-weights update [50];
2. **retrains the experts** — the crowd labels become training data for the
   next sensing cycle (the fix for insufficient-training-data failures);
3. **offloads to the crowd** — the query set's final labels are replaced by
   the truthful labels outright (the fix for innate AI failures).
"""

from __future__ import annotations

import numpy as np

from repro.core.committee import Committee
from repro.data.dataset import DisasterDataset, DisasterImage
from repro.metrics.information import bounded_divergence

__all__ = ["MachineIntelligenceCalibrator", "ReplayBuffer"]


class ReplayBuffer:
    """FIFO buffer of recent crowd-labeled images for warm-start retraining.

    Holds the last ``capacity`` (image, truthful label) pairs that MIC
    retrained on; warm-start fine-tuning mixes a small sample of them into
    each new crowd batch so incremental updates do not forget the recent
    past.  Adding is deterministic bookkeeping (no RNG); only
    :meth:`sample` draws.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._images: list[DisasterImage] = []
        self._labels: list[int] = []

    def __len__(self) -> int:
        return len(self._images)

    def add(self, images: list[DisasterImage], labels: np.ndarray) -> None:
        """Append a crowd-labeled batch, evicting the oldest entries."""
        labels = np.asarray(labels, dtype=np.int64).ravel()
        if labels.shape[0] != len(images):
            raise ValueError("one label per image is required")
        self._images.extend(images)
        self._labels.extend(int(label) for label in labels)
        excess = len(self._images) - self.capacity
        if excess > 0:
            del self._images[:excess]
            del self._labels[:excess]

    def sample(
        self, k: int, rng: np.random.Generator
    ) -> tuple[list[DisasterImage], list[int]]:
        """Up to ``k`` distinct entries, uniformly without replacement."""
        take = min(k, len(self._images))
        if take <= 0:
            return [], []
        chosen = rng.choice(len(self._images), size=take, replace=False)
        images = [self._images[int(i)] for i in chosen]
        labels = [self._labels[int(i)] for i in chosen]
        return images, labels


class MachineIntelligenceCalibrator:
    """Implements MIC's three calibration strategies.

    Parameters
    ----------
    eta:
        Learning rate of the exponential-weights update.
    replay_size:
        Number of original training images mixed into each retraining batch
        to stabilize fine-tuning (experience replay).
    retrain:
        Whether the model-retraining strategy is enabled (ablation switch).
    reweight:
        Whether the expert-weight update is enabled (ablation switch).
    offload:
        Whether crowd offloading is enabled (ablation switch).
    warm_start:
        Enable warm-start incremental retraining: instead of the full
        fine-tune over ``new crowd batch + golden replay`` every cycle,
        experts reuse their incumbent weights and take a short
        (``warm_epochs``) pass over ``new crowd batch + a small sample of
        the crowd ReplayBuffer``.  Every ``full_refit_every``-th retrain
        (and always the first) falls back to the full cold path as an
        escape hatch against drift.  Both paths flow through the same
        ``Committee.retrain`` — guard gating, version bumps and cache
        invalidation are identical.
    replay_buffer:
        Capacity of the crowd :class:`ReplayBuffer` (warm-start only).
    warm_replay_sample:
        Replay entries mixed into each warm-start batch.
    full_refit_every:
        Cold full-refit period, counted in retrains; ``1`` means every
        retrain is cold (bit-identical to ``warm_start=False``), ``0``
        disables periodic refits entirely (first retrain is still cold).
    warm_epochs:
        Fine-tuning epochs per warm-start retrain (overrides each expert's
        ``retrain_epochs`` on warm cycles).
    """

    def __init__(
        self,
        eta: float = 2.0,
        replay_size: int = 30,
        retrain: bool = True,
        reweight: bool = True,
        offload: bool = True,
        warm_start: bool = False,
        replay_buffer: int = 64,
        warm_replay_sample: int = 4,
        full_refit_every: int = 20,
        warm_epochs: int = 1,
    ) -> None:
        if eta < 0:
            raise ValueError(f"eta must be >= 0, got {eta}")
        if replay_size < 0:
            raise ValueError(f"replay_size must be >= 0, got {replay_size}")
        if warm_replay_sample < 0:
            raise ValueError(
                f"warm_replay_sample must be >= 0, got {warm_replay_sample}"
            )
        if full_refit_every < 0:
            raise ValueError(
                f"full_refit_every must be >= 0, got {full_refit_every}"
            )
        if warm_epochs <= 0:
            raise ValueError(f"warm_epochs must be positive, got {warm_epochs}")
        self.eta = eta
        self.replay_size = replay_size
        self.retrain = retrain
        self.reweight = reweight
        self.offload = offload
        self.warm_start = warm_start
        self.warm_replay_sample = warm_replay_sample
        self.full_refit_every = full_refit_every
        self.warm_epochs = warm_epochs
        self.replay = ReplayBuffer(replay_buffer)
        #: Completed retrain calls (warm or cold) — drives the refit period.
        self.retrain_count = 0
        self.warm_retrains = 0
        self.full_refits = 0

    def expert_losses(
        self,
        expert_votes: list[np.ndarray],
        truth_distributions: np.ndarray,
    ) -> np.ndarray:
        """Per-expert mean bounded divergence from the truthful labels (Eq. 5).

        ``expert_votes[m]`` holds expert m's distributions on the *query set*
        (shape ``(Y, k)``); ``truth_distributions`` holds CQC's distributions
        aligned with them.
        """
        truth_distributions = np.asarray(truth_distributions, dtype=np.float64)
        losses = []
        for votes in expert_votes:
            votes = np.asarray(votes, dtype=np.float64)
            if votes.shape != truth_distributions.shape:
                raise ValueError(
                    "expert votes and truth distributions must align: "
                    f"{votes.shape} vs {truth_distributions.shape}"
                )
            per_query = [
                bounded_divergence(vote, truth)
                for vote, truth in zip(votes, truth_distributions)
            ]
            losses.append(float(np.mean(per_query)))
        return np.array(losses)

    def update_weights(
        self,
        committee: Committee,
        expert_votes: list[np.ndarray],
        truth_distributions: np.ndarray,
        active_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Exponential-weights update of the committee; returns new weights.

        ``active_mask`` (optional, boolean per expert) freezes excluded —
        quarantined — members: their weight is neither rewarded nor
        punished, so a broken expert's garbage losses cannot distort the
        committee's weight distribution while it sits out.  ``None`` (the
        default) updates every member exactly as before.
        """
        if not self.reweight:
            return committee.weights
        losses = self.expert_losses(expert_votes, truth_distributions)
        factors = np.exp(-self.eta * losses)
        if active_mask is not None:
            active_mask = np.asarray(active_mask, dtype=bool).ravel()
            if active_mask.shape[0] != losses.shape[0]:
                raise ValueError(
                    f"active_mask must cover {losses.shape[0]} experts, "
                    f"got {active_mask.shape[0]}"
                )
            factors = np.where(active_mask, factors, 1.0)
        new_weights = committee.weights * factors
        committee.set_weights(new_weights)
        return committee.weights

    def _warm_cycle(self) -> bool:
        """Whether the *next* retrain may take the warm-start path."""
        if not self.warm_start or len(self.replay) == 0:
            return False
        if self.full_refit_every <= 0:
            return True
        return self.retrain_count % self.full_refit_every != 0

    def retrain_experts(
        self,
        committee: Committee,
        query_images: list[DisasterImage],
        truthful_labels: np.ndarray,
        replay_pool: DisasterDataset,
        rng: np.random.Generator,
    ) -> None:
        """Fine-tune every expert on crowd-labeled queries + a replay sample.

        The cold (default) path fine-tunes for each expert's full
        ``retrain_epochs`` on the crowd batch plus a ``replay_size`` sample
        of the original golden training set, which keeps a handful of crowd
        labels from dragging the experts off distribution.

        With ``warm_start`` enabled, non-refit cycles instead take one
        short pass (``warm_epochs``) over the crowd batch plus a small
        sample of *recent crowd batches* from the :class:`ReplayBuffer` —
        the experts' incumbent weights already encode the golden set, so
        the expensive golden replay is reserved for the periodic
        ``full_refit_every`` cold refits.
        """
        if not self.retrain or not query_images:
            return
        from repro.telemetry.runtime import get_telemetry

        tel = get_telemetry()
        truthful_labels = np.asarray(truthful_labels, dtype=np.int64).ravel()
        if truthful_labels.shape[0] != len(query_images):
            raise ValueError("one truthful label per query image is required")
        if self._warm_cycle():
            sampled_images, sampled_labels = self.replay.sample(
                self.warm_replay_sample, rng
            )
            images = list(query_images) + sampled_images
            labels = list(truthful_labels) + sampled_labels
            with tel.span("cycle.mic.retrain.fit", warm=1):
                committee.retrain(
                    DisasterDataset(images),
                    np.array(labels, dtype=np.int64),
                    rng,
                    epochs=self.warm_epochs,
                )
            self.warm_retrains += 1
        else:
            images = list(query_images)
            labels = list(truthful_labels)
            if self.replay_size > 0 and len(replay_pool) > 0:
                take = min(self.replay_size, len(replay_pool))
                chosen = rng.choice(len(replay_pool), size=take, replace=False)
                for index in chosen:
                    replay_image = replay_pool[int(index)]
                    images.append(replay_image)
                    labels.append(int(replay_image.true_label))
            with tel.span("cycle.mic.retrain.fit", warm=0):
                committee.retrain(
                    DisasterDataset(images), np.array(labels, dtype=np.int64), rng
                )
            self.full_refits += 1
        if self.warm_start:
            self.replay.add(list(query_images), truthful_labels)
        self.retrain_count += 1

    def retrain_stats(self) -> dict[str, int]:
        """Warm/cold retrain counters (reported by the benchmark)."""
        return {
            "retrains": self.retrain_count,
            "warm_retrains": self.warm_retrains,
            "full_refits": self.full_refits,
            "replay_buffered": len(self.replay),
        }

    def offload_labels(
        self,
        committee_labels: np.ndarray,
        query_indices: np.ndarray,
        truthful_labels: np.ndarray,
    ) -> np.ndarray:
        """Crowd offloading: overwrite the query set's labels with the crowd's."""
        committee_labels = np.asarray(committee_labels, dtype=np.int64).copy()
        if not self.offload:
            return committee_labels
        query_indices = np.asarray(query_indices, dtype=np.int64)
        truthful_labels = np.asarray(truthful_labels, dtype=np.int64)
        if query_indices.shape != truthful_labels.shape:
            raise ValueError("query indices and truthful labels must align")
        committee_labels[query_indices] = truthful_labels
        return committee_labels

    def offload_distributions(
        self,
        committee_vote: np.ndarray,
        query_indices: np.ndarray,
        truth_distributions: np.ndarray,
    ) -> np.ndarray:
        """Same as :meth:`offload_labels` but on probabilistic scores (ROC)."""
        committee_vote = np.asarray(committee_vote, dtype=np.float64).copy()
        if not self.offload:
            return committee_vote
        query_indices = np.asarray(query_indices, dtype=np.int64)
        truth_distributions = np.asarray(truth_distributions, dtype=np.float64)
        if truth_distributions.shape[0] != query_indices.shape[0]:
            raise ValueError("query indices and truth distributions must align")
        committee_vote[query_indices] = truth_distributions
        return committee_vote
