"""Machine Intelligence Calibration (§IV-D).

MIC closes the loop: given CQC's truthful labels for the query set it

1. **reweights the committee** — each expert's loss is the bounded symmetric
   KL divergence between its vote and the truthful distribution (Eq. 5),
   driving a classical exponential-weights update [50];
2. **retrains the experts** — the crowd labels become training data for the
   next sensing cycle (the fix for insufficient-training-data failures);
3. **offloads to the crowd** — the query set's final labels are replaced by
   the truthful labels outright (the fix for innate AI failures).
"""

from __future__ import annotations

import numpy as np

from repro.core.committee import Committee
from repro.data.dataset import DisasterDataset, DisasterImage
from repro.metrics.information import bounded_divergence

__all__ = ["MachineIntelligenceCalibrator"]


class MachineIntelligenceCalibrator:
    """Implements MIC's three calibration strategies.

    Parameters
    ----------
    eta:
        Learning rate of the exponential-weights update.
    replay_size:
        Number of original training images mixed into each retraining batch
        to stabilize fine-tuning (experience replay).
    retrain:
        Whether the model-retraining strategy is enabled (ablation switch).
    reweight:
        Whether the expert-weight update is enabled (ablation switch).
    offload:
        Whether crowd offloading is enabled (ablation switch).
    """

    def __init__(
        self,
        eta: float = 2.0,
        replay_size: int = 30,
        retrain: bool = True,
        reweight: bool = True,
        offload: bool = True,
    ) -> None:
        if eta < 0:
            raise ValueError(f"eta must be >= 0, got {eta}")
        if replay_size < 0:
            raise ValueError(f"replay_size must be >= 0, got {replay_size}")
        self.eta = eta
        self.replay_size = replay_size
        self.retrain = retrain
        self.reweight = reweight
        self.offload = offload

    def expert_losses(
        self,
        expert_votes: list[np.ndarray],
        truth_distributions: np.ndarray,
    ) -> np.ndarray:
        """Per-expert mean bounded divergence from the truthful labels (Eq. 5).

        ``expert_votes[m]`` holds expert m's distributions on the *query set*
        (shape ``(Y, k)``); ``truth_distributions`` holds CQC's distributions
        aligned with them.
        """
        truth_distributions = np.asarray(truth_distributions, dtype=np.float64)
        losses = []
        for votes in expert_votes:
            votes = np.asarray(votes, dtype=np.float64)
            if votes.shape != truth_distributions.shape:
                raise ValueError(
                    "expert votes and truth distributions must align: "
                    f"{votes.shape} vs {truth_distributions.shape}"
                )
            per_query = [
                bounded_divergence(vote, truth)
                for vote, truth in zip(votes, truth_distributions)
            ]
            losses.append(float(np.mean(per_query)))
        return np.array(losses)

    def update_weights(
        self,
        committee: Committee,
        expert_votes: list[np.ndarray],
        truth_distributions: np.ndarray,
        active_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Exponential-weights update of the committee; returns new weights.

        ``active_mask`` (optional, boolean per expert) freezes excluded —
        quarantined — members: their weight is neither rewarded nor
        punished, so a broken expert's garbage losses cannot distort the
        committee's weight distribution while it sits out.  ``None`` (the
        default) updates every member exactly as before.
        """
        if not self.reweight:
            return committee.weights
        losses = self.expert_losses(expert_votes, truth_distributions)
        factors = np.exp(-self.eta * losses)
        if active_mask is not None:
            active_mask = np.asarray(active_mask, dtype=bool).ravel()
            if active_mask.shape[0] != losses.shape[0]:
                raise ValueError(
                    f"active_mask must cover {losses.shape[0]} experts, "
                    f"got {active_mask.shape[0]}"
                )
            factors = np.where(active_mask, factors, 1.0)
        new_weights = committee.weights * factors
        committee.set_weights(new_weights)
        return committee.weights

    def retrain_experts(
        self,
        committee: Committee,
        query_images: list[DisasterImage],
        truthful_labels: np.ndarray,
        replay_pool: DisasterDataset,
        rng: np.random.Generator,
    ) -> None:
        """Fine-tune every expert on crowd-labeled queries + a replay sample.

        The replay sample (drawn from the original golden training set) keeps
        a handful of crowd labels from dragging the experts off distribution.
        """
        if not self.retrain or not query_images:
            return
        truthful_labels = np.asarray(truthful_labels, dtype=np.int64).ravel()
        if truthful_labels.shape[0] != len(query_images):
            raise ValueError("one truthful label per query image is required")
        images = list(query_images)
        labels = list(truthful_labels)
        if self.replay_size > 0 and len(replay_pool) > 0:
            take = min(self.replay_size, len(replay_pool))
            chosen = rng.choice(len(replay_pool), size=take, replace=False)
            for index in chosen:
                replay_image = replay_pool[int(index)]
                images.append(replay_image)
                labels.append(int(replay_image.true_label))
        committee.retrain(
            DisasterDataset(images), np.array(labels, dtype=np.int64), rng
        )

    def offload_labels(
        self,
        committee_labels: np.ndarray,
        query_indices: np.ndarray,
        truthful_labels: np.ndarray,
    ) -> np.ndarray:
        """Crowd offloading: overwrite the query set's labels with the crowd's."""
        committee_labels = np.asarray(committee_labels, dtype=np.int64).copy()
        if not self.offload:
            return committee_labels
        query_indices = np.asarray(query_indices, dtype=np.int64)
        truthful_labels = np.asarray(truthful_labels, dtype=np.int64)
        if query_indices.shape != truthful_labels.shape:
            raise ValueError("query indices and truthful labels must align")
        committee_labels[query_indices] = truthful_labels
        return committee_labels

    def offload_distributions(
        self,
        committee_vote: np.ndarray,
        query_indices: np.ndarray,
        truth_distributions: np.ndarray,
    ) -> np.ndarray:
        """Same as :meth:`offload_labels` but on probabilistic scores (ROC)."""
        committee_vote = np.asarray(committee_vote, dtype=np.float64).copy()
        if not self.offload:
            return committee_vote
        query_indices = np.asarray(query_indices, dtype=np.int64)
        truth_distributions = np.asarray(truth_distributions, dtype=np.float64)
        if truth_distributions.shape[0] != query_indices.shape[0]:
            raise ValueError("query indices and truth distributions must align")
        committee_vote[query_indices] = truth_distributions
        return committee_vote
