"""Query Set Selection (Algorithm 1).

QSS picks the data samples to send to the crowd.  The base strategy is
committee-entropy ranking (query the samples the committee is most uncertain
about); the ε-greedy twist occasionally queries a *random* remaining sample,
which is what catches the confident-but-wrong failure cases (e.g. all
experts calling a fake image "severe" with high confidence).

:class:`AdaptiveQuerySetSelector` extends this with the value-difference
based exploration (VDBE) scheme of Tokic & Palm — the ε-greedy/softmax
control technique the paper cites for its exploration strategy [37]: ε is
no longer a constant but adapts to how much the crowd's feedback *surprises*
the committee.  Large divergence between committee votes and truthful labels
means the committee is confidently wrong somewhere, so exploration should
rise; feedback that matches the committee means entropy ranking is already
finding everything, so exploration decays.
"""

from __future__ import annotations

import numpy as np

__all__ = ["QuerySetSelector", "AdaptiveQuerySetSelector"]


class QuerySetSelector:
    """ε-greedy committee-entropy query selection.

    Parameters
    ----------
    epsilon:
        Probability of exploring (picking a random remaining sample) at
        each of the Y selection slots.
    """

    def __init__(self, epsilon: float = 0.2) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.epsilon = epsilon

    def select(
        self,
        committee_entropy: np.ndarray,
        query_size: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Select ``query_size`` sample indices to query the crowd about.

        Follows Algorithm 1: sort samples by committee entropy (high to low);
        at each slot take the highest-entropy remaining sample with
        probability 1-ε, or a uniformly random remaining sample with
        probability ε.

        Returns the selected indices (into the entropy array), in selection
        order.
        """
        committee_entropy = np.asarray(committee_entropy, dtype=np.float64).ravel()
        n = committee_entropy.shape[0]
        if not 0 <= query_size <= n:
            raise ValueError(
                f"query_size must be in [0, {n}], got {query_size}"
            )
        if query_size == 0:
            return np.empty(0, dtype=np.int64)
        # s_list: indices sorted by entropy, highest first.  Selection uses
        # an alive-mask over the sorted ranks instead of popping from a
        # Python list (which is O(n) per slot): the greedy path advances a
        # head pointer, the exploration path indexes the k-th alive rank.
        # The RNG draw sequence is exactly the historical one — one
        # ``random()`` per slot, plus one ``integers(n_alive)`` only when
        # exploring with more than one sample left — so selections are
        # bit-identical to the list-based implementation.
        order = np.argsort(-committee_entropy, kind="stable")
        alive = np.ones(n, dtype=bool)
        head = 0
        n_alive = n
        selected = np.empty(query_size, dtype=np.int64)
        for slot in range(query_size):
            if rng.random() < self.epsilon and n_alive > 1:
                rank = int(np.flatnonzero(alive)[rng.integers(n_alive)])
            else:
                while not alive[head]:
                    head += 1
                rank = head
            alive[rank] = False
            n_alive -= 1
            selected[slot] = order[rank]
        return selected


class AdaptiveQuerySetSelector(QuerySetSelector):
    """ε-greedy QSS with value-difference based exploration (VDBE) [37].

    After each sensing cycle the caller feeds back a *surprise* signal — the
    mean bounded divergence between the committee's votes and CQC's truthful
    labels on the query set (exactly the quantity MIC already computes for
    Eq. 5).  ε then follows Tokic & Palm's update:

        ε ← δ · f(surprise) + (1 − δ) · ε,
        f(surprise) = (1 − exp(−surprise / σ)) / (1 + exp(−surprise / σ))

    so sustained surprise drives ε toward 1 (the committee cannot be trusted
    to know what it doesn't know) and sustained agreement decays ε toward 0
    (pure entropy ranking suffices).

    Parameters
    ----------
    initial_epsilon:
        Starting exploration rate.
    delta:
        Update step (Tokic's δ, typically 1/number-of-actions; here a small
        constant since the "action space" is the whole image pool).
    sigma:
        Inverse sensitivity of the Boltzmann-like squashing: smaller sigma
        makes small surprises push harder toward exploration.
    epsilon_bounds:
        Hard clamp on ε, keeping some exploration forever and bounding cost.
    """

    def __init__(
        self,
        initial_epsilon: float = 0.2,
        delta: float = 0.3,
        sigma: float = 0.2,
        epsilon_bounds: tuple[float, float] = (0.05, 0.8),
    ) -> None:
        super().__init__(epsilon=initial_epsilon)
        if not 0.0 < delta <= 1.0:
            raise ValueError(f"delta must be in (0, 1], got {delta}")
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        low, high = epsilon_bounds
        if not 0.0 <= low < high <= 1.0:
            raise ValueError(f"invalid epsilon bounds: {epsilon_bounds}")
        self.delta = delta
        self.sigma = sigma
        self.epsilon_bounds = (float(low), float(high))

    def observe_surprise(self, surprise: float) -> float:
        """Update ε from one cycle's feedback; returns the new ε.

        ``surprise`` is a non-negative divergence (e.g. the mean bounded
        symmetric KL between committee votes and truthful labels, already
        in [0, 1) when it comes from MIC's loss).
        """
        if surprise < 0:
            raise ValueError(f"surprise must be >= 0, got {surprise}")
        exp_term = float(np.exp(-surprise / self.sigma))
        target = (1.0 - exp_term) / (1.0 + exp_term)
        epsilon = self.delta * target + (1.0 - self.delta) * self.epsilon
        low, high = self.epsilon_bounds
        self.epsilon = float(np.clip(epsilon, low, high))
        return self.epsilon
