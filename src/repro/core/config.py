"""Configuration for the CrowdLearn system and its experiments.

Defaults mirror the paper's deployment: 40 ten-minute sensing cycles (10 per
temporal context), 10 images per cycle, 5 queried to the crowd, 5 workers
per query, the pilot's 7 incentive levels, and a total crowd budget swept
between 2 and 40 USD (default 20 USD — 10 cents per query on average, the
middle of the paper's sweep).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crowd.delay import INCENTIVE_LEVELS
from repro.utils.clock import SECONDS_PER_CYCLE

__all__ = ["CrowdLearnConfig"]


@dataclass(frozen=True)
class CrowdLearnConfig:
    """All knobs of a CrowdLearn deployment in one immutable bundle."""

    # Stream structure (paper §V-B).
    n_cycles: int = 40
    images_per_cycle: int = 10
    cycles_per_context: int = 10

    # Query selection.
    query_fraction: float = 0.5  # 5 of 10 images per cycle
    qss_epsilon: float = 0.2
    # VDBE adaptive exploration (Tokic & Palm, the paper's ref [37]): when
    # set, ε adapts to how much the crowd's feedback surprises the committee
    # instead of staying fixed at qss_epsilon.
    qss_adaptive: bool = False

    # Crowd platform.
    workers_per_query: int = 5
    n_workers: int = 120
    incentive_levels: tuple[float, ...] = INCENTIVE_LEVELS
    budget_usd: float = 20.0

    # MIC.
    mic_eta: float = 2.0
    mic_replay_size: int = 30
    mic_retrain: bool = True
    mic_reweight: bool = True
    mic_offload: bool = True
    # Warm-start incremental retraining (see repro.core.mic): non-refit
    # cycles fine-tune incumbent weights for mic_warm_epochs on the new
    # crowd batch + a small crowd ReplayBuffer sample instead of the full
    # golden-replay refit; every mic_full_refit_every-th retrain (and the
    # first) still takes the cold path.  mic_full_refit_every=1 makes every
    # retrain cold (bit-identical to mic_warm_start=False); 0 disables the
    # periodic refit.
    mic_warm_start: bool = False
    mic_replay_buffer: int = 64
    mic_warm_replay_sample: int = 4
    # 20 keeps paper-scale macro-F1 at cold parity while clearing the
    # >= 5x retrain-fit speedup budget (repro bench --full --check).
    mic_full_refit_every: int = 20
    mic_warm_epochs: int = 1

    # Fused conv kernels (see repro.nn.layers.fuse_layers): run each CNN
    # expert's conv+relu(+pool) chains as single-pass fused ops with
    # preallocated im2col scratch.  Bit-identical to the layer-by-layer
    # path — a pure execution-strategy switch.
    fused_kernels: bool = False

    # CQC.
    cqc_use_questionnaire: bool = True

    # Learning-loop guardrails (see repro.core.guards).  The default policy
    # is conservative enough that a healthy run never triggers; disabling
    # restores the exact pre-guardrails loop.
    guards_enabled: bool = True
    guard_holdout_size: int = 24
    guard_regression_tolerance: float = 0.25

    # Shared prediction/feature cache (see repro.core.cache): each expert's
    # votes are computed once per (model version, image pool) and reused by
    # every call site in the cycle; disabling restores direct computation
    # (results are bit-identical either way).
    cache_enabled: bool = True
    cache_max_pools: int = 256
    cache_max_features: int = 8192

    # Virtual-time scheduler (see repro.crowd.scheduler).  Off by default:
    # the loop stays synchronous and byte-identical to the idealized
    # instant-response reproduction.  Enabled, each sensing cycle becomes a
    # real deadline — retry backoff consumes cycle time, responses slower
    # than the remaining cycle miss it, and (under the "harvest" policy)
    # arrive in a later cycle as straggler labels for CQC/MIC.
    scheduler_enabled: bool = False
    cycle_seconds: float = SECONDS_PER_CYCLE
    straggler_policy: str = "harvest"  # "harvest" | "drop"
    straggler_max_cycles: int = 3  # harvest window, in sensing cycles

    # Pilot study.
    pilot_queries_per_cell: int = 20

    def __post_init__(self) -> None:
        if self.n_cycles <= 0 or self.images_per_cycle <= 0:
            raise ValueError("cycle structure sizes must be positive")
        if self.cycles_per_context <= 0:
            raise ValueError("cycles_per_context must be positive")
        if not 0.0 <= self.query_fraction <= 1.0:
            raise ValueError(
                f"query_fraction must be in [0, 1], got {self.query_fraction}"
            )
        if not 0.0 <= self.qss_epsilon <= 1.0:
            raise ValueError(
                f"qss_epsilon must be in [0, 1], got {self.qss_epsilon}"
            )
        if self.workers_per_query <= 0 or self.n_workers <= 0:
            raise ValueError("worker counts must be positive")
        if not self.incentive_levels or any(x <= 0 for x in self.incentive_levels):
            raise ValueError("incentive levels must be positive and non-empty")
        if self.budget_usd <= 0:
            raise ValueError(f"budget must be positive, got {self.budget_usd}")
        if self.mic_replay_buffer <= 0:
            raise ValueError(
                f"mic_replay_buffer must be positive, got {self.mic_replay_buffer}"
            )
        if self.mic_warm_replay_sample < 0:
            raise ValueError(
                "mic_warm_replay_sample must be >= 0, "
                f"got {self.mic_warm_replay_sample}"
            )
        if self.mic_full_refit_every < 0:
            raise ValueError(
                "mic_full_refit_every must be >= 0, "
                f"got {self.mic_full_refit_every}"
            )
        if self.mic_warm_epochs <= 0:
            raise ValueError(
                f"mic_warm_epochs must be positive, got {self.mic_warm_epochs}"
            )
        if self.guard_holdout_size <= 0:
            raise ValueError(
                f"guard_holdout_size must be positive, got {self.guard_holdout_size}"
            )
        if self.guard_regression_tolerance < 0:
            raise ValueError(
                "guard_regression_tolerance must be >= 0, "
                f"got {self.guard_regression_tolerance}"
            )
        if self.cache_max_pools <= 0 or self.cache_max_features <= 0:
            raise ValueError(
                "cache capacities must be positive, got "
                f"{self.cache_max_pools} pools / {self.cache_max_features} features"
            )
        if self.cycle_seconds <= 0:
            raise ValueError(
                f"cycle_seconds must be positive, got {self.cycle_seconds}"
            )
        if self.straggler_policy not in ("harvest", "drop"):
            raise ValueError(
                "straggler_policy must be 'harvest' or 'drop', "
                f"got {self.straggler_policy!r}"
            )
        if self.straggler_max_cycles <= 0:
            raise ValueError(
                f"straggler_max_cycles must be positive, got {self.straggler_max_cycles}"
            )

    @property
    def queries_per_cycle(self) -> int:
        """Number of images sent to the crowd each cycle."""
        return int(round(self.query_fraction * self.images_per_cycle))

    @property
    def total_queries(self) -> int:
        """Expected total crowd queries over the deployment."""
        return self.n_cycles * self.queries_per_cycle

    @property
    def budget_cents(self) -> float:
        """Total crowd budget in cents."""
        return self.budget_usd * 100.0

    def guard_policy(self):
        """The :class:`~repro.core.guards.GuardPolicy` these knobs describe."""
        from repro.core.guards import GuardPolicy

        if not self.guards_enabled:
            return GuardPolicy.disabled()
        return GuardPolicy(
            holdout_size=self.guard_holdout_size,
            regression_tolerance=self.guard_regression_tolerance,
        )

    def queries_per_context(self) -> dict:
        """Expected crowd queries per temporal context over the deployment.

        Contexts are visited in consecutive blocks of ``cycles_per_context``
        cycles in the paper's order (morning, afternoon, evening, midnight),
        wrapping if there are more blocks than contexts.
        """
        from repro.utils.clock import TemporalContext

        contexts = TemporalContext.ordered()
        counts = {context: 0 for context in contexts}
        for cycle in range(self.n_cycles):
            block = cycle // self.cycles_per_context
            counts[contexts[block % len(contexts)]] += self.queries_per_cycle
        return counts
