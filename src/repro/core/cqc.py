"""Crowd Quality Control (§IV-C).

CQC turns noisy per-worker responses into a truthful label per query.  Its
key idea over voting/TD-EM/filtering: besides the workers' labels it also
consumes their fixed-form questionnaire *evidence* (is the image fake? what
does it show? are people in danger?), training a gradient-boosting
classifier (the XGBoost stand-in) on pilot queries whose golden labels are
known.  The evidence channel is what recovers the deceptive images whose
label votes are wrong in correlated ways.
"""

from __future__ import annotations

import numpy as np

from repro.boosting.gbt import GradientBoostedClassifier
from repro.crowd.questionnaire import encode_query_features
from repro.crowd.tasks import QueryResult
from repro.data.metadata import DamageLabel

__all__ = ["CrowdQualityControl"]


class CrowdQualityControl:
    """Gradient-boosted fusion of crowd labels and questionnaire evidence.

    Parameters
    ----------
    n_estimators, max_depth, learning_rate:
        Hyperparameters of the underlying gradient-boosted trees.
    use_questionnaire:
        When False, only the label-vote features are used — the ablation
        showing the evidence channel is where CQC's advantage comes from.
    """

    def __init__(
        self,
        n_estimators: int = 60,
        max_depth: int = 3,
        learning_rate: float = 0.15,
        use_questionnaire: bool = True,
    ) -> None:
        self.use_questionnaire = use_questionnaire
        self._classifier = GradientBoostedClassifier(
            n_estimators=n_estimators,
            max_depth=max_depth,
            learning_rate=learning_rate,
            subsample=0.8,
        )
        self._fitted = False

    def _feature_dim(self) -> int:
        from repro.data.metadata import SceneType

        n = DamageLabel.count() + 1 + len(SceneType) + 1 + 1
        return n if self.use_questionnaire else DamageLabel.count() + 1

    def _features(self, results: list[QueryResult]) -> np.ndarray:
        if not results:
            # A faulty platform can leave a cycle with zero usable queries;
            # encode that as an empty matrix rather than crashing.
            return np.empty((0, self._feature_dim()))
        rows = np.stack([encode_query_features(r) for r in results])
        if self.use_questionnaire:
            return rows
        # Keep only the 3 label-vote fractions + the vote margin.
        k = DamageLabel.count()
        return np.concatenate([rows[:, :k], rows[:, -1:]], axis=1)

    def fit(
        self,
        results: list[QueryResult],
        golden_labels: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> "CrowdQualityControl":
        """Train on queries with known golden labels (pilot data)."""
        if not results:
            raise ValueError("cannot fit CQC on zero query results")
        golden_labels = np.asarray(golden_labels, dtype=np.int64).ravel()
        if golden_labels.shape[0] != len(results):
            raise ValueError("one golden label per query result is required")
        self._classifier.fit(self._features(results), golden_labels, rng=rng)
        self._fitted = True
        return self

    def truthful_labels(self, results: list[QueryResult]) -> np.ndarray:
        """The truthful label TL for each query (empty input → empty output)."""
        if not self._fitted:
            raise RuntimeError("CrowdQualityControl used before fit()")
        if not results:
            return np.empty(0, dtype=np.int64)
        return self._classifier.predict(self._features(results))

    def label_distributions(self, results: list[QueryResult]) -> np.ndarray:
        """Probabilistic truthful-label distributions D(TL) (for Eq. 5).

        Empty input yields an empty ``(0, n_classes)`` matrix — no NaNs ever
        flow downstream from a cycle whose queries all failed.
        """
        if not self._fitted:
            raise RuntimeError("CrowdQualityControl used before fit()")
        if not results:
            return np.empty((0, DamageLabel.count()))
        return self._classifier.predict_proba(self._features(results))

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._fitted

    def feature_importances(self) -> dict[str, float]:
        """Which crowd signals CQC actually relies on.

        Returns feature-name → split-frequency importance (sums to 1),
        making the quality-control step inspectable — e.g. how much weight
        the "is it photoshopped?" evidence carries vs the raw label votes.
        """
        if not self._fitted:
            raise RuntimeError("CrowdQualityControl used before fit()")
        from repro.crowd.questionnaire import feature_names

        names = feature_names()
        if not self.use_questionnaire:
            k = DamageLabel.count()
            names = names[:k] + names[-1:]
        importances = self._classifier.feature_importances()
        return dict(zip(names, importances.tolist()))
