"""Resilience policies for the closed loop (graceful degradation).

CrowdLearn is pitched as a *real-time disaster response* system; production
means surviving the faults of :mod:`repro.crowd.faults` rather than crashing
or silently corrupting state.  :class:`ResiliencePolicy` configures how
:meth:`~repro.core.system.CrowdLearnSystem.run_cycle` reacts when the crowd
platform misbehaves:

- **retry with backoff** — a post that hits a platform outage is retried a
  bounded number of times (optionally at an escalated incentive) before the
  image is left with the AI;
- **refunds** — a charged query that yields zero usable responses because
  the crowd *abandoned* it returns its incentive to the
  :class:`~repro.bandit.budget.BudgetLedger`, keeping the bandit's pacing
  signal honest.  A query whose workers answered but missed the deadline is
  *not* refunded — real platforms pay for submitted work whether or not the
  requester still wants it, which is exactly why slow crowds waste money;
- **committee fallback** — images whose query produced nothing usable keep
  the reweighted committee's label instead of poisoning CQC/MIC/IPD with
  empty response sets.

:class:`ResilienceCounters` records every such intervention so a run's
degradation is observable, not inferred (surfaced per cycle in
:class:`~repro.core.system.CycleOutcome` and aggregated in
:class:`~repro.core.system.RunOutcome`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["ResiliencePolicy", "ResilienceCounters"]


@dataclass(frozen=True)
class ResiliencePolicy:
    """How the closed loop degrades when the crowd platform misbehaves.

    The default policy is fully resilient; on a fault-free platform none of
    its branches ever trigger, so enabling it leaves the reproduced runs
    byte-identical.  :meth:`naive` reproduces the pre-resilience behaviour
    (crash on outage, NaN-prone empty-response handling) for chaos-benchmark
    comparisons.

    Parameters
    ----------
    enabled:
        Master switch.  Disabled, ``run_cycle`` behaves exactly as the
        original reproduction: platform faults propagate to the caller.
    max_retries:
        Bounded retries after a :class:`~repro.crowd.faults.PlatformUnavailable`
        post (0 = give up immediately).
    backoff_base_seconds:
        Simulated wait before the first retry; doubles per further retry.
        Recorded in the counters (the simulator has no wall clock to spend).
    escalate_incentive, escalation_factor, max_incentive_cents:
        When escalating, each retry multiplies the offered incentive by the
        factor (capped) — paying the crowd more to come back after a fault.
    refund_failed:
        Refund the ledger for charged queries with zero usable responses
        that the crowd genuinely *abandoned*.  Queries whose workers all
        answered late are never refunded regardless of this flag — the
        money was spent on submitted (if useless-in-time) work.
    fallback_to_committee:
        Keep the reweighted committee's label for images whose query
        produced no usable responses (instead of crashing on them).
    """

    enabled: bool = True
    max_retries: int = 2
    backoff_base_seconds: float = 30.0
    escalate_incentive: bool = False
    escalation_factor: float = 1.5
    max_incentive_cents: float = 20.0
    refund_failed: bool = True
    fallback_to_committee: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_seconds < 0:
            raise ValueError(
                f"backoff_base_seconds must be >= 0, got {self.backoff_base_seconds}"
            )
        if self.escalation_factor < 1.0:
            raise ValueError(
                f"escalation_factor must be >= 1, got {self.escalation_factor}"
            )
        if self.max_incentive_cents <= 0:
            raise ValueError(
                f"max_incentive_cents must be positive, got {self.max_incentive_cents}"
            )

    @staticmethod
    def naive() -> "ResiliencePolicy":
        """The pre-resilience behaviour: no retries, no refunds, no fallback."""
        return ResiliencePolicy(
            enabled=False,
            max_retries=0,
            refund_failed=False,
            fallback_to_committee=False,
        )


@dataclass
class ResilienceCounters:
    """Structured counters of every resilience intervention in a run/cycle.

    ``refunds``/``refunded_cents`` cover *abandoned* queries only (zero
    responses, zero late workers).  All-late queries are tracked separately
    under ``late_queries``/``late_spent_cents``: their incentive stays
    spent, resolving the old contradiction where ``post_query`` documented
    late incentives as sunk cost but the cycle loop refunded them anyway.
    """

    retries: int = 0
    backoff_seconds: float = 0.0
    refunds: int = 0
    refunded_cents: float = 0.0
    fallbacks: int = 0
    dropped_queries: int = 0
    outages_hit: int = 0
    late_queries: int = 0
    late_spent_cents: float = 0.0
    stragglers_harvested: int = 0

    def merge(self, other: "ResilienceCounters") -> "ResilienceCounters":
        """Accumulate ``other`` into this instance (returns self)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def any(self) -> bool:
        """Whether any intervention happened at all."""
        return any(getattr(self, f.name) for f in fields(self))

    def platform_failures(self) -> int:
        """Interventions that signal the *platform* misbehaved.

        Outages hit, queries dropped after exhausted retries, and
        all-late queries — the serving layer's circuit breaker
        (:mod:`repro.serve.breaker`) treats a cycle with any of these as
        a failure sample.  Refunds and committee fallbacks are excluded:
        they are degradation working as designed, not the dependency
        failing.
        """
        return self.outages_hit + self.dropped_queries + self.late_queries

    def as_dict(self) -> dict[str, float]:
        """JSON-safe mapping of counter name to value."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @staticmethod
    def from_dict(data: dict) -> "ResilienceCounters":
        """Inverse of :meth:`as_dict` (ignores unknown keys)."""
        known = {f.name for f in fields(ResilienceCounters)}
        return ResilienceCounters(
            **{k: v for k, v in data.items() if k in known}
        )
