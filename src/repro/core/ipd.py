"""Incentive Policy Design (§IV-B).

IPD prices each crowd query.  The decision problem is the constrained
contextual multi-armed bandit of Eq. 4: contexts are the four times of day,
arms are the incentive levels, the payoff is the negative (normalized)
response delay, and total spending must respect the budget B.  IPD wraps a
:class:`~repro.bandit.base.ContextualPolicy` (UCB-ALP by default), handles
the delay→payoff mapping, paces the budget over the remaining queries, and
can warm-start its payoff estimates from the pilot study — the paper trains
IPD on the training set before deployment.
"""

from __future__ import annotations

import numpy as np

from repro.bandit.base import ContextualPolicy
from repro.bandit.budget import BudgetLedger
from repro.bandit.ccmb import UCBALPBandit
from repro.crowd.pilot import PilotResult
from repro.utils.clock import TemporalContext

__all__ = ["IncentivePolicyDesigner"]

#: Delay normalization: one sensing cycle (600 s) maps to payoff -1.
_DELAY_SCALE = 600.0


class IncentivePolicyDesigner:
    """Prices crowd queries with a budget-constrained contextual bandit.

    Parameters
    ----------
    arms:
        Incentive levels in cents.
    ledger:
        The shared budget ledger (total budget B).
    policy:
        The bandit; a fresh :class:`UCBALPBandit` over the four temporal
        contexts when omitted.
    total_queries:
        Expected number of queries over the whole deployment, used to pace
        the budget (remaining budget / remaining queries).
    queries_per_context:
        Expected queries in each temporal context.  The deployment visits
        contexts in consecutive blocks, so the LP must plan against the
        *remaining* context mix, not a uniform one — otherwise it budgets
        for morning spending that will never recur.  Uniform when omitted.
    """

    def __init__(
        self,
        arms: tuple[float, ...],
        ledger: BudgetLedger,
        total_queries: int,
        policy: ContextualPolicy | None = None,
        rng: np.random.Generator | None = None,
        queries_per_context: dict[TemporalContext, int] | None = None,
    ) -> None:
        if total_queries <= 0:
            raise ValueError(f"total_queries must be positive, got {total_queries}")
        if policy is None:
            policy = UCBALPBandit(
                len(TemporalContext.ordered()), arms, rng=rng
            )
        if policy.arms != tuple(float(a) for a in arms):
            raise ValueError("policy arms must match the provided arms")
        self.policy = policy
        self.ledger = ledger
        self.total_queries = total_queries
        self.queries_priced = 0
        if queries_per_context is None:
            share = total_queries / len(TemporalContext.ordered())
            queries_per_context = {
                context: share for context in TemporalContext.ordered()
            }
        self._remaining_per_context = {
            context: float(queries_per_context.get(context, 0.0))
            for context in TemporalContext.ordered()
        }

    @staticmethod
    def delay_to_payoff(delay_seconds: float) -> float:
        """Definition 12: payoff is the additive inverse of the delay."""
        if delay_seconds < 0:
            raise ValueError(f"delay must be >= 0, got {delay_seconds}")
        return -delay_seconds / _DELAY_SCALE

    def budget_per_query(self) -> float:
        """Average remaining budget per remaining query (ALP pacing signal)."""
        remaining_queries = max(self.total_queries - self.queries_priced, 1)
        return self.ledger.remaining / remaining_queries

    def remaining_context_distribution(self) -> np.ndarray:
        """Occupancy of each context over the remaining queries."""
        remaining = np.array(
            [
                self._remaining_per_context[c]
                for c in TemporalContext.ordered()
            ]
        )
        total = remaining.sum()
        if total <= 0:
            return np.full(len(remaining), 1.0 / len(remaining))
        return remaining / total

    def price_query(self, context: TemporalContext) -> tuple[int, float]:
        """Choose the incentive for one query.

        Returns ``(arm index, incentive in cents)``.  The caller charges the
        ledger when it actually posts the query.
        """
        arm = self.policy.select(
            context.index,
            self.budget_per_query(),
            context_distribution=self.remaining_context_distribution(),
        )
        self.queries_priced += 1
        self._remaining_per_context[context] = max(
            0.0, self._remaining_per_context[context] - 1.0
        )
        return arm, self.policy.arms[arm]

    def observe(
        self, context: TemporalContext, arm: int, delay_seconds: float
    ) -> None:
        """Feed back a realized query delay for the pulled arm."""
        self.policy.update(context.index, arm, self.delay_to_payoff(delay_seconds))

    def warm_start(self, pilot: PilotResult) -> None:
        """Seed the bandit's payoff estimates from pilot-study observations.

        Each pilot query contributes one (context, arm, payoff) observation,
        exactly as if the bandit had made those pulls itself.
        """
        arm_of_level = {level: i for i, level in enumerate(self.policy.arms)}
        for (context, level), cell in pilot.cells.items():
            arm = arm_of_level.get(float(level))
            if arm is None:
                continue  # pilot probed a level outside this policy's arms
            for result in cell.results:
                self.policy.update(
                    context.index, arm, self.delay_to_payoff(result.mean_delay)
                )

    def incentive_schedule(self) -> dict[TemporalContext, float]:
        """The currently-greedy incentive per context (for inspection)."""
        schedule = {}
        for context in TemporalContext.ordered():
            means = self.policy.mean_payoffs(context.index)
            pulls = self.policy.pull_counts(context.index)
            if pulls.sum() == 0:
                schedule[context] = float("nan")
            else:
                played = np.flatnonzero(pulls > 0)
                schedule[context] = self.policy.arms[
                    int(played[np.argmax(means[played])])
                ]
        return schedule
