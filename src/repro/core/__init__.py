"""CrowdLearn core: QSS, IPD, CQC, MIC and the closed-loop system."""

from repro.core.cache import BoundedCache, CacheStats, PredictionCache, pool_key
from repro.core.committee import Committee
from repro.core.config import CrowdLearnConfig
from repro.core.cqc import CrowdQualityControl
from repro.core.guards import (
    DivergenceSentinel,
    GuardCounters,
    GuardPolicy,
    ModelGuard,
    SnapshotRing,
)
from repro.core.ipd import IncentivePolicyDesigner
from repro.core.mic import MachineIntelligenceCalibrator
from repro.core.qss import AdaptiveQuerySetSelector, QuerySetSelector
from repro.core.resilience import ResilienceCounters, ResiliencePolicy
from repro.core.system import CrowdLearnSystem, CycleOutcome, RunOutcome

__all__ = [
    "BoundedCache",
    "CacheStats",
    "PredictionCache",
    "pool_key",
    "Committee",
    "CrowdLearnConfig",
    "CrowdQualityControl",
    "DivergenceSentinel",
    "GuardCounters",
    "GuardPolicy",
    "ModelGuard",
    "SnapshotRing",
    "IncentivePolicyDesigner",
    "MachineIntelligenceCalibrator",
    "AdaptiveQuerySetSelector",
    "QuerySetSelector",
    "ResilienceCounters",
    "ResiliencePolicy",
    "CrowdLearnSystem",
    "CycleOutcome",
    "RunOutcome",
]
