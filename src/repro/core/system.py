"""The CrowdLearn closed-loop system (Figure 4).

Per sensing cycle: ① QSS picks the query set from committee entropy;
② IPD prices each query with the constrained contextual bandit and the
queries go to the crowdsourcing platform; ③ CQC fuses the workers' labels
and questionnaire evidence into truthful labels; ④ MIC reweights the
committee, retrains the experts, and offloads the query set's labels to the
crowd.  Final labels come from the reweighted committee with the query set
overridden by the crowd.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.bandit.budget import BudgetExhausted, BudgetLedger
from repro.core.cache import PredictionCache
from repro.core.committee import Committee
from repro.core.config import CrowdLearnConfig
from repro.core.cqc import CrowdQualityControl
from repro.core.guards import GuardCounters, GuardPolicy, ModelGuard
from repro.core.ipd import IncentivePolicyDesigner
from repro.core.mic import MachineIntelligenceCalibrator
from repro.core.qss import AdaptiveQuerySetSelector, QuerySetSelector
from repro.core.resilience import ResilienceCounters, ResiliencePolicy
from repro.crowd.faults import PlatformUnavailable
from repro.crowd.pilot import PilotResult, run_pilot_study
from repro.crowd.platform import CrowdsourcingPlatform
from repro.crowd.scheduler import PendingResponse, VirtualTimeScheduler
from repro.crowd.tasks import QueryResult
from repro.data.dataset import DisasterDataset, DisasterImage
from repro.data.stream import SensingCycle, SensingCycleStream
from repro.models.registry import create_model, default_committee_names
from repro.telemetry.runtime import Telemetry, get_telemetry
from repro.utils.clock import TemporalContext
from repro.utils.rng import SeedSequencer

__all__ = ["CycleOutcome", "RunOutcome", "StragglerRecord", "CrowdLearnSystem"]


@dataclass
class StragglerRecord:
    """A posted query with late responses still in flight.

    Kept by the system between cycles so a harvested response can be fused
    back into its query's full response set (CQC re-grades the label over
    everything that has arrived) and its image can join a later cycle's
    MIC retraining batch.
    """

    image: DisasterImage
    result: QueryResult


@dataclass(frozen=True)
class CycleOutcome:
    """Everything CrowdLearn produced in one sensing cycle."""

    cycle_index: int
    context: TemporalContext
    true_labels: np.ndarray
    final_labels: np.ndarray
    final_scores: np.ndarray
    query_indices: np.ndarray
    incentives_cents: np.ndarray
    crowd_delay: float  # mean per-query delay; 0.0 when nothing was queried
    cost_cents: float
    expert_weights: np.ndarray
    resilience: ResilienceCounters = field(default_factory=ResilienceCounters)
    guards: GuardCounters = field(default_factory=GuardCounters)


@dataclass
class RunOutcome:
    """Aggregated outcomes over a whole deployment."""

    cycles: list[CycleOutcome] = field(default_factory=list)

    def append(self, outcome: CycleOutcome) -> None:
        self.cycles.append(outcome)

    def y_true(self) -> np.ndarray:
        """Ground-truth labels over all cycles, in stream order.

        An outcome with no cycles yields an empty label array (matching
        :meth:`weight_trace`'s convention) rather than the ``ValueError``
        ``np.concatenate`` raises on an empty list.
        """
        if not self.cycles:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([c.true_labels for c in self.cycles])

    def y_pred(self) -> np.ndarray:
        """Final labels over all cycles, in stream order (empty if no cycles)."""
        if not self.cycles:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([c.final_labels for c in self.cycles])

    def scores(self) -> np.ndarray:
        """Final per-class scores over all cycles (for ROC curves).

        Shape ``(0, 0)`` when the run has no cycles — the class count is
        unknowable without at least one cycle's score matrix.
        """
        if not self.cycles:
            return np.empty((0, 0))
        return np.concatenate([c.final_scores for c in self.cycles])

    def mean_crowd_delay(self) -> float:
        """Average crowd delay per cycle, over cycles that queried the crowd."""
        delays = [c.crowd_delay for c in self.cycles if c.query_indices.size]
        if not delays:
            return 0.0
        return float(np.mean(delays))

    def crowd_delay_by_context(self) -> dict[TemporalContext, float]:
        """Mean crowd delay per temporal context (Figure 8's series)."""
        table: dict[TemporalContext, list[float]] = {}
        for c in self.cycles:
            if c.query_indices.size:
                table.setdefault(c.context, []).append(c.crowd_delay)
        return {
            context: float(np.mean(values)) for context, values in table.items()
        }

    def total_cost_cents(self) -> float:
        """Total crowd spend over the run."""
        return float(sum(c.cost_cents for c in self.cycles))

    def accuracy_trace(self) -> np.ndarray:
        """Per-cycle accuracy, shape ``(n_cycles,)``.

        Shows the closed loop's learning behaviour: as MIC reweights and
        retrains, per-cycle accuracy should drift up over the deployment.
        """
        return np.array(
            [
                float(np.mean(c.final_labels == c.true_labels))
                for c in self.cycles
            ]
        )

    def weight_trace(self) -> np.ndarray:
        """Expert weights after every cycle, shape ``(n_cycles, n_experts)``."""
        if not self.cycles:
            return np.empty((0, 0))
        return np.stack([c.expert_weights for c in self.cycles])

    def spend_trace(self) -> np.ndarray:
        """Cumulative crowd spend after each cycle (cents)."""
        return np.cumsum([c.cost_cents for c in self.cycles])

    def resilience_totals(self) -> ResilienceCounters:
        """Aggregated resilience counters over the whole deployment."""
        totals = ResilienceCounters()
        for c in self.cycles:
            totals.merge(c.resilience)
        return totals

    def guard_totals(self) -> GuardCounters:
        """Aggregated guard counters over the whole deployment."""
        totals = GuardCounters()
        for c in self.cycles:
            totals.merge(c.guards)
        return totals


class CrowdLearnSystem:
    """The assembled CrowdLearn pipeline.

    Use :meth:`build` for the full paper setup (train committee, run pilot,
    train CQC, warm-start IPD), or construct directly from pre-built parts
    for custom experiments.
    """

    def __init__(
        self,
        committee: Committee,
        platform: CrowdsourcingPlatform,
        qss: QuerySetSelector,
        ipd: IncentivePolicyDesigner,
        cqc: CrowdQualityControl,
        mic: MachineIntelligenceCalibrator,
        ledger: BudgetLedger,
        replay_pool: DisasterDataset,
        config: CrowdLearnConfig,
        rng: np.random.Generator,
        resilience: ResiliencePolicy | None = None,
        guards: ModelGuard | None = None,
        telemetry: Telemetry | None = None,
        cache: PredictionCache | None = None,
        scheduler: VirtualTimeScheduler | None = None,
        event_id: str | None = None,
    ) -> None:
        self.committee = committee
        self.platform = platform
        self.qss = qss
        self.ipd = ipd
        self.cqc = cqc
        self.mic = mic
        self.ledger = ledger
        self.replay_pool = replay_pool
        self.config = config
        self.rng = rng
        self.resilience = resilience or ResiliencePolicy()
        #: Learning-loop guardrails; ``None`` runs the historical unguarded
        #: loop.  :meth:`build` constructs one from the config/policy.
        self.guards = guards
        #: Telemetry pipeline; ``None`` resolves the process default (the
        #: no-op singleton unless a trace run swapped one in), so the
        #: uninstrumented path is unchanged.  Attached telemetry travels
        #: with checkpoints, keeping a resumed run's history.
        self.telemetry = telemetry
        #: Shared prediction/feature cache; ``None`` computes every vote
        #: directly (the historical loop).  Results are bit-identical
        #: either way — the cache only removes redundant inference.
        self.cache = cache
        if cache is not None:
            self.committee.attach_cache(cache)
            if self.guards is not None:
                self.guards.cache = cache
        #: Virtual-time scheduler; ``None`` keeps the loop synchronous and
        #: byte-identical to the instant-response reproduction.  Attached,
        #: each sensing cycle becomes a real deadline and late responses
        #: are harvested into later cycles (under the "harvest" policy).
        self.scheduler = scheduler
        #: Write-ahead journal (:class:`repro.eval.journal.CycleJournal`);
        #: ``None`` runs without crash-tolerance.  Attached by
        #: :meth:`run`/``repro.eval.journal.resume_run`` for the duration
        #: of the run and never pickled into checkpoints.
        self.journal = None
        #: Identity of the disaster event this system serves, set by the
        #: serving layer (``repro.serve``); ``None`` for standalone runs.
        #: Scopes the prediction-cache namespace and telemetry labels.
        self.event_id = event_id
        if event_id is not None and cache is not None:
            # Share the physical stores, isolate the key space: a served
            # event must never read another event's memoized votes.
            self.cache = cache.scoped(event_id)
            self.committee.attach_cache(self.cache)
            if self.guards is not None:
                self.guards.cache = self.cache
        #: Per-cycle admission cap imposed by the shared crowd pool;
        #: ``None`` (standalone runs) falls back to
        #: ``config.queries_per_cycle``.  May exceed the nominal per-cycle
        #: size when the pool grants catch-up capacity for a backlog.
        self.cycle_query_cap: int | None = None
        #: Queries with late responses still in flight, by query id.
        self._straggler_queries: dict[int, StragglerRecord] = {}
        if scheduler is not None and config.straggler_policy == "harvest":
            # The platform reroutes late responses into the event queue
            # instead of dropping them; "drop" leaves platform.scheduler
            # unset so misses stay misses.
            self.platform.scheduler = scheduler

    def _telemetry(self) -> Telemetry:
        return self.telemetry if self.telemetry is not None else get_telemetry()

    def __getstate__(self) -> dict:
        # The journal holds an open file handle and belongs to exactly one
        # process's run; a checkpoint must never capture it.
        state = self.__dict__.copy()
        state["journal"] = None
        return state

    @classmethod
    def build(
        cls,
        training_set: DisasterDataset,
        config: CrowdLearnConfig | None = None,
        seed: int = 0,
        committee: Committee | None = None,
        platform: CrowdsourcingPlatform | None = None,
        pilot: PilotResult | None = None,
        resilience: ResiliencePolicy | None = None,
        guards: ModelGuard | GuardPolicy | None = None,
        telemetry: Telemetry | None = None,
        cache: PredictionCache | None = None,
        event_id: str | None = None,
    ) -> "CrowdLearnSystem":
        """Assemble and pre-train the full system as the paper deploys it.

        Steps: train the {VGG16, BoVW, DDM} committee on the training set,
        run the pilot study on the platform, fit CQC on the pilot's labeled
        queries, and warm-start the IPD bandit with the pilot's delays.
        Pass ``committee``/``platform``/``pilot`` to reuse pre-built parts
        (e.g. to share one trained committee across budget-sweep runs).

        ``guards`` accepts a pre-built :class:`ModelGuard`, a
        :class:`GuardPolicy` to build one from, or ``None`` to follow the
        config (``config.guards_enabled``); the guard's golden holdout is
        reserved from ``training_set`` with its own named seed.
        """
        config = config or CrowdLearnConfig()
        seeds = SeedSequencer(seed)
        if committee is None:
            experts = [create_model(name) for name in default_committee_names()]
            committee = Committee(experts)
            committee.fit(training_set, seeds.get("committee"))
        if platform is None:
            from repro.crowd.delay import DelayModel
            from repro.crowd.population import WorkerPopulation
            from repro.crowd.quality import QualityModel

            platform = CrowdsourcingPlatform(
                population=WorkerPopulation(
                    config.n_workers, seeds.get("population")
                ),
                delay_model=DelayModel(),
                quality_model=QualityModel(),
                rng=seeds.get("platform"),
                workers_per_query=config.workers_per_query,
                telemetry=telemetry,
            )
        if pilot is None:
            pilot = run_pilot_study(
                platform,
                training_set,
                seeds.get("pilot"),
                incentive_levels=config.incentive_levels,
                queries_per_cell=config.pilot_queries_per_cell,
            )
        cqc = CrowdQualityControl(use_questionnaire=config.cqc_use_questionnaire)
        pilot_results, pilot_labels = pilot.all_labeled_results()
        cqc.fit(pilot_results, np.array(pilot_labels), rng=seeds.get("cqc"))

        ledger = BudgetLedger(config.budget_cents)
        ipd = IncentivePolicyDesigner(
            arms=config.incentive_levels,
            ledger=ledger,
            total_queries=max(config.total_queries, 1),
            rng=seeds.get("ipd"),
            queries_per_context=config.queries_per_context(),
        )
        ipd.warm_start(pilot)
        mic = MachineIntelligenceCalibrator(
            eta=config.mic_eta,
            replay_size=config.mic_replay_size,
            retrain=config.mic_retrain,
            reweight=config.mic_reweight,
            offload=config.mic_offload,
            warm_start=config.mic_warm_start,
            replay_buffer=config.mic_replay_buffer,
            warm_replay_sample=config.mic_warm_replay_sample,
            full_refit_every=config.mic_full_refit_every,
            warm_epochs=config.mic_warm_epochs,
        )
        if config.fused_kernels:
            committee.set_fused(True)
        if config.qss_adaptive:
            qss: QuerySetSelector = AdaptiveQuerySetSelector(
                initial_epsilon=config.qss_epsilon
            )
        else:
            qss = QuerySetSelector(config.qss_epsilon)
        if not isinstance(guards, ModelGuard):
            policy = guards if isinstance(guards, GuardPolicy) else config.guard_policy()
            guards = (
                ModelGuard.build(
                    policy,
                    training_set,
                    committee.n_experts,
                    seeds.get("guards"),
                )
                if policy.enabled
                else None
            )
        if cache is None and config.cache_enabled:
            cache = PredictionCache(
                max_pools=config.cache_max_pools,
                max_features=config.cache_max_features,
            )
        scheduler = None
        if config.scheduler_enabled:
            scheduler = VirtualTimeScheduler(
                cycle_seconds=config.cycle_seconds,
                max_straggler_age_seconds=(
                    config.straggler_max_cycles * config.cycle_seconds
                ),
            )
        return cls(
            committee=committee,
            platform=platform,
            qss=qss,
            ipd=ipd,
            cqc=cqc,
            mic=mic,
            ledger=ledger,
            replay_pool=training_set,
            config=config,
            rng=seeds.get("system"),
            resilience=resilience,
            guards=guards,
            telemetry=telemetry,
            cache=cache,
            scheduler=scheduler,
            event_id=event_id,
        )

    def _post_with_retries(
        self,
        metadata,
        incentive: float,
        context: TemporalContext,
        counters: ResilienceCounters,
        deadline_seconds: float | None = None,
    ) -> tuple[QueryResult, float]:
        """Post one query, retrying outages per the resilience policy.

        Returns ``(result, paid_incentive)``.  Re-raises
        :class:`PlatformUnavailable` once the retry budget is exhausted
        (immediately when resilience is disabled) and lets
        :class:`BudgetExhausted` propagate untouched.

        ``deadline_seconds`` is the cycle time left for this query.  Retry
        backoff *consumes* it (and advances the virtual clock): each wait
        shrinks the deadline forwarded to the platform, and a backoff that
        exhausts it raises :class:`PlatformUnavailable` — by the time the
        platform would accept the retry, the sensing cycle is over.
        """
        policy = self.resilience
        scheduler = getattr(self, "scheduler", None)
        attempts = policy.max_retries + 1 if policy.enabled else 1
        paid = incentive
        for attempt in range(attempts):
            if attempt:
                counters.retries += 1
                backoff = policy.backoff_base_seconds * 2 ** (attempt - 1)
                counters.backoff_seconds += backoff
                if deadline_seconds is not None:
                    deadline_seconds -= backoff
                    if scheduler is not None:
                        scheduler.advance(backoff)
                    if deadline_seconds <= 0:
                        raise PlatformUnavailable(
                            "sensing-cycle deadline exhausted during retry backoff"
                        )
                if policy.escalate_incentive:
                    paid = min(
                        paid * policy.escalation_factor,
                        policy.max_incentive_cents,
                    )
            try:
                result = self.platform.post_query(
                    metadata, paid, context, ledger=self.ledger,
                    deadline_seconds=deadline_seconds,
                )
                return result, paid
            except PlatformUnavailable:
                counters.outages_hit += 1
                if attempt == attempts - 1:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _pre_post_marks(
        counters: ResilienceCounters, scheduler: VirtualTimeScheduler | None
    ) -> dict:
        """Counter marks taken just before a post, to journal its deltas."""
        return {
            "retries": counters.retries,
            "backoff_seconds": counters.backoff_seconds,
            "outages_hit": counters.outages_hit,
            "next_seq": scheduler.next_seq if scheduler is not None else 0,
            "expired": scheduler.expired_total if scheduler is not None else 0,
        }

    def _post_counter_deltas(
        self, counters: ResilienceCounters, before: dict
    ) -> dict:
        faults = self.platform.faults
        return {
            "retries": int(counters.retries - before["retries"]),
            "backoff_seconds": float(
                counters.backoff_seconds - before["backoff_seconds"]
            ),
            "outages_hit": int(counters.outages_hit - before["outages_hit"]),
            "faults_state": None if faults is None else faults.state_dict(),
        }

    def _post_failure_payload(
        self, kind: str, index, arm: int, incentive: float,
        counters: ResilienceCounters, before: dict,
    ) -> dict:
        """Journal payload for a post that charged nothing.

        ``budget`` (the ledger refused the charge) and ``dropped`` (outage
        retries exhausted) have no external effects, so recovery simply
        re-executes them; the record exists to anchor crash points and to
        verify that re-execution reaches the same outcome.
        """
        return {
            "kind": kind,
            "index": int(index),
            "arm": int(arm),
            "incentive": float(incentive),
            **self._post_counter_deltas(counters, before),
        }

    def _post_success_payload(
        self, result: QueryResult, paid: float, index, arm: int,
        incentive: float, counters: ResilienceCounters, before: dict,
        scheduler: VirtualTimeScheduler | None,
    ) -> dict:
        """Journal payload capturing a charged post's full effects.

        Everything :meth:`_replay_post` needs to re-apply the post without
        touching the crowd: the charge, the query id, the delivered
        responses, the scheduler events it queued, and the platform/fault
        RNG states after the call.
        """
        from repro.eval.journal import encode_pending, encode_response

        scheduled = []
        n_expired = 0
        if scheduler is not None:
            scheduled = [
                encode_pending(e)
                for e in scheduler.events_since(before["next_seq"])
            ]
            n_expired = int(scheduler.expired_total - before["expired"])
        return {
            "kind": "posted",
            "index": int(index),
            "arm": int(arm),
            "incentive": float(incentive),
            "paid": float(paid),
            "query_id": int(result.query.query_id),
            "image_id": result.query.image_id,
            "deadline": (
                None if result.deadline_seconds is None
                else float(result.deadline_seconds)
            ),
            "n_late": int(result.n_late),
            "n_expired": n_expired,
            "responses": [encode_response(r) for r in result.responses],
            "scheduled": scheduled,
            "rng_state": self.platform.rng.bit_generator.state,
            **self._post_counter_deltas(counters, before),
        }

    def _replay_post(
        self,
        cycle: SensingCycle,
        payload: dict,
        counters: ResilienceCounters,
        scheduler: VirtualTimeScheduler | None,
    ) -> tuple[QueryResult, float]:
        """Re-apply a journaled ``posted`` record instead of re-posting.

        Restores the retry/backoff counters (advancing virtual time by the
        recorded backoff), the fault injector's clock and RNG, and then
        the platform-side effects via
        :meth:`CrowdsourcingPlatform.restore_posted_query` — charging the
        restored (pre-post) ledger exactly once and never assigning a new
        query id.  Returns ``(result, paid)`` shaped exactly like
        :meth:`_post_with_retries`, so the rest of the loop cannot tell a
        replayed post from a live one.
        """
        from repro.crowd.tasks import CrowdQuery
        from repro.eval.journal import decode_response

        counters.retries += int(payload["retries"])
        counters.backoff_seconds += float(payload["backoff_seconds"])
        counters.outages_hit += int(payload["outages_hit"])
        if scheduler is not None and payload["backoff_seconds"]:
            scheduler.advance(float(payload["backoff_seconds"]))
        faults = self.platform.faults
        if faults is not None and payload.get("faults_state") is not None:
            faults.restore_state(payload["faults_state"])
        paid = float(payload["paid"])
        query = CrowdQuery(
            query_id=int(payload["query_id"]),
            image_id=payload["image_id"],
            incentive_cents=paid,
            context=cycle.context,
        )
        responses = [decode_response(d) for d in payload["responses"]]
        scheduled = [
            (
                float(e["arrival_time"]),
                int(e["seq"]),
                float(e["posted_at"]),
                decode_response(e["response"]),
            )
            for e in payload["scheduled"]
        ]
        result = self.platform.restore_posted_query(
            query,
            responses,
            scheduled,
            n_late=int(payload["n_late"]),
            n_expired=int(payload["n_expired"]),
            rng_state=payload["rng_state"],
            ledger=self.ledger,
            paid_cents=paid,
            deadline_seconds=payload["deadline"],
        )
        return result, paid

    def run_cycle(self, cycle: SensingCycle) -> CycleOutcome:
        """Execute the full CrowdLearn loop on one sensing cycle.

        Resilience (see :class:`~repro.core.resilience.ResiliencePolicy`):
        posts that hit a platform outage are retried with backoff and, once
        the retry budget is gone, the image is *dropped* back to the AI;
        charged queries that yield zero usable responses are refunded and
        fall back to the reweighted committee's label.  Every intervention
        is tallied in the outcome's :class:`ResilienceCounters`.

        Each stage runs inside a telemetry span (``cycle.qss``,
        ``cycle.ipd.*``, ``cycle.crowd``, ``cycle.cqc``,
        ``cycle.mic.*``); with the default no-op telemetry the outcome is
        byte-identical to an uninstrumented run.

        With a :class:`~repro.crowd.scheduler.VirtualTimeScheduler`
        attached (``config.scheduler_enabled``), the cycle opens with a
        ``scheduler.harvest`` phase — virtual time advances to the cycle
        boundary and matured straggler responses are folded back into
        their queries — and every post carries the remaining cycle time as
        a hard deadline, with retry backoff consuming it.
        """
        tel = self._telemetry()
        with tel.span("cycle", index=cycle.index, context=cycle.context.value):
            return self._run_cycle(cycle, tel)

    def _cycle_worker_reliability(
        self, results: list[QueryResult]
    ) -> float | None:
        """Graded historical accuracy of this cycle's responding workers.

        Pooled over every worker who answered (malformed ``worker_id = -1``
        responses excluded): correct past answers / graded past answers.
        ``None`` until anything has been graded.  The drift detector uses
        this to avoid flagging cycles answered by workers with a proven
        track record.
        """
        worker_ids = sorted(
            {
                response.worker_id
                for result in results
                for response in result.responses
                if response.worker_id >= 0
            }
        )
        graded_total = 0
        correct_total = 0
        for worker_id in worker_ids:
            graded, correct = self.platform.worker_track_record(worker_id)
            graded_total += graded
            correct_total += correct
        if graded_total == 0:
            return None
        return correct_total / graded_total

    def _observed_delay(self, result: QueryResult) -> float:
        """The delay IPD should learn from.

        Without a deadline this is the plain mean delay (the historical
        reward).  Under the scheduler, late workers cost the requester the
        full deadline they waited — the *realized* delay — so slow crowds
        are penalized even though their answers eventually arrive.
        """
        if result.deadline_seconds is None or result.n_late == 0:
            return result.mean_delay
        return result.realized_mean_delay()

    def _absorb_stragglers(
        self, events: list[PendingResponse]
    ) -> tuple[list[DisasterImage], list[int]]:
        """Fold harvested responses back into their queries.

        Each event's response is appended to the original
        :class:`QueryResult`; CQC then re-fuses the label over the full
        (on-time + harvested) response set and re-reveals it, so worker
        track records are graded against the best label known.  Returns
        the (image, label) pairs for this cycle's MIC retraining batch.
        """
        touched: dict[int, StragglerRecord] = {}
        registry = self._straggler_queries
        for event in events:
            record = registry.get(event.query.query_id)
            if record is None:
                continue  # posted outside the loop (e.g. a direct post)
            record.result.responses.append(event.response)
            record.result.n_late = max(record.result.n_late - 1, 0)
            touched[event.query.query_id] = record
        images: list[DisasterImage] = []
        labels: list[int] = []
        for query_id, record in touched.items():
            truthful = self.cqc.truthful_labels([record.result])
            label = int(truthful[0])
            self.platform.reveal_ground_truth(query_id, label)
            images.append(record.image)
            labels.append(label)
            if not self.scheduler.has_pending(query_id):
                del registry[query_id]
        return images, labels

    def _run_cycle(self, cycle: SensingCycle, tel: Telemetry) -> CycleOutcome:
        dataset = cycle.dataset()
        true_labels = dataset.labels()
        policy = self.resilience
        guard = self.guards
        counters = ResilienceCounters()
        # getattr: systems unpickled from pre-scheduler checkpoints have no
        # scheduler attribute; they keep running synchronously.
        scheduler = getattr(self, "scheduler", None)
        # Write-ahead journal (pre-journal checkpoints lack the attribute).
        # Each append below marks a stage boundary; during crash recovery
        # the same appends are verified against the journaled history, and
        # journaled posts are served from the log instead of re-posted.
        jrn = getattr(self, "journal", None)
        if jrn is not None:
            jrn.append(cycle.index, "cycle_start",
                       {"context": cycle.context.value})
        straggler_images: list[DisasterImage] = []
        straggler_labels: list[int] = []
        if scheduler is not None:
            # Advance virtual time to this cycle's boundary and harvest the
            # straggler responses that arrived while the requester slept.
            with tel.span("scheduler.harvest", cycle=cycle.index) as hspan:
                scheduler.advance_to(
                    scheduler.cycle_start(cycle.index)
                )
                harvested = self.platform.collect_stragglers()
                if harvested:
                    counters.stragglers_harvested += len(harvested)
                    straggler_images, straggler_labels = (
                        self._absorb_stragglers(harvested)
                    )
                if tel.enabled:
                    hspan.set(
                        harvested=len(harvested),
                        pending=scheduler.pending_count,
                    )
            if jrn is not None:
                jrn.append(cycle.index, "harvest",
                           {"harvested": len(harvested),
                            "pending": scheduler.pending_count})
        if guard is not None and guard.n_experts != self.committee.n_experts:
            # A new committee was swapped into a live system: per-expert
            # guard memory no longer describes anything real.
            guard.rebind(self.committee.n_experts)
        gcounters = GuardCounters()
        mask = guard.active_mask() if guard is not None else None
        # getattr: systems unpickled from pre-cache checkpoints lack the
        # attribute; they simply keep running uncached.
        cache = getattr(self, "cache", None)
        if cache is not None:
            if self.committee.cache is not cache:
                # A new committee was swapped in (or experts replaced
                # wholesale): route its votes through the shared cache too.
                self.committee.attach_cache(cache)
            if guard is not None and getattr(guard, "cache", None) is not cache:
                guard.cache = cache
        cache_stats_before = cache.stats() if cache is not None else None

        # ① committee votes and query selection (quarantined members, if
        # any, are excluded from the uncertainty estimate via ``mask``).
        with tel.span("cycle.committee"):
            votes = self.committee.expert_votes(dataset)
            entropy = self.committee.committee_entropy(dataset, votes, mask=mask)
        with tel.span("cycle.qss"):
            # getattr: systems unpickled from pre-serve checkpoints lack
            # the attribute; they keep the config's nominal cycle size.
            cap = getattr(self, "cycle_query_cap", None)
            desired = self.config.queries_per_cycle if cap is None else cap
            query_size = min(desired, len(dataset))
            query_indices = self.qss.select(entropy, query_size, self.rng)
        if jrn is not None:
            jrn.append(cycle.index, "qss",
                       {"indices": [int(i) for i in query_indices]})

        incentives: list[float] = []
        results: list[QueryResult] = []
        arms: list[int] = []
        cost = 0.0
        posted_indices: list[int] = []
        with tel.span("cycle.crowd", queries=len(query_indices)):
            for index in query_indices:
                deadline = None
                if scheduler is not None:
                    # What is left of this sensing cycle is the query's
                    # deadline: retry backoff already spent is gone.
                    deadline = (
                        self.config.cycle_seconds - counters.backoff_seconds
                    )
                    if deadline <= 0:
                        counters.dropped_queries += 1
                        continue  # the cycle is over before we could post
                with tel.span("cycle.ipd.price"):
                    arm, incentive = self.ipd.price_query(cycle.context)
                metadata = dataset[int(index)].metadata
                replayed = None
                before = None
                if jrn is not None:
                    jrn.append(cycle.index, "post_intent",
                               {"index": int(index), "arm": int(arm),
                                "incentive": float(incentive)})
                    replayed = jrn.peek_replay(cycle.index, "post")
                    before = self._pre_post_marks(counters, scheduler)
                if replayed is not None and replayed.get("kind") == "posted":
                    # The crashed run already paid for this query: apply
                    # the journaled effects, never post or charge again.
                    result, paid = self._replay_post(
                        cycle, replayed, counters, scheduler
                    )
                    jrn.append(cycle.index, "post", replayed)
                    jrn.requeries_avoided_cents += paid
                else:
                    try:
                        result, paid = self._post_with_retries(
                            metadata, incentive, cycle.context, counters,
                            deadline_seconds=deadline,
                        )
                    except BudgetExhausted:
                        if jrn is not None:
                            jrn.append(cycle.index, "post",
                                       self._post_failure_payload(
                                           "budget", index, arm, incentive,
                                           counters, before))
                        break  # budget gone: images stay with the AI
                    except PlatformUnavailable:
                        if not policy.enabled:
                            raise
                        counters.dropped_queries += 1
                        if jrn is not None:
                            jrn.append(cycle.index, "post",
                                       self._post_failure_payload(
                                           "dropped", index, arm, incentive,
                                           counters, before))
                        continue  # this image stays with the AI
                    if jrn is not None:
                        jrn.append(cycle.index, "post",
                                   self._post_success_payload(
                                       result, paid, index, arm, incentive,
                                       counters, before, scheduler))
                if not result.responses and policy.enabled:
                    if result.n_late:
                        # Every worker answered — after the deadline.  The
                        # money is spent on submitted work (no refund), IPD
                        # observes the realized cost of waiting the cycle
                        # out, and (under "harvest") the answers arrive as
                        # stragglers in a later cycle.
                        counters.late_queries += 1
                        counters.late_spent_cents += paid
                        cost += paid
                        incentives.append(paid)
                        self.ipd.observe(
                            cycle.context, arm, self._observed_delay(result)
                        )
                        if self.platform.scheduler is not None:
                            self._straggler_queries[result.query.query_id] = (
                                StragglerRecord(
                                    image=dataset[int(index)], result=result
                                )
                            )
                        if policy.fallback_to_committee:
                            counters.fallbacks += 1
                        continue
                    # Charged, but nobody submitted anything (abandonment):
                    # refund and keep the committee's label.
                    if policy.refund_failed:
                        self.ledger.refund(paid)
                        counters.refunds += 1
                        counters.refunded_cents += paid
                    else:
                        cost += paid
                    if policy.fallback_to_committee:
                        counters.fallbacks += 1
                    continue
                if result.n_late and self.platform.scheduler is not None:
                    # Partially late: the on-time responses proceed through
                    # CQC now; the rest will be folded in at harvest.
                    self._straggler_queries[result.query.query_id] = (
                        StragglerRecord(image=dataset[int(index)], result=result)
                    )
                incentives.append(paid)
                arms.append(arm)
                results.append(result)
                posted_indices.append(int(index))
                cost += paid
        query_indices = np.array(posted_indices, dtype=np.int64)

        # ③ quality control + ④ calibration (only if anything was queried).
        flagged = False
        if results:
            with tel.span("cycle.cqc", queries=len(results)):
                truthful = self.cqc.truthful_labels(results)
                truth_dists = self.cqc.label_distributions(results)
                # Reliability must be read *before* this cycle's answers are
                # graded, so it reflects strictly historical behaviour.
                reliability = (
                    self._cycle_worker_reliability(results)
                    if guard is not None
                    else None
                )
                for result, label in zip(results, truthful):
                    self.platform.reveal_ground_truth(
                        result.query.query_id, int(label)
                    )
            if jrn is not None:
                jrn.append(cycle.index, "cqc",
                           {"labels": [int(x) for x in truthful],
                            "query_ids": [
                                int(r.query.query_id) for r in results
                            ]})
            query_votes = [v[query_indices] for v in votes]
            pre_vote: np.ndarray | None = None
            if guard is not None or isinstance(self.qss, AdaptiveQuerySetSelector):
                pre_vote = self.committee.committee_vote(dataset, votes, mask=mask)
            # VDBE extension: feed the surprise (mean committee-vs-truth
            # divergence on the query set) back into an adaptive QSS.
            if isinstance(self.qss, AdaptiveQuerySetSelector):
                from repro.metrics.information import bounded_divergence

                surprise = float(
                    np.mean(
                        [
                            bounded_divergence(pre_vote[int(i)], dist)
                            for i, dist in zip(query_indices, truth_dists)
                        ]
                    )
                )
                self.qss.observe_surprise(surprise)
            if guard is not None:
                guard.observe_committee(self.committee, gcounters)
                mask = guard.active_mask()
                consensus = np.argmax(pre_vote[query_indices], axis=1)
                flagged = guard.observe_labels(
                    consensus, truthful, reliability, gcounters
                )
            if jrn is not None:
                jrn.append(cycle.index, "guard", {"flagged": bool(flagged)})
            with tel.span("cycle.mic.reweight"):
                if (
                    flagged
                    and guard.policy.drift_skips_reweight
                    and self.mic.reweight
                ):
                    gcounters.reweights_skipped += 1
                else:
                    self.mic.update_weights(
                        self.committee, query_votes, truth_dists,
                        active_mask=mask,
                    )
            with tel.span("cycle.mic.retrain"):
                query_images = [dataset[int(i)] for i in query_indices]
                # Harvested straggler labels join this cycle's retraining
                # batch — late answers still teach, they just teach later.
                if straggler_images and not flagged:
                    retrain_images = query_images + straggler_images
                    retrain_labels = np.concatenate(
                        [
                            np.asarray(truthful, dtype=np.int64),
                            np.asarray(straggler_labels, dtype=np.int64),
                        ]
                    )
                    if tel.enabled:
                        tel.counter(
                            "stragglers_retrained_total",
                            help="straggler labels fed into MIC retraining",
                        ).inc(len(straggler_images))
                else:
                    retrain_images, retrain_labels = query_images, truthful
                if flagged:
                    if self.mic.retrain and query_images:
                        gcounters.retrains_skipped += 1
                elif guard is not None:
                    guard.guarded_retrain(
                        self.mic,
                        self.committee,
                        retrain_images,
                        retrain_labels,
                        self.replay_pool,
                        self.rng,
                        gcounters,
                    )
                else:
                    self.mic.retrain_experts(
                        self.committee,
                        retrain_images,
                        retrain_labels,
                        self.replay_pool,
                        self.rng,
                    )
            if jrn is not None:
                jrn.append(cycle.index, "retrain", {})
            with tel.span("cycle.ipd.observe"):
                for result, arm in zip(results, arms):
                    self.ipd.observe(
                        cycle.context, arm, self._observed_delay(result)
                    )
            crowd_delay = float(
                np.mean([self._observed_delay(r) for r in results])
            )
        else:
            truthful = np.empty(0, dtype=np.int64)
            truth_dists = np.empty((0, self.committee.experts[0].n_classes))
            crowd_delay = 0.0
            if straggler_images:
                # Nothing new was queried this cycle, but last cycle's
                # stragglers arrived: retrain on them alone.
                with tel.span("cycle.mic.retrain"):
                    if tel.enabled:
                        tel.counter(
                            "stragglers_retrained_total",
                            help="straggler labels fed into MIC retraining",
                        ).inc(len(straggler_images))
                    labels = np.asarray(straggler_labels, dtype=np.int64)
                    if guard is not None:
                        guard.guarded_retrain(
                            self.mic,
                            self.committee,
                            straggler_images,
                            labels,
                            self.replay_pool,
                            self.rng,
                            gcounters,
                        )
                    else:
                        self.mic.retrain_experts(
                            self.committee,
                            straggler_images,
                            labels,
                            self.replay_pool,
                            self.rng,
                        )
                if jrn is not None:
                    jrn.append(cycle.index, "retrain", {})

        # Final labels: reweighted committee, query set offloaded to the
        # crowd — unless the drift detector flagged this cycle's labels, in
        # which case the committee's own labels stand (labels too anomalous
        # to train on are too anomalous to publish).
        committee_vote = self.committee.committee_vote(dataset, votes, mask=mask)
        committee_labels = np.argmax(committee_vote, axis=1)
        if flagged and guard.policy.drift_skips_offload and self.mic.offload:
            gcounters.offloads_skipped += 1
            final_labels = committee_labels
            final_scores = committee_vote
        else:
            final_labels = self.mic.offload_labels(
                committee_labels, query_indices, truthful
            )
            final_scores = self.mic.offload_distributions(
                committee_vote, query_indices, truth_dists
            )
        if tel.enabled:
            tel.counter(
                "cycles_total", help="sensing cycles completed"
            ).inc()
            tel.counter(
                "queries_posted_total", help="crowd queries paid and kept"
            ).inc(len(results))
            tel.counter(
                "responses_total", help="worker responses received"
            ).inc(sum(len(r.responses) for r in results))
            tel.counter(
                "cost_cents_total", help="crowd spend charged (cents)"
            ).inc(cost)
            for paid in incentives:
                tel.histogram(
                    "incentive_cents", help="paid incentive per query",
                    buckets=(0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0),
                ).observe(paid)
            if crowd_delay:
                tel.histogram(
                    "crowd_delay_seconds", help="mean crowd delay per cycle",
                ).observe(crowd_delay)
            tel.gauge(
                "budget_remaining_cents", help="ledger budget left"
            ).set(self.ledger.remaining)
            # Bridge the cycle's resilience interventions into the registry.
            tel.merge_counters(
                {f"{k}_total": v for k, v in counters.as_dict().items()},
                prefix="resilience_",
                help="resilience interventions (see repro.core.resilience)",
            )
            if guard is not None:
                tel.merge_counters(
                    {f"{k}_total": v for k, v in gcounters.as_dict().items()},
                    prefix="guard_",
                    help="guard interventions (see repro.core.guards)",
                )
            if cache_stats_before is not None:
                after = cache.stats()
                tel.merge_counters(
                    {
                        f"{k}_total": after[k] - v
                        for k, v in cache_stats_before.items()
                    },
                    prefix="cache_",
                    help="prediction/feature cache activity "
                    "(see repro.core.cache)",
                )
        if jrn is not None:
            jrn.append(cycle.index, "cycle_end", {"cost_cents": float(cost)})
        return CycleOutcome(
            cycle_index=cycle.index,
            context=cycle.context,
            true_labels=true_labels,
            final_labels=final_labels,
            final_scores=final_scores,
            query_indices=query_indices,
            incentives_cents=np.array(incentives),
            crowd_delay=crowd_delay,
            cost_cents=cost,
            expert_weights=self.committee.weights,
            resilience=counters,
            guards=gcounters,
        )

    def run(
        self,
        stream: SensingCycleStream,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 1,
        journal=None,
    ) -> RunOutcome:
        """Run the system over an entire sensing-cycle stream.

        With ``checkpoint_path`` set, the full deployment state (system,
        stream, completed outcomes) is snapshotted after every
        ``checkpoint_every`` completed cycles via
        :func:`repro.eval.persistence.save_checkpoint`, so a crashed run
        can continue from the last completed cycle with
        :meth:`resume_from_checkpoint` and produce the same final outcome
        as an uninterrupted run.

        With ``journal`` set (a :class:`repro.eval.journal.CycleJournal`),
        every intra-cycle stage boundary is additionally written ahead to
        the journal and the file is rotated at each checkpoint, so a run
        killed *mid-cycle* can be resumed with
        :func:`repro.eval.journal.resume_run` — journaled crowd posts are
        served from the log instead of being re-posted and re-charged.
        """
        if checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        if checkpoint_path is None and journal is None:
            outcome = RunOutcome()
            for cycle in stream:
                outcome.append(self.run_cycle(cycle))
            return outcome
        return self._run_from(stream, RunOutcome(), 0, checkpoint_path,
                              checkpoint_every, journal=journal)

    def _run_from(
        self,
        stream: SensingCycleStream,
        outcome: RunOutcome,
        start_cycle: int,
        checkpoint_path: str | Path | None,
        checkpoint_every: int,
        journal=None,
    ) -> RunOutcome:
        from repro.eval.persistence import save_checkpoint

        if journal is not None:
            self.journal = journal
        try:
            for t in range(start_cycle, len(stream)):
                outcome.append(self.run_cycle(stream.cycle(t)))
                at_checkpoint = (
                    (t + 1) % checkpoint_every == 0 or t == len(stream) - 1
                )
                if checkpoint_path is not None and at_checkpoint:
                    save_checkpoint(
                        checkpoint_path, self, stream, outcome, t + 1
                    )
                    if journal is not None:
                        # Everything the journal recorded is now inside
                        # the snapshot: rotate to a fresh file whose base
                        # names the checkpoint's resume cycle.
                        journal.rotate(t + 1)
        finally:
            if journal is not None:
                self.journal = None
        return outcome

    @classmethod
    def resume_from_checkpoint(
        cls,
        checkpoint_path: str | Path,
        checkpoint_every: int = 1,
    ) -> RunOutcome:
        """Continue a checkpointed deployment from its last completed cycle.

        Because every stochastic component's state (platform and system
        RNGs, bandit posteriors, committee weights and parameters, ledger)
        is part of the snapshot, the resumed run reproduces exactly the
        outcome the uninterrupted run would have produced.
        """
        from repro.eval.persistence import load_checkpoint

        system, stream, outcome, next_cycle = load_checkpoint(checkpoint_path)
        return system._run_from(
            stream, outcome, next_cycle, checkpoint_path, checkpoint_every
        )
