"""Label-quality model, calibrated to the paper's pilot study (Figure 6).

The pilot found that very low incentives (1-2 cents) depress label quality,
but past ~2 cents quality plateaus around 80% (Wilcoxon tests between
adjacent levels non-significant).  The model expresses this as an additive
effort offset applied to each worker's intrinsic reliability.
"""

from __future__ import annotations

import numpy as np

from repro.crowd.delay import INCENTIVE_LEVELS

__all__ = ["QualityModel"]

# Additive accuracy offset per pilot incentive level.  Tuned so the
# population-average accuracy traces Figure 6: ~0.65 at 1c, ~0.76 at 2c,
# plateau ~0.80-0.82 above.
_QUALITY_OFFSET: dict[float, float] = {
    1.0: -0.15,
    2.0: -0.04,
    4.0: -0.010,
    6.0: 0.000,
    8.0: 0.000,
    10.0: 0.005,
    20.0: 0.015,
}


class QualityModel:
    """Maps incentives to the effort offset on worker accuracy."""

    def offset(self, incentive_cents: float) -> float:
        """Additive accuracy offset for ``incentive_cents`` (interpolated)."""
        if incentive_cents <= 0:
            raise ValueError(f"incentive must be positive, got {incentive_cents}")
        levels = np.array(INCENTIVE_LEVELS)
        offsets = np.array([_QUALITY_OFFSET[level] for level in INCENTIVE_LEVELS])
        log_level = np.log(np.clip(incentive_cents, levels[0], levels[-1]))
        return float(np.interp(log_level, np.log(levels), offsets))

    def effective_accuracy(
        self, reliability: float, incentive_cents: float
    ) -> float:
        """A worker's label accuracy under a given incentive.

        Clipped to [0.05, 0.98]: even careless workers beat random guessing
        slightly, and nobody is perfect.
        """
        if not 0.0 <= reliability <= 1.0:
            raise ValueError(f"reliability must be in [0, 1], got {reliability}")
        return float(
            np.clip(reliability + self.offset(incentive_cents), 0.05, 0.98)
        )
