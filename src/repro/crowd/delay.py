"""Response-delay model, calibrated to the paper's pilot study (Figure 5).

The pilot's observations, which this model encodes:

- **morning / afternoon** — workers are scarce and selective, so delay falls
  steadily as the incentive rises;
- **evening / midnight** — workers are plentiful, so all mid-range incentives
  behave alike: only the very lowest incentive is slower and the very highest
  slightly faster.

Individual responses draw lognormal noise around the context/incentive mean,
scaled by the worker's personal speed factor.
"""

from __future__ import annotations

from math import erf

import numpy as np

from repro.utils.clock import TemporalContext

__all__ = ["INCENTIVE_LEVELS", "DelayModel"]

#: The paper's seven pilot incentive levels, in cents.
INCENTIVE_LEVELS: tuple[float, ...] = (1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 20.0)

# Mean response delay (seconds) per (context, incentive level).  Shapes match
# Figure 5; magnitudes are anchored so a budget-matched fixed policy lands
# near the paper's Table III crowd delays.
_MEAN_DELAY: dict[TemporalContext, dict[float, float]] = {
    TemporalContext.MORNING: {
        1.0: 1150.0, 2.0: 1000.0, 4.0: 840.0, 6.0: 720.0,
        8.0: 620.0, 10.0: 540.0, 20.0: 270.0,
    },
    TemporalContext.AFTERNOON: {
        1.0: 1050.0, 2.0: 900.0, 4.0: 770.0, 6.0: 660.0,
        8.0: 570.0, 10.0: 500.0, 20.0: 255.0,
    },
    TemporalContext.EVENING: {
        1.0: 700.0, 2.0: 330.0, 4.0: 325.0, 6.0: 322.0,
        8.0: 325.0, 10.0: 320.0, 20.0: 295.0,
    },
    TemporalContext.MIDNIGHT: {
        1.0: 750.0, 2.0: 345.0, 4.0: 338.0, 6.0: 335.0,
        8.0: 338.0, 10.0: 330.0, 20.0: 305.0,
    },
}


class DelayModel:
    """Samples worker response delays for (context, incentive) pairs.

    Parameters
    ----------
    noise_sigma:
        Sigma of the lognormal multiplicative noise on each response.
    """

    def __init__(self, noise_sigma: float = 0.30) -> None:
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be >= 0, got {noise_sigma}")
        self.noise_sigma = noise_sigma

    def mean_delay(self, context: TemporalContext, incentive_cents: float) -> float:
        """Expected delay in seconds, interpolating between pilot levels."""
        if incentive_cents <= 0:
            raise ValueError(
                f"incentive must be positive, got {incentive_cents}"
            )
        table = _MEAN_DELAY[context]
        levels = np.array(INCENTIVE_LEVELS)
        means = np.array([table[level] for level in INCENTIVE_LEVELS])
        # log-space interpolation: incentive effects are multiplicative.
        log_level = np.log(np.clip(incentive_cents, levels[0], levels[-1]))
        return float(np.interp(log_level, np.log(levels), means))

    def late_probability(
        self,
        context: TemporalContext,
        incentive_cents: float,
        deadline_seconds: float,
        worker_speed: float = 1.0,
    ) -> float:
        """P(response delay > deadline) under the lognormal model.

        The analytic counterpart of :meth:`sample`: the scheduler and the
        docs use it to predict which (context, incentive) pairs will
        straggle past the sensing-cycle boundary.  ``noise_sigma == 0``
        degenerates to a step function at the mean.
        """
        if deadline_seconds <= 0:
            raise ValueError(
                f"deadline must be positive, got {deadline_seconds}"
            )
        if worker_speed <= 0:
            raise ValueError(f"worker_speed must be positive, got {worker_speed}")
        mean = self.mean_delay(context, incentive_cents) / worker_speed
        if self.noise_sigma == 0:
            return 1.0 if mean > deadline_seconds else 0.0
        mu = np.log(mean) - 0.5 * self.noise_sigma**2
        # P(X > d) for X ~ LogNormal(mu, sigma), via the normal CDF.
        z = (np.log(deadline_seconds) - mu) / self.noise_sigma
        return float(0.5 * (1.0 - erf(z / np.sqrt(2.0))))

    def sample(
        self,
        context: TemporalContext,
        incentive_cents: float,
        rng: np.random.Generator,
        worker_speed: float = 1.0,
    ) -> float:
        """Draw one response delay.

        ``worker_speed`` scales the mean (a value of 2 means twice as fast).
        """
        if worker_speed <= 0:
            raise ValueError(f"worker_speed must be positive, got {worker_speed}")
        mean = self.mean_delay(context, incentive_cents) / worker_speed
        # Lognormal parameterized so the *mean* equals ``mean``.
        mu = np.log(mean) - 0.5 * self.noise_sigma**2
        return float(rng.lognormal(mu, self.noise_sigma))
