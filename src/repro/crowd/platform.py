"""The black-box crowdsourcing platform (MTurk stand-in).

The requester-facing API is deliberately narrow, matching §III-B's black-box
observations: you can only post queries with incentives and receive
responses — no worker selection, no visibility into the pool.  Internally
the platform draws workers by context-dependent availability, samples their
labels/questionnaires through the quality model, and their delays through the
delay model.

The platform also keeps the per-worker response history that the *Filtering*
quality-control baseline consumes (worker ids and their past labels are
visible on real MTurk through HIT bookkeeping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.bandit.budget import BudgetExhausted, BudgetLedger
from repro.crowd.delay import DelayModel
from repro.crowd.faults import FaultInjector, PlatformUnavailable
from repro.crowd.population import WorkerPopulation
from repro.crowd.quality import QualityModel
from repro.crowd.scheduler import PendingResponse, VirtualTimeScheduler
from repro.crowd.tasks import CrowdQuery, QueryResult, WorkerResponse
from repro.data.metadata import ImageMetadata
from repro.telemetry.runtime import Telemetry, get_telemetry
from repro.utils.clock import TemporalContext

__all__ = ["WorkerHistoryEntry", "BatchPostResult", "CrowdsourcingPlatform"]


@dataclass(frozen=True)
class WorkerHistoryEntry:
    """One historical (worker, query) interaction, for quality filtering."""

    worker_id: int
    query_id: int
    label: int
    correct: bool | None  # None when ground truth was never revealed


@dataclass
class BatchPostResult:
    """Outcome of :meth:`CrowdsourcingPlatform.post_queries`.

    Holds every query that completed before the batch stopped, plus the
    error (if any) that stopped it — a mid-batch outage no longer discards
    the work (and money) already committed.  Iterates and lengths like the
    plain result list, so existing call sites keep working.
    """

    results: list[QueryResult] = field(default_factory=list)
    error: Exception | None = None

    @property
    def ok(self) -> bool:
        """Whether the whole batch completed."""
        return self.error is None

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index):
        return self.results[index]


@dataclass
class CrowdsourcingPlatform:
    """Simulated MTurk: post queries, get noisy timed responses back.

    Parameters
    ----------
    population:
        The (hidden) worker pool.
    delay_model, quality_model:
        Behavioural models calibrated to the paper's pilot study.
    rng:
        Randomness source for worker draws and response noise.
    workers_per_query:
        HIT assignments per query (the paper uses 5).
    faults:
        Optional chaos-engineering hook (see :mod:`repro.crowd.faults`).
        ``None`` (default) leaves every code path exactly as it was.
    telemetry:
        Optional :class:`~repro.telemetry.runtime.Telemetry` pipeline;
        ``None`` resolves the process default (the no-op singleton unless
        a trace run swapped one in).
    scheduler:
        Optional :class:`~repro.crowd.scheduler.VirtualTimeScheduler`.
        When attached, responses that miss ``deadline_seconds`` are not
        discarded but become pending arrival events, harvested by
        :meth:`collect_stragglers` once virtual time catches up to them.
        ``None`` (default) keeps the synchronous drop-late behaviour.
    """

    population: WorkerPopulation
    delay_model: DelayModel
    quality_model: QualityModel
    rng: np.random.Generator
    workers_per_query: int = 5
    faults: FaultInjector | None = None
    telemetry: Telemetry | None = None
    scheduler: VirtualTimeScheduler | None = None
    #: Capacity-accounting observer (see :mod:`repro.serve.pool`): called
    #: with every :class:`QueryResult` this platform produces, live or
    #: journal-replayed, so a shared crowd pool can meter actual worker
    #: assignments.  Never pickled — observers are per-process wiring.
    on_post: Callable[[QueryResult], None] | None = field(
        default=None, repr=False
    )
    _next_query_id: int = field(default=0, init=False)
    _history: list[WorkerHistoryEntry] = field(default_factory=list, init=False)
    _history_by_query: dict[int, list[int]] = field(
        default_factory=dict, init=False
    )
    _history_seen: set[tuple[int, int]] = field(default_factory=set, init=False)
    _worker_stats: dict[int, list[int]] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        if self.workers_per_query <= 0:
            raise ValueError("workers_per_query must be positive")

    def post_query(
        self,
        metadata: ImageMetadata,
        incentive_cents: float,
        context: TemporalContext,
        ledger: BudgetLedger | None = None,
        deadline_seconds: float | None = None,
    ) -> QueryResult:
        """Post one image query and collect worker responses.

        The incentive is charged once per query against ``ledger`` when one
        is provided (raises :class:`~repro.bandit.budget.BudgetExhausted` if
        it does not fit).

        ``deadline_seconds`` models the DDA application's real-time
        constraint: responses arriving after the deadline (e.g. the end of
        the 10-minute sensing cycle) are never seen by the requester and
        are dropped from the result.  The incentive is still spent — slow
        crowds waste money, which is exactly why IPD exists.  ``None``
        (default) waits for everyone, matching the paper's evaluation,
        which measures delays rather than truncating them.

        Under fault injection the query may additionally raise
        :class:`~repro.crowd.faults.PlatformUnavailable` (before any
        charge), lose workers to abandonment, or return corrupted,
        duplicated or unattributable responses — possibly none at all.
        """
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError(
                f"deadline must be positive, got {deadline_seconds}"
            )
        tel = self.telemetry if self.telemetry is not None else get_telemetry()
        with tel.span("platform.post_query", context=context.value) as span:
            if self.faults is not None:
                try:
                    self.faults.on_post_attempt()
                except Exception:  # PlatformUnavailable (span tags the error)
                    tel.counter(
                        "platform_outages_total",
                        help="posts rejected by a platform outage",
                    ).inc()
                    raise
            if ledger is not None:
                ledger.charge(incentive_cents)
            query = CrowdQuery(
                query_id=self._next_query_id,
                image_id=metadata.image_id,
                incentive_cents=incentive_cents,
                context=context,
            )
            self._next_query_id += 1
            workers = self.population.sample_workers(
                self.workers_per_query, context, self.rng
            )
            result = QueryResult(query=query, deadline_seconds=deadline_seconds)
            late = 0
            for worker in workers:
                if self.faults is not None and self.faults.worker_abandons():
                    continue  # the HIT was accepted but never submitted
                label = worker.answer_label(
                    metadata, incentive_cents, self.quality_model, self.rng
                )
                questionnaire = worker.answer_questionnaire(
                    metadata, incentive_cents, self.quality_model, self.rng
                )
                delay = self.delay_model.sample(
                    context, incentive_cents, self.rng, worker_speed=worker.speed
                )
                response = WorkerResponse(
                    worker_id=worker.worker_id,
                    label=label,
                    questionnaire=questionnaire,
                    delay_seconds=delay,
                )
                arrived = (
                    [response]
                    if self.faults is None
                    else self.faults.transform_response(response, metadata)
                )
                for response in arrived:
                    # The deadline applies to the *realized* delay — a
                    # delay-spike fault can push an on-time answer past the
                    # cutoff, which is the interesting time-domain failure.
                    if (
                        deadline_seconds is not None
                        and response.delay_seconds > deadline_seconds
                    ):
                        late += 1
                        if self.scheduler is not None and not self.scheduler.schedule(
                            query, response
                        ):
                            tel.counter(
                                "stragglers_expired_total",
                                help="late responses aged out before harvest",
                            ).inc()
                        continue  # never seen within this sensing cycle
                    result.responses.append(response)
                    self._record_history(
                        WorkerHistoryEntry(
                            worker_id=response.worker_id,
                            query_id=query.query_id,
                            label=int(response.label),
                            correct=None,
                        )
                    )
            result.n_late = late
            if tel.enabled:
                span.set(query_id=query.query_id,
                         responses=len(result.responses))
                tel.counter(
                    "platform_queries_total", help="queries posted and charged"
                ).inc()
                tel.counter(
                    "platform_responses_total",
                    help="worker responses delivered to the requester",
                ).inc(len(result.responses))
                if late:
                    tel.counter(
                        "platform_late_responses_total",
                        help="responses that missed the requester deadline",
                    ).inc(late)
                    tel.counter(
                        "platform_late_responses_total",
                        help="responses that missed the requester deadline",
                        context=context.value,
                    ).inc(late)
                for response in result.responses:
                    tel.histogram(
                        "platform_response_delay_seconds",
                        help="per-response worker delay",
                        context=context.value,
                    ).observe(response.delay_seconds)
        on_post = getattr(self, "on_post", None)
        if on_post is not None:
            on_post(result)
        return result

    def restore_posted_query(
        self,
        query: CrowdQuery,
        responses: list[WorkerResponse],
        scheduled: list[tuple[float, int, float, WorkerResponse]],
        n_late: int,
        n_expired: int,
        rng_state: dict,
        ledger: BudgetLedger | None,
        paid_cents: float,
        deadline_seconds: float | None = None,
    ) -> QueryResult:
        """Re-apply a journaled post without re-running the crowd.

        Journal replay after a mid-cycle crash must reproduce a post's
        *effects* — the charge, the query id, the delivered responses, the
        scheduler's arrival events, the worker history — without posting
        anything: the money was already spent and the workers already
        answered.  ``rng_state`` is the platform generator's state captured
        right after the original post, so live posts that follow the
        replayed ones continue the original draw sequence exactly.

        ``scheduled`` carries ``(arrival_time, seq, posted_at, response)``
        tuples for late responses that entered the virtual-time heap;
        ``n_expired`` is how many aged out at scheduling time.  Raises
        :class:`ValueError` if ``query.query_id`` is not the next id this
        platform would assign — the journal and platform have diverged and
        replaying would forge or duplicate a post.
        """
        if query.query_id != self._next_query_id:
            raise ValueError(
                f"journaled query id {query.query_id} does not match the "
                f"platform's next id {self._next_query_id}; refusing to "
                "replay a duplicate or out-of-order post"
            )
        tel = self.telemetry if self.telemetry is not None else get_telemetry()
        if ledger is not None:
            # The restored ledger predates this post (the checkpoint was
            # taken a cycle earlier), so the journaled charge is applied
            # exactly once here — never against a live platform.
            ledger.charge(paid_cents)
        self._next_query_id += 1
        result = QueryResult(query=query, deadline_seconds=deadline_seconds)
        for response in responses:
            result.responses.append(response)
            self._record_history(
                WorkerHistoryEntry(
                    worker_id=response.worker_id,
                    query_id=query.query_id,
                    label=int(response.label),
                    correct=None,
                )
            )
        result.n_late = n_late
        if self.scheduler is not None:
            for arrival_time, seq, posted_at, response in scheduled:
                self.scheduler.restore_event(
                    arrival_time, seq, query, response, posted_at
                )
            self.scheduler.expired_total += int(n_expired)
        self.rng.bit_generator.state = rng_state
        if tel.enabled:
            tel.counter(
                "platform_queries_total", help="queries posted and charged"
            ).inc()
            tel.counter(
                "platform_responses_total",
                help="worker responses delivered to the requester",
            ).inc(len(result.responses))
            if n_late:
                tel.counter(
                    "platform_late_responses_total",
                    help="responses that missed the requester deadline",
                ).inc(n_late)
                tel.counter(
                    "platform_late_responses_total",
                    help="responses that missed the requester deadline",
                    context=query.context.value,
                ).inc(n_late)
            if n_expired:
                tel.counter(
                    "stragglers_expired_total",
                    help="late responses aged out before harvest",
                ).inc(n_expired)
            for response in result.responses:
                tel.histogram(
                    "platform_response_delay_seconds",
                    help="per-response worker delay",
                    context=query.context.value,
                ).observe(response.delay_seconds)
        on_post = getattr(self, "on_post", None)
        if on_post is not None:
            # Replays meter capacity exactly like the original posts did,
            # so a resumed pool's books match the uninterrupted run's.
            on_post(result)
        return result

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["on_post"] = None  # observer closures never cross processes
        return state

    def _record_history(self, entry: WorkerHistoryEntry) -> None:
        # One history row per (worker, query): duplicate-response faults
        # redeliver the same submission, and the Filtering baseline must not
        # double-count it.  Unattributable (worker_id < 0) responses carry
        # no identity to dedupe on, so each one stays a separate row.
        if entry.worker_id >= 0:
            key = (entry.worker_id, entry.query_id)
            if key in self._history_seen:
                return
            self._history_seen.add(key)
        self._history_by_query.setdefault(entry.query_id, []).append(
            len(self._history)
        )
        self._history.append(entry)

    def post_queries(
        self,
        metadatas: list[ImageMetadata],
        incentive_cents: float,
        context: TemporalContext,
        ledger: BudgetLedger | None = None,
        deadline_seconds: float | None = None,
    ) -> BatchPostResult:
        """Post a batch of queries at a shared incentive level.

        Queries post sequentially; if one raises
        :class:`~repro.crowd.faults.PlatformUnavailable` or
        :class:`~repro.bandit.budget.BudgetExhausted` mid-batch, the work
        (and money) already committed is *kept*: the partial results come
        back on :class:`BatchPostResult` together with the error instead of
        the whole batch being discarded.  ``deadline_seconds`` is forwarded
        to every query.
        """
        batch = BatchPostResult()
        for meta in metadatas:
            try:
                batch.results.append(
                    self.post_query(
                        meta,
                        incentive_cents,
                        context,
                        ledger,
                        deadline_seconds=deadline_seconds,
                    )
                )
            except (PlatformUnavailable, BudgetExhausted) as exc:
                batch.error = exc
                break
        return batch

    def collect_stragglers(
        self, now: float | None = None
    ) -> list[PendingResponse]:
        """Harvest late responses whose virtual arrival time has passed.

        Each harvested response is recorded in the worker history (deduped
        like any other delivery) so :meth:`reveal_ground_truth` can grade
        it; the caller decides what to do with the labels (CrowdLearn feeds
        them back into CQC fusion and MIC retraining).  Returns an empty
        list when no scheduler is attached.
        """
        if self.scheduler is None:
            return []
        events = self.scheduler.collect_due(now)
        tel = self.telemetry if self.telemetry is not None else get_telemetry()
        for event in events:
            self._record_history(
                WorkerHistoryEntry(
                    worker_id=event.response.worker_id,
                    query_id=event.query.query_id,
                    label=int(event.response.label),
                    correct=None,
                )
            )
        if events and tel.enabled:
            tel.counter(
                "stragglers_harvested_total",
                help="late responses harvested into later cycles",
            ).inc(len(events))
            for event in events:
                tel.histogram(
                    "straggler_age_seconds",
                    help="posting-to-harvest age of straggler responses",
                ).observe(event.age_seconds)
        return events

    def reveal_ground_truth(self, query_id: int, true_label: int) -> None:
        """Mark history entries of ``query_id`` as correct/incorrect.

        Called by quality-control schemes once a truthful label is known, so
        worker track records accumulate (used by the Filtering baseline).
        History entries are indexed by query id, so grading stays O(workers
        per query) rather than rescanning the whole deployment's history;
        per-worker graded/correct tallies are maintained incrementally.
        Safe to call again for the same query (e.g. after a straggler
        harvest added responses): already-graded entries are re-checked
        without double-counting.
        """
        for i in self._history_by_query.get(query_id, ()):
            entry = self._history[i]
            correct = entry.label == int(true_label)
            stats = self._worker_stats.setdefault(entry.worker_id, [0, 0])
            if entry.correct is None:
                stats[0] += 1
                stats[1] += int(correct)
            elif entry.correct != correct:
                stats[1] += 1 if correct else -1
            self._history[i] = WorkerHistoryEntry(
                worker_id=entry.worker_id,
                query_id=entry.query_id,
                label=entry.label,
                correct=correct,
            )

    def worker_track_record(self, worker_id: int) -> tuple[int, int]:
        """(graded responses, correct responses) for one worker.

        Served from a running per-worker index updated by
        :meth:`reveal_ground_truth`, so the per-cycle worker-reliability
        sweep stays O(workers) instead of O(workers × history).
        """
        graded, correct = self._worker_stats.get(worker_id, (0, 0))
        return graded, correct

    @property
    def n_queries_posted(self) -> int:
        """Total queries posted so far."""
        return self._next_query_id

    @property
    def history(self) -> list[WorkerHistoryEntry]:
        """The full interaction history (read-only view by convention)."""
        return self._history
