"""Crowd query / response records (Definitions 2-3).

A :class:`CrowdQuery` is one image posted to the platform with an incentive;
the platform returns a :class:`QueryResult` bundling the individual
:class:`WorkerResponse` records (label + questionnaire answers + delay).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.metadata import DamageLabel, SceneType
from repro.utils.clock import TemporalContext

__all__ = ["QuestionnaireAnswers", "WorkerResponse", "CrowdQuery", "QueryResult"]


@dataclass(frozen=True)
class QuestionnaireAnswers:
    """Fixed-form questionnaire answers (the worker's evidence).

    The paper's queries solicit, besides the label, a set of fixed-form
    questions capturing context the AI cannot extract: whether the image is
    photoshopped, what it depicts, and what is actually happening in it.
    """

    says_fake: bool
    scene: SceneType
    says_people_in_danger: bool

    def encode(self) -> np.ndarray:
        """Encode the answers as a flat feature vector (for CQC).

        Layout: [fake_flag, one-hot scene (5), danger_flag] → 7 features.
        """
        scene_onehot = np.zeros(len(SceneType))
        scene_onehot[list(SceneType).index(self.scene)] = 1.0
        return np.concatenate(
            [[float(self.says_fake)], scene_onehot, [float(self.says_people_in_danger)]]
        )

    @staticmethod
    def encoded_dim() -> int:
        """Dimensionality of :meth:`encode`'s output."""
        return 2 + len(SceneType)


@dataclass(frozen=True)
class WorkerResponse:
    """One worker's answer to one query."""

    worker_id: int
    label: DamageLabel
    questionnaire: QuestionnaireAnswers
    delay_seconds: float

    def __post_init__(self) -> None:
        if self.delay_seconds < 0:
            raise ValueError(
                f"delay must be non-negative, got {self.delay_seconds}"
            )


@dataclass(frozen=True)
class CrowdQuery:
    """A query q_x^t: one image sent to the platform with an incentive b_x^t."""

    query_id: int
    image_id: int
    incentive_cents: float
    context: TemporalContext

    def __post_init__(self) -> None:
        if self.incentive_cents <= 0:
            raise ValueError(
                f"incentive must be positive, got {self.incentive_cents}"
            )


@dataclass
class QueryResult:
    """The platform's response r_x^t to one query.

    When the platform enforces a deadline, ``responses`` holds only the
    answers that arrived in time; ``n_late`` counts the workers whose
    (already paid-for) answers missed it, and ``deadline_seconds`` records
    the deadline that was applied.  Harvested stragglers are appended back
    onto ``responses`` in later cycles.
    """

    query: CrowdQuery
    responses: list[WorkerResponse] = field(default_factory=list)
    n_late: int = 0
    deadline_seconds: float | None = None

    @property
    def mean_delay(self) -> float:
        """Average response delay over the workers that answered."""
        if not self.responses:
            raise ValueError("query received no responses")
        return float(np.mean([r.delay_seconds for r in self.responses]))

    def realized_mean_delay(self) -> float:
        """Mean delay as the requester *experienced* it under the deadline.

        Each late worker contributes the full deadline — the requester
        waited that long and then moved on, so the deadline is the realized
        cost of that response.  With no deadline (or no late responses)
        this equals :attr:`mean_delay`.
        """
        if self.deadline_seconds is None or self.n_late == 0:
            return self.mean_delay
        total = sum(
            min(r.delay_seconds, self.deadline_seconds) for r in self.responses
        )
        total += self.n_late * self.deadline_seconds
        count = len(self.responses) + self.n_late
        if count == 0:
            raise ValueError("query received no responses")
        return float(total / count)

    @property
    def max_delay(self) -> float:
        """Delay until the last worker answered."""
        if not self.responses:
            raise ValueError("query received no responses")
        return float(max(r.delay_seconds for r in self.responses))

    def labels(self) -> np.ndarray:
        """The raw worker labels as an int array."""
        return np.array([int(r.label) for r in self.responses], dtype=np.int64)

    def worker_ids(self) -> list[int]:
        """IDs of the workers that answered, in response order."""
        return [r.worker_id for r in self.responses]
