"""The worker population behind the black-box platform.

Workers are heterogeneous: reliability ~ Beta(16, 4) (mean 0.8, matching the
pilot's ~80% average label accuracy), insight ~ Beta(6, 2), speed lognormal
around 1.  Availability varies by temporal context — the pool is busiest in
the evening and at midnight, which is what flattens the incentive-delay curve
there (Figure 5's story).
"""

from __future__ import annotations

import numpy as np

from repro.crowd.worker import Worker
from repro.utils.clock import TemporalContext

__all__ = ["WorkerPopulation"]

_ACTIVITY_BASE: dict[TemporalContext, float] = {
    TemporalContext.MORNING: 0.5,
    TemporalContext.AFTERNOON: 0.6,
    TemporalContext.EVENING: 1.0,
    TemporalContext.MIDNIGHT: 0.9,
}


class WorkerPopulation:
    """A fixed pool of simulated workers.

    Parameters
    ----------
    n_workers:
        Pool size; the paper's platform draws from a large anonymous pool,
        so the default keeps repeat assignments per worker low but non-zero
        (the Filtering baseline needs some per-worker history).
    rng:
        Randomness for generating worker attributes.
    """

    def __init__(self, n_workers: int = 120, rng: np.random.Generator | None = None):
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        if rng is None:
            rng = np.random.default_rng()
        self.workers: list[Worker] = []
        for worker_id in range(n_workers):
            activity = {
                context: float(
                    np.clip(_ACTIVITY_BASE[context] * rng.uniform(0.5, 1.5), 0.05, 2.0)
                )
                for context in TemporalContext
            }
            self.workers.append(
                Worker(
                    worker_id=worker_id,
                    reliability=float(np.clip(rng.beta(16.0, 4.0), 0.3, 0.99)),
                    insight=float(np.clip(rng.beta(6.0, 2.0), 0.05, 0.99)),
                    speed=float(np.clip(rng.lognormal(0.0, 0.25), 0.4, 2.5)),
                    activity=activity,
                )
            )

    def __len__(self) -> int:
        return len(self.workers)

    def __getitem__(self, worker_id: int) -> Worker:
        return self.workers[worker_id]

    def mean_reliability(self) -> float:
        """Population-average reliability (should hover near 0.8)."""
        return float(np.mean([w.reliability for w in self.workers]))

    def capacity_per_cycle(
        self, workers_per_query: int, utilization: float = 1.0
    ) -> int:
        """Nominal queries this pool can absorb in one sensing cycle.

        Each worker handles roughly one HIT per cycle, and every query
        fans out to ``workers_per_query`` assignments, so the pool
        saturates at ``n_workers * utilization / workers_per_query``
        concurrent queries.  The serving layer uses this as the default
        cross-event capacity when none is configured explicitly.
        """
        if workers_per_query <= 0:
            raise ValueError(
                f"workers_per_query must be positive, got {workers_per_query}"
            )
        if not 0.0 < utilization <= 1.0:
            raise ValueError(
                f"utilization must be in (0, 1], got {utilization}"
            )
        return max(1, int(len(self.workers) * utilization) // workers_per_query)

    def sample_workers(
        self,
        k: int,
        context: TemporalContext,
        rng: np.random.Generator,
    ) -> list[Worker]:
        """Draw ``k`` distinct workers, weighted by context availability.

        This is the platform's opaque worker-assignment step: the requester
        cannot choose who answers (black-box observation 1 in §III-B).
        """
        if not 1 <= k <= len(self.workers):
            raise ValueError(
                f"k must be in [1, {len(self.workers)}], got {k}"
            )
        weights = np.array([w.activity[context] for w in self.workers])
        probs = weights / weights.sum()
        chosen = rng.choice(len(self.workers), size=k, replace=False, p=probs)
        return [self.workers[int(i)] for i in chosen]
