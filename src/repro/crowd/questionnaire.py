"""Questionnaire definition and query-level feature encoding for CQC.

The paper's queries pair the severity label with fixed-form evidence
questions ("Is the image photoshopped?", "Does this image show damage of a
road?", ...).  CQC consumes a *query-level* feature vector summarizing all
workers' labels and answers; this module defines that encoding.
"""

from __future__ import annotations

import numpy as np

from repro.crowd.tasks import QueryResult
from repro.data.metadata import DamageLabel, SceneType

__all__ = ["QUESTIONS", "encode_query_features", "feature_names"]

#: Human-readable fixed-form questions, for documentation and UIs.
QUESTIONS: tuple[str, ...] = (
    "Is the image photoshopped (i.e., a fake image)?",
    "What does the image show? (road / building / bridge / vehicle / people)",
    "Are people in danger or being rescued in this image?",
)


def encode_query_features(result: QueryResult) -> np.ndarray:
    """Encode one query's crowd responses as a fixed-length feature vector.

    Layout (11 features):

    - 3: fraction of workers voting each severity label;
    - 1: fraction answering "fake";
    - 5: fraction choosing each scene type;
    - 1: fraction answering "people in danger";
    - 1: label vote margin (top fraction minus runner-up), a confidence cue.

    A query with no responses (total abandonment, platform fault) encodes
    as the all-zero vector: no votes, no evidence, zero margin — a valid,
    finite input rather than a crash or NaN.
    """
    if not result.responses:
        return np.zeros(DamageLabel.count() + 1 + len(SceneType) + 1 + 1)
    n = len(result.responses)
    label_votes = np.zeros(DamageLabel.count())
    scene_votes = np.zeros(len(SceneType))
    fake_votes = 0.0
    danger_votes = 0.0
    scenes = list(SceneType)
    for response in result.responses:
        label_votes[int(response.label)] += 1.0
        scene_votes[scenes.index(response.questionnaire.scene)] += 1.0
        fake_votes += float(response.questionnaire.says_fake)
        danger_votes += float(response.questionnaire.says_people_in_danger)
    label_votes /= n
    scene_votes /= n
    sorted_votes = np.sort(label_votes)[::-1]
    margin = sorted_votes[0] - sorted_votes[1]
    return np.concatenate(
        [label_votes, [fake_votes / n], scene_votes, [danger_votes / n], [margin]]
    )


def feature_names() -> list[str]:
    """Names of the features produced by :func:`encode_query_features`."""
    names = [f"label_frac_{label.name.lower()}" for label in DamageLabel]
    names.append("frac_says_fake")
    names.extend(f"scene_frac_{scene.value}" for scene in SceneType)
    names.append("frac_says_danger")
    names.append("label_vote_margin")
    return names
