"""Fault injection for the crowd–AI closed loop (chaos engineering).

The reproduction's default platform is perfectly behaved: every posted query
returns exactly ``workers_per_query`` responses, on time, every time.  Real
crowdsourcing deployments are not — workers abandon HITs mid-task, spammers
answer at random, adversaries answer *wrong on purpose*, response times
spike, the platform itself goes down.  This module makes those conditions
reproducible: a declarative :class:`FaultPlan` describes *what* goes wrong
and a stateful :class:`FaultInjector` (with its own RNG, so the fault-free
draw sequence is untouched) decides *when*.

The injector plugs into :class:`~repro.crowd.platform.CrowdsourcingPlatform`
via its optional ``faults`` field; with ``faults=None`` (the default) the
platform's behaviour is bit-for-bit what it was before this module existed.

Fault taxonomy (see ``docs/FAULT_MODEL.md``):

==================  ========================================================
fault               effect on one posted query
==================  ========================================================
outage window       :class:`PlatformUnavailable` raised before any charge
abandonment         a sampled worker never submits a response
spam                a response's label and questionnaire are random noise
adversarial         a response is deliberately wrong (label and evidence)
delay spike         a response's delay is multiplied by a large factor
duplicate           a response is submitted twice (double bookkeeping)
malformed           a response arrives unattributable (``worker_id = -1``)
==================  ========================================================
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time
from dataclasses import dataclass, field

import numpy as np

from repro.crowd.tasks import QuestionnaireAnswers, WorkerResponse
from repro.data.metadata import DamageLabel, ImageMetadata, SceneType

__all__ = ["PlatformUnavailable", "InjectedCrash", "CrashPoint",
           "FaultPlan", "FaultInjector"]

#: Names of the per-fault event counters a :class:`FaultInjector` keeps.
FAULT_KINDS: tuple[str, ...] = (
    "outages",
    "abandonments",
    "spam",
    "adversarial",
    "delay_spikes",
    "duplicates",
    "malformed",
    "crashes",
)

#: Actions a :class:`CrashPoint` may take when its boundary is reached.
CRASH_ACTIONS: tuple[str, ...] = ("raise", "kill", "hang")


class PlatformUnavailable(RuntimeError):
    """Raised when a query is posted during a platform outage window.

    Raised *before* the ledger is charged — an unreachable platform cannot
    take your money — so the caller can retry or give up without refunding.
    """


class InjectedCrash(RuntimeError):
    """Raised by a :class:`CrashPoint` with ``action="raise"``.

    Models a process that dies mid-cycle with a Python-level failure (the
    ``"kill"`` action models the harder SIGKILL case).  The loop never
    catches it: it propagates out of ``run_cycle`` so the process exits and
    the supervisor (or a test) resumes from checkpoint + journal.
    """


@dataclass(frozen=True)
class CrashPoint:
    """Crash the process at a named journal stage boundary.

    Boundaries are the write-ahead-journal record points inside
    ``run_cycle`` (``cycle_start``, ``harvest``, ``qss``, ``post_intent``,
    ``post``, ``cqc``, ``guard``, ``retrain``, ``cycle_end``) plus the
    checkpoint-time ``rotate``.  The crash fires the ``occurrence``-th time
    (0-based) the ``(stage, cycle)`` boundary is reached in this process.

    Parameters
    ----------
    stage:
        Journal stage name to crash at.
    cycle:
        Cycle index to match, or ``None`` for any cycle.
    occurrence:
        Which occurrence of the boundary within the matched cycle (0-based;
        e.g. ``post`` fires once per posted query).
    action:
        ``"raise"`` raises :class:`InjectedCrash`; ``"kill"`` SIGKILLs the
        process (no chance to clean up); ``"hang"`` sleeps forever so a
        supervisor's watchdog must detect the stall.
    """

    stage: str
    cycle: int | None = None
    occurrence: int = 0
    action: str = "raise"

    def __post_init__(self) -> None:
        if not self.stage:
            raise ValueError("crash point needs a stage name")
        if self.cycle is not None and self.cycle < 0:
            raise ValueError(f"cycle must be >= 0, got {self.cycle}")
        if self.occurrence < 0:
            raise ValueError(
                f"occurrence must be >= 0, got {self.occurrence}"
            )
        if self.action not in CRASH_ACTIONS:
            raise ValueError(
                f"action must be one of {CRASH_ACTIONS}, got {self.action!r}"
            )

    def matches(self, stage: str, cycle: int, occurrence: int) -> bool:
        """Whether this point fires at the given boundary occurrence."""
        return (
            stage == self.stage
            and (self.cycle is None or cycle == self.cycle)
            and occurrence == self.occurrence
        )

    def spec(self) -> str:
        """The ``stage[:cycle[:occurrence[:action]]]`` string form."""
        cycle = "*" if self.cycle is None else str(self.cycle)
        return f"{self.stage}:{cycle}:{self.occurrence}:{self.action}"

    @classmethod
    def parse(cls, spec: str) -> "CrashPoint":
        """Parse ``stage[:cycle[:occurrence[:action]]]`` (cycle ``*`` = any).

        Examples: ``post``, ``cqc:1``, ``post:1:2``, ``retrain:2:0:kill``.
        """
        parts = spec.strip().split(":")
        if not parts or not parts[0]:
            raise ValueError(f"empty crash-point spec: {spec!r}")
        if len(parts) > 4:
            raise ValueError(
                f"crash-point spec has too many fields: {spec!r} "
                "(want stage[:cycle[:occurrence[:action]]])"
            )
        stage = parts[0]
        cycle = None
        if len(parts) > 1 and parts[1] not in ("", "*"):
            cycle = int(parts[1])
        occurrence = int(parts[2]) if len(parts) > 2 and parts[2] else 0
        action = parts[3] if len(parts) > 3 and parts[3] else "raise"
        return cls(stage=stage, cycle=cycle, occurrence=occurrence,
                   action=action)


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults to inject.

    All rates are independent per-event probabilities in ``[0, 1]``.
    ``outage_windows`` are half-open ``[start, end)`` intervals counted in
    *post attempts* (every :meth:`CrowdsourcingPlatform.post_query` call,
    including ones that fail): a plan can take the platform down for a
    stretch of the deployment and bring it back.

    Parameters
    ----------
    abandonment_rate:
        Probability a sampled worker abandons the HIT (no response).
    spam_rate:
        Probability a response is replaced with uniform-random noise.
    adversarial_rate:
        Probability a response is deliberately wrong: a non-true label and
        inverted questionnaire evidence.
    delay_spike_rate, delay_spike_factor:
        Probability a response's delay is multiplied by the factor.
    duplicate_rate:
        Probability a response is submitted twice.
    malformed_rate:
        Probability a response arrives unattributable: ``worker_id = -1``
        and a uniform-random label (broken client / dropped metadata).
    outage_windows:
        ``[start, end)`` post-attempt intervals during which every post
        raises :class:`PlatformUnavailable`.
    crash_points:
        :class:`CrashPoint` instances that terminate the process at named
        journal stage boundaries (crash-recovery chaos).
    """

    abandonment_rate: float = 0.0
    spam_rate: float = 0.0
    adversarial_rate: float = 0.0
    delay_spike_rate: float = 0.0
    delay_spike_factor: float = 5.0
    duplicate_rate: float = 0.0
    malformed_rate: float = 0.0
    outage_windows: tuple[tuple[int, int], ...] = ()
    crash_points: tuple[CrashPoint, ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "abandonment_rate",
            "spam_rate",
            "adversarial_rate",
            "delay_spike_rate",
            "duplicate_rate",
            "malformed_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.delay_spike_factor < 1.0:
            raise ValueError(
                f"delay_spike_factor must be >= 1, got {self.delay_spike_factor}"
            )
        for window in self.outage_windows:
            if len(window) != 2:
                raise ValueError(f"outage window must be (start, end): {window}")
            start, end = window
            if start < 0 or end <= start:
                raise ValueError(
                    f"outage window must satisfy 0 <= start < end: {window}"
                )
        for point in self.crash_points:
            if not isinstance(point, CrashPoint):
                raise ValueError(f"not a CrashPoint: {point!r}")

    def as_dict(self) -> dict:
        """JSON-safe form; crash points serialize as their spec strings.

        The serving layer's manifest persists per-event fault plans this
        way so :meth:`CrowdLearnService.resume` can re-arm injectors for
        events rebuilt without a checkpoint.
        """
        return {
            "abandonment_rate": self.abandonment_rate,
            "spam_rate": self.spam_rate,
            "adversarial_rate": self.adversarial_rate,
            "delay_spike_rate": self.delay_spike_rate,
            "delay_spike_factor": self.delay_spike_factor,
            "duplicate_rate": self.duplicate_rate,
            "malformed_rate": self.malformed_rate,
            "outage_windows": [
                [int(start), int(end)] for start, end in self.outage_windows
            ],
            "crash_points": [point.spec() for point in self.crash_points],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`as_dict` (ignores unknown keys)."""
        rates = {
            name: data[name]
            for name in (
                "abandonment_rate", "spam_rate", "adversarial_rate",
                "delay_spike_rate", "delay_spike_factor",
                "duplicate_rate", "malformed_rate",
            )
            if name in data
        }
        return cls(
            outage_windows=tuple(
                (int(start), int(end))
                for start, end in data.get("outage_windows", ())
            ),
            crash_points=tuple(
                CrashPoint.parse(spec)
                for spec in data.get("crash_points", ())
            ),
            **rates,
        )

    def is_noop(self) -> bool:
        """Whether this plan injects nothing at all."""
        return (
            self.abandonment_rate == 0.0
            and self.spam_rate == 0.0
            and self.adversarial_rate == 0.0
            and self.delay_spike_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.malformed_rate == 0.0
            and not self.outage_windows
            and not self.crash_points
        )

    def scaled(self, intensity: float) -> "FaultPlan":
        """This plan with every rate multiplied by ``intensity`` (clipped).

        Outage windows and crash points are kept as-is for any positive
        intensity and dropped at zero — they either exist or they do not.
        """
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        clip = lambda r: float(min(1.0, r * intensity))  # noqa: E731
        return dataclasses.replace(
            self,
            abandonment_rate=clip(self.abandonment_rate),
            spam_rate=clip(self.spam_rate),
            adversarial_rate=clip(self.adversarial_rate),
            delay_spike_rate=clip(self.delay_spike_rate),
            duplicate_rate=clip(self.duplicate_rate),
            malformed_rate=clip(self.malformed_rate),
            outage_windows=self.outage_windows if intensity > 0 else (),
            crash_points=self.crash_points if intensity > 0 else (),
        )


@dataclass
class FaultInjector:
    """Applies a :class:`FaultPlan` to a platform's query traffic.

    The injector draws from its *own* generator: a no-op plan consumes no
    randomness, so wiring an injector into a platform does not perturb the
    fault-free response sequence.

    Parameters
    ----------
    plan:
        What to inject.
    rng:
        Randomness source for fault decisions (independent of the
        platform's worker/delay draws).
    """

    plan: FaultPlan
    rng: np.random.Generator
    counters: dict[str, int] = field(init=False)
    _attempts: int = field(default=0, init=False)
    _boundary_counts: dict[tuple[str, int], int] = field(init=False)

    def __post_init__(self) -> None:
        self.counters = {kind: 0 for kind in FAULT_KINDS}
        self._boundary_counts = {}

    @property
    def attempts(self) -> int:
        """Post attempts seen so far (including ones that hit an outage)."""
        return self._attempts

    def on_stage_boundary(self, stage: str, cycle: int) -> None:
        """Fire any armed :class:`CrashPoint` matching this boundary.

        Called by the journal layer *after* the boundary record is durable,
        so a crash here never loses the record it follows.  Occurrence
        counts are per ``(stage, cycle)`` within this process; resume
        disarms ``plan.crash_points`` so a restarted run cannot crash-loop.
        """
        if not self.plan.crash_points:
            return
        key = (stage, cycle)
        occurrence = self._boundary_counts.get(key, 0)
        self._boundary_counts[key] = occurrence + 1
        for point in self.plan.crash_points:
            if not point.matches(stage, cycle, occurrence):
                continue
            self.counters["crashes"] += 1
            if point.action == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            if point.action == "hang":  # wait for the watchdog to fire
                while True:  # pragma: no cover - killed externally
                    time.sleep(3600)
            raise InjectedCrash(
                f"injected crash at stage boundary {stage!r} "
                f"(cycle {cycle}, occurrence {occurrence})"
            )

    def disarm_crashes(self) -> None:
        """Drop all crash points (used after a recovery resume)."""
        if self.plan.crash_points:
            self.plan = dataclasses.replace(self.plan, crash_points=())

    def state_dict(self) -> dict:
        """JSON-safe snapshot of the injector's mutable state.

        Captures the attempt clock, counters and the fault RNG state so a
        journal replay can restore the injector exactly as it was after a
        journaled post (``_boundary_counts`` is deliberately process-local:
        it exists only to aim crash points).
        """
        return {
            "attempts": int(self._attempts),
            "counters": {k: int(v) for k, v in self.counters.items()},
            "rng_state": self.rng.bit_generator.state,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        self._attempts = int(state["attempts"])
        for kind in FAULT_KINDS:
            self.counters[kind] = int(state["counters"].get(kind, 0))
        self.rng.bit_generator.state = state["rng_state"]

    def on_post_attempt(self) -> None:
        """Advance the attempt clock; raise during an outage window."""
        attempt = self._attempts
        self._attempts += 1
        for start, end in self.plan.outage_windows:
            if start <= attempt < end:
                self.counters["outages"] += 1
                raise PlatformUnavailable(
                    f"platform outage at post attempt {attempt} "
                    f"(window [{start}, {end}))"
                )

    def worker_abandons(self) -> bool:
        """Whether the next sampled worker abandons the HIT."""
        if self.plan.abandonment_rate <= 0.0:
            return False
        if self.rng.random() < self.plan.abandonment_rate:
            self.counters["abandonments"] += 1
            return True
        return False

    def transform_response(
        self, response: WorkerResponse, metadata: ImageMetadata
    ) -> list[WorkerResponse]:
        """Apply response-level faults; returns the response(s) that arrive.

        Spam, adversarial and malformed corruptions are mutually exclusive
        (first matching draw wins); delay spikes and duplication then apply
        independently on top of whatever survived.
        """
        plan = self.plan
        if plan.spam_rate > 0.0 and self.rng.random() < plan.spam_rate:
            self.counters["spam"] += 1
            response = dataclasses.replace(
                response,
                label=self._random_label(),
                questionnaire=self._random_questionnaire(),
            )
        elif (
            plan.adversarial_rate > 0.0
            and self.rng.random() < plan.adversarial_rate
        ):
            self.counters["adversarial"] += 1
            response = dataclasses.replace(
                response,
                label=self._wrong_label(metadata.true_label),
                questionnaire=QuestionnaireAnswers(
                    says_fake=not metadata.is_fake,
                    scene=self._wrong_scene(metadata.scene),
                    says_people_in_danger=not metadata.people_in_danger,
                ),
            )
        elif plan.malformed_rate > 0.0 and self.rng.random() < plan.malformed_rate:
            self.counters["malformed"] += 1
            response = dataclasses.replace(
                response, worker_id=-1, label=self._random_label()
            )
        if plan.delay_spike_rate > 0.0 and self.rng.random() < plan.delay_spike_rate:
            self.counters["delay_spikes"] += 1
            response = dataclasses.replace(
                response,
                delay_seconds=response.delay_seconds * plan.delay_spike_factor,
            )
        if plan.duplicate_rate > 0.0 and self.rng.random() < plan.duplicate_rate:
            self.counters["duplicates"] += 1
            return [response, dataclasses.replace(response)]
        return [response]

    def total_events(self) -> int:
        """Total fault events injected so far."""
        return sum(self.counters.values())

    def _random_label(self) -> DamageLabel:
        return list(DamageLabel)[int(self.rng.integers(DamageLabel.count()))]

    def _wrong_label(self, true_label: DamageLabel) -> DamageLabel:
        others = [label for label in DamageLabel if label != true_label]
        return others[int(self.rng.integers(len(others)))]

    def _wrong_scene(self, true_scene: SceneType) -> SceneType:
        others = [scene for scene in SceneType if scene != true_scene]
        return others[int(self.rng.integers(len(others)))]

    def _random_questionnaire(self) -> QuestionnaireAnswers:
        return QuestionnaireAnswers(
            says_fake=bool(self.rng.random() < 0.5),
            scene=list(SceneType)[int(self.rng.integers(len(SceneType)))],
            says_people_in_danger=bool(self.rng.random() < 0.5),
        )
