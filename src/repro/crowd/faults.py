"""Fault injection for the crowd–AI closed loop (chaos engineering).

The reproduction's default platform is perfectly behaved: every posted query
returns exactly ``workers_per_query`` responses, on time, every time.  Real
crowdsourcing deployments are not — workers abandon HITs mid-task, spammers
answer at random, adversaries answer *wrong on purpose*, response times
spike, the platform itself goes down.  This module makes those conditions
reproducible: a declarative :class:`FaultPlan` describes *what* goes wrong
and a stateful :class:`FaultInjector` (with its own RNG, so the fault-free
draw sequence is untouched) decides *when*.

The injector plugs into :class:`~repro.crowd.platform.CrowdsourcingPlatform`
via its optional ``faults`` field; with ``faults=None`` (the default) the
platform's behaviour is bit-for-bit what it was before this module existed.

Fault taxonomy (see ``docs/FAULT_MODEL.md``):

==================  ========================================================
fault               effect on one posted query
==================  ========================================================
outage window       :class:`PlatformUnavailable` raised before any charge
abandonment         a sampled worker never submits a response
spam                a response's label and questionnaire are random noise
adversarial         a response is deliberately wrong (label and evidence)
delay spike         a response's delay is multiplied by a large factor
duplicate           a response is submitted twice (double bookkeeping)
malformed           a response arrives unattributable (``worker_id = -1``)
==================  ========================================================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.crowd.tasks import QuestionnaireAnswers, WorkerResponse
from repro.data.metadata import DamageLabel, ImageMetadata, SceneType

__all__ = ["PlatformUnavailable", "FaultPlan", "FaultInjector"]

#: Names of the per-fault event counters a :class:`FaultInjector` keeps.
FAULT_KINDS: tuple[str, ...] = (
    "outages",
    "abandonments",
    "spam",
    "adversarial",
    "delay_spikes",
    "duplicates",
    "malformed",
)


class PlatformUnavailable(RuntimeError):
    """Raised when a query is posted during a platform outage window.

    Raised *before* the ledger is charged — an unreachable platform cannot
    take your money — so the caller can retry or give up without refunding.
    """


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults to inject.

    All rates are independent per-event probabilities in ``[0, 1]``.
    ``outage_windows`` are half-open ``[start, end)`` intervals counted in
    *post attempts* (every :meth:`CrowdsourcingPlatform.post_query` call,
    including ones that fail): a plan can take the platform down for a
    stretch of the deployment and bring it back.

    Parameters
    ----------
    abandonment_rate:
        Probability a sampled worker abandons the HIT (no response).
    spam_rate:
        Probability a response is replaced with uniform-random noise.
    adversarial_rate:
        Probability a response is deliberately wrong: a non-true label and
        inverted questionnaire evidence.
    delay_spike_rate, delay_spike_factor:
        Probability a response's delay is multiplied by the factor.
    duplicate_rate:
        Probability a response is submitted twice.
    malformed_rate:
        Probability a response arrives unattributable: ``worker_id = -1``
        and a uniform-random label (broken client / dropped metadata).
    outage_windows:
        ``[start, end)`` post-attempt intervals during which every post
        raises :class:`PlatformUnavailable`.
    """

    abandonment_rate: float = 0.0
    spam_rate: float = 0.0
    adversarial_rate: float = 0.0
    delay_spike_rate: float = 0.0
    delay_spike_factor: float = 5.0
    duplicate_rate: float = 0.0
    malformed_rate: float = 0.0
    outage_windows: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "abandonment_rate",
            "spam_rate",
            "adversarial_rate",
            "delay_spike_rate",
            "duplicate_rate",
            "malformed_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.delay_spike_factor < 1.0:
            raise ValueError(
                f"delay_spike_factor must be >= 1, got {self.delay_spike_factor}"
            )
        for window in self.outage_windows:
            if len(window) != 2:
                raise ValueError(f"outage window must be (start, end): {window}")
            start, end = window
            if start < 0 or end <= start:
                raise ValueError(
                    f"outage window must satisfy 0 <= start < end: {window}"
                )

    def is_noop(self) -> bool:
        """Whether this plan injects nothing at all."""
        return (
            self.abandonment_rate == 0.0
            and self.spam_rate == 0.0
            and self.adversarial_rate == 0.0
            and self.delay_spike_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.malformed_rate == 0.0
            and not self.outage_windows
        )

    def scaled(self, intensity: float) -> "FaultPlan":
        """This plan with every rate multiplied by ``intensity`` (clipped).

        Outage windows are kept as-is for any positive intensity and
        dropped at zero — a window either exists or it does not.
        """
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        clip = lambda r: float(min(1.0, r * intensity))  # noqa: E731
        return dataclasses.replace(
            self,
            abandonment_rate=clip(self.abandonment_rate),
            spam_rate=clip(self.spam_rate),
            adversarial_rate=clip(self.adversarial_rate),
            delay_spike_rate=clip(self.delay_spike_rate),
            duplicate_rate=clip(self.duplicate_rate),
            malformed_rate=clip(self.malformed_rate),
            outage_windows=self.outage_windows if intensity > 0 else (),
        )


@dataclass
class FaultInjector:
    """Applies a :class:`FaultPlan` to a platform's query traffic.

    The injector draws from its *own* generator: a no-op plan consumes no
    randomness, so wiring an injector into a platform does not perturb the
    fault-free response sequence.

    Parameters
    ----------
    plan:
        What to inject.
    rng:
        Randomness source for fault decisions (independent of the
        platform's worker/delay draws).
    """

    plan: FaultPlan
    rng: np.random.Generator
    counters: dict[str, int] = field(init=False)
    _attempts: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.counters = {kind: 0 for kind in FAULT_KINDS}

    @property
    def attempts(self) -> int:
        """Post attempts seen so far (including ones that hit an outage)."""
        return self._attempts

    def on_post_attempt(self) -> None:
        """Advance the attempt clock; raise during an outage window."""
        attempt = self._attempts
        self._attempts += 1
        for start, end in self.plan.outage_windows:
            if start <= attempt < end:
                self.counters["outages"] += 1
                raise PlatformUnavailable(
                    f"platform outage at post attempt {attempt} "
                    f"(window [{start}, {end}))"
                )

    def worker_abandons(self) -> bool:
        """Whether the next sampled worker abandons the HIT."""
        if self.plan.abandonment_rate <= 0.0:
            return False
        if self.rng.random() < self.plan.abandonment_rate:
            self.counters["abandonments"] += 1
            return True
        return False

    def transform_response(
        self, response: WorkerResponse, metadata: ImageMetadata
    ) -> list[WorkerResponse]:
        """Apply response-level faults; returns the response(s) that arrive.

        Spam, adversarial and malformed corruptions are mutually exclusive
        (first matching draw wins); delay spikes and duplication then apply
        independently on top of whatever survived.
        """
        plan = self.plan
        if plan.spam_rate > 0.0 and self.rng.random() < plan.spam_rate:
            self.counters["spam"] += 1
            response = dataclasses.replace(
                response,
                label=self._random_label(),
                questionnaire=self._random_questionnaire(),
            )
        elif (
            plan.adversarial_rate > 0.0
            and self.rng.random() < plan.adversarial_rate
        ):
            self.counters["adversarial"] += 1
            response = dataclasses.replace(
                response,
                label=self._wrong_label(metadata.true_label),
                questionnaire=QuestionnaireAnswers(
                    says_fake=not metadata.is_fake,
                    scene=self._wrong_scene(metadata.scene),
                    says_people_in_danger=not metadata.people_in_danger,
                ),
            )
        elif plan.malformed_rate > 0.0 and self.rng.random() < plan.malformed_rate:
            self.counters["malformed"] += 1
            response = dataclasses.replace(
                response, worker_id=-1, label=self._random_label()
            )
        if plan.delay_spike_rate > 0.0 and self.rng.random() < plan.delay_spike_rate:
            self.counters["delay_spikes"] += 1
            response = dataclasses.replace(
                response,
                delay_seconds=response.delay_seconds * plan.delay_spike_factor,
            )
        if plan.duplicate_rate > 0.0 and self.rng.random() < plan.duplicate_rate:
            self.counters["duplicates"] += 1
            return [response, dataclasses.replace(response)]
        return [response]

    def total_events(self) -> int:
        """Total fault events injected so far."""
        return sum(self.counters.values())

    def _random_label(self) -> DamageLabel:
        return list(DamageLabel)[int(self.rng.integers(DamageLabel.count()))]

    def _wrong_label(self, true_label: DamageLabel) -> DamageLabel:
        others = [label for label in DamageLabel if label != true_label]
        return others[int(self.rng.integers(len(others)))]

    def _wrong_scene(self, true_scene: SceneType) -> SceneType:
        others = [scene for scene in SceneType if scene != true_scene]
        return others[int(self.rng.integers(len(others)))]

    def _random_questionnaire(self) -> QuestionnaireAnswers:
        return QuestionnaireAnswers(
            says_fake=bool(self.rng.random() < 0.5),
            scene=list(SceneType)[int(self.rng.integers(len(SceneType)))],
            says_people_in_danger=bool(self.rng.random() < 0.5),
        )
