"""Simulated crowdsourcing platform (the MTurk substitution).

Reproduces the black-box statistical behaviour the paper measured on MTurk:
context- and incentive-dependent response delays (Figure 5), an
incentive-quality plateau (Figure 6), heterogeneous ~80%-accurate workers,
and fixed-form questionnaire evidence.
"""

from repro.crowd.delay import INCENTIVE_LEVELS, DelayModel
from repro.crowd.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    PlatformUnavailable,
)
from repro.crowd.pilot import PilotCell, PilotResult, run_pilot_study
from repro.crowd.platform import CrowdsourcingPlatform, WorkerHistoryEntry
from repro.crowd.population import WorkerPopulation
from repro.crowd.quality import QualityModel
from repro.crowd.questionnaire import QUESTIONS, encode_query_features, feature_names
from repro.crowd.tasks import (
    CrowdQuery,
    QueryResult,
    QuestionnaireAnswers,
    WorkerResponse,
)
from repro.crowd.worker import Worker

__all__ = [
    "INCENTIVE_LEVELS",
    "DelayModel",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "PlatformUnavailable",
    "PilotCell",
    "PilotResult",
    "run_pilot_study",
    "CrowdsourcingPlatform",
    "WorkerHistoryEntry",
    "WorkerPopulation",
    "QualityModel",
    "QUESTIONS",
    "encode_query_features",
    "feature_names",
    "CrowdQuery",
    "QueryResult",
    "QuestionnaireAnswers",
    "WorkerResponse",
    "Worker",
]
