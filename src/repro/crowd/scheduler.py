"""Event-driven virtual-time scheduler for crowd responses.

The paper's DDA loop is *real-time*: each sensing cycle lasts ten minutes
(§V, Figure 5's delay analysis), and IPD exists precisely because slow
crowds waste money.  The synchronous reproduction collapses that axis —
``post_query`` returns every response instantly and sampled delays are
only recorded, never enforced.  This module makes simulated time a
first-class part of the loop:

- a :class:`VirtualTimeScheduler` advances a
  :class:`~repro.utils.clock.SimulatedClock` cycle by cycle;
- worker responses whose sampled delay exceeds the remaining sensing-cycle
  deadline become *scheduled arrival events* (:class:`PendingResponse`)
  instead of being silently dropped;
- at the start of each later cycle the matured events are **harvested** as
  straggler labels — exactly how a real MTurk deployment would see a HIT
  submitted after the requester's cutoff: the work still arrives, the
  money is already spent, and the label is still usable for retraining.

The scheduler is deliberately free of randomness: it never touches any
RNG, so attaching one to a platform cannot perturb the fault-free draw
sequence (the same invariant :mod:`repro.crowd.faults` keeps).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.crowd.tasks import CrowdQuery, WorkerResponse
from repro.utils.clock import SECONDS_PER_CYCLE, SimulatedClock

__all__ = ["PendingResponse", "VirtualTimeScheduler"]


@dataclass(order=True, frozen=True)
class PendingResponse:
    """One scheduled response-arrival event.

    Ordered by ``(arrival_time, seq)``: the heap pops arrivals in virtual
    time order, with the insertion sequence breaking ties deterministically
    (two responses can share an arrival time through duplicate faults).
    """

    arrival_time: float
    seq: int
    query: CrowdQuery = field(compare=False)
    response: WorkerResponse = field(compare=False)
    #: Virtual time at which the query was posted (for age accounting).
    posted_at: float = field(compare=False, default=0.0)

    @property
    def age_seconds(self) -> float:
        """How long after its posting this response arrives."""
        return self.arrival_time - self.posted_at


class VirtualTimeScheduler:
    """Virtual-time event queue over a :class:`SimulatedClock`.

    Parameters
    ----------
    clock:
        The simulated wall clock; a fresh one (starting at the paper's
        8 AM) when omitted.
    cycle_seconds:
        Length of one sensing cycle (the paper's 600 s).
    max_straggler_age_seconds:
        Responses that would arrive more than this long after their query
        was posted are *expired* at scheduling time — the requester has
        moved on and the HIT result is discarded, as real platforms do
        with assignments returned long past their lifetime.  ``None``
        keeps every straggler forever.
    """

    def __init__(
        self,
        clock: SimulatedClock | None = None,
        cycle_seconds: float = SECONDS_PER_CYCLE,
        max_straggler_age_seconds: float | None = None,
    ) -> None:
        if cycle_seconds <= 0:
            raise ValueError(
                f"cycle_seconds must be positive, got {cycle_seconds}"
            )
        if max_straggler_age_seconds is not None and max_straggler_age_seconds <= 0:
            raise ValueError(
                "max_straggler_age_seconds must be positive, got "
                f"{max_straggler_age_seconds}"
            )
        self.clock = clock if clock is not None else SimulatedClock()
        self.cycle_seconds = float(cycle_seconds)
        self.max_straggler_age_seconds = max_straggler_age_seconds
        self._events: list[PendingResponse] = []
        self._next_seq = 0
        self._pending_per_query: dict[int, int] = {}
        #: Events discarded at scheduling time because they aged out.
        self.expired_total = 0

    @property
    def now(self) -> float:
        """Current virtual time (seconds since the deployment started)."""
        return self.clock.elapsed_seconds

    @property
    def pending_count(self) -> int:
        """Number of response arrivals still in flight."""
        return len(self._events)

    @property
    def next_arrival(self) -> float | None:
        """Virtual time of the earliest pending arrival, if any."""
        return self._events[0].arrival_time if self._events else None

    def cycle_start(self, cycle_index: int) -> float:
        """Virtual time at which sensing cycle ``cycle_index`` begins."""
        if cycle_index < 0:
            raise ValueError(f"cycle_index must be >= 0, got {cycle_index}")
        return cycle_index * self.cycle_seconds

    def cycle_index_of(self, elapsed_seconds: float) -> int:
        """The sensing cycle a virtual timestamp falls in (inverse of
        :meth:`cycle_start`); used by the serving layer to bucket shared
        crowd capacity into per-cycle allocation windows."""
        if elapsed_seconds < 0:
            raise ValueError(
                f"elapsed_seconds must be >= 0, got {elapsed_seconds}"
            )
        return int(elapsed_seconds // self.cycle_seconds)

    def advance(self, seconds: float) -> float:
        """Consume ``seconds`` of cycle time (e.g. retry backoff)."""
        return self.clock.advance(seconds)

    def advance_to(self, elapsed_seconds: float) -> float:
        """Advance (forwards only) to an absolute virtual time.

        A no-op when the clock is already at or past the target, so cycle
        starts stay monotonic even after backoff spilled past a boundary.
        """
        return self.clock.advance_to(elapsed_seconds)

    def schedule(
        self, query: CrowdQuery, response: WorkerResponse
    ) -> bool:
        """Schedule a late response to arrive ``delay_seconds`` from now.

        Returns ``True`` if the event was queued, ``False`` if it aged out
        immediately (its delay exceeds ``max_straggler_age_seconds``).
        """
        if (
            self.max_straggler_age_seconds is not None
            and response.delay_seconds > self.max_straggler_age_seconds
        ):
            self.expired_total += 1
            return False
        event = PendingResponse(
            arrival_time=self.now + response.delay_seconds,
            seq=self._next_seq,
            query=query,
            response=response,
            posted_at=self.now,
        )
        self._next_seq += 1
        heapq.heappush(self._events, event)
        self._pending_per_query[query.query_id] = (
            self._pending_per_query.get(query.query_id, 0) + 1
        )
        return True

    def collect_due(self, now: float | None = None) -> list[PendingResponse]:
        """Pop every event whose arrival time is at or before ``now``.

        Events come back in arrival order (ties broken by scheduling
        sequence), so harvesting is deterministic.
        """
        if now is None:
            now = self.now
        due: list[PendingResponse] = []
        while self._events and self._events[0].arrival_time <= now:
            event = heapq.heappop(self._events)
            due.append(event)
            qid = event.query.query_id
            remaining = self._pending_per_query.get(qid, 0) - 1
            if remaining > 0:
                self._pending_per_query[qid] = remaining
            else:
                self._pending_per_query.pop(qid, None)
        return due

    def has_pending(self, query_id: int) -> bool:
        """Whether any response for ``query_id`` is still in flight."""
        return self._pending_per_query.get(query_id, 0) > 0

    @property
    def next_seq(self) -> int:
        """Sequence number the next scheduled event will receive."""
        return self._next_seq

    def events_since(self, seq: int) -> list[PendingResponse]:
        """Pending events with sequence ``>= seq``, in sequence order.

        The journal layer uses this to serialize exactly the arrival
        events one posted query added to the heap (its post captured
        ``next_seq`` beforehand) without disturbing the heap itself.
        """
        return sorted(
            (e for e in self._events if e.seq >= seq), key=lambda e: e.seq
        )

    def restore_event(
        self,
        arrival_time: float,
        seq: int,
        query: CrowdQuery,
        response: WorkerResponse,
        posted_at: float,
    ) -> None:
        """Re-insert a journaled arrival event exactly as it was queued.

        Journal replay cannot go through :meth:`schedule` — the clock has
        moved on and the sequence counter must match the original run — so
        this restores the recorded ``(arrival_time, seq, posted_at)``
        verbatim and bumps ``_next_seq`` past the restored sequence.
        """
        event = PendingResponse(
            arrival_time=float(arrival_time),
            seq=int(seq),
            query=query,
            response=response,
            posted_at=float(posted_at),
        )
        heapq.heappush(self._events, event)
        self._next_seq = max(self._next_seq, event.seq + 1)
        self._pending_per_query[query.query_id] = (
            self._pending_per_query.get(query.query_id, 0) + 1
        )

    def snapshot(self) -> dict:
        """JSON-safe summary for checkpoint envelopes and telemetry."""
        return {
            "virtual_time_seconds": self.now,
            "cycle_seconds": self.cycle_seconds,
            "pending_events": self.pending_count,
            "pending_queries": len(self._pending_per_query),
            "next_arrival_seconds": self.next_arrival,
            "expired_total": self.expired_total,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"VirtualTimeScheduler(now={self.now:.1f}s, "
            f"pending={self.pending_count})"
        )
