"""Individual crowd-worker model.

A worker is characterized by:

- ``reliability`` — base probability of labeling an *honest* image correctly
  (population mean ~0.8, matching the pilot's observation);
- ``insight`` — probability of reading the high-level story of a *deceptive*
  image (fake/close-up/implicit) instead of being fooled by its pixels; this
  is the human advantage the whole CrowdLearn design leans on;
- ``speed`` — personal multiplier on response delay;
- ``activity`` — per-context availability weights (workers are more active
  in the evening/midnight, per the pilot).

Workers answer from the image *metadata*, never the pixels: the simulation
grants humans exactly the contextual channel the AI lacks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crowd.quality import QualityModel
from repro.crowd.tasks import QuestionnaireAnswers
from repro.data.metadata import DamageLabel, ImageMetadata, SceneType
from repro.utils.clock import TemporalContext

__all__ = ["Worker"]


@dataclass
class Worker:
    """One simulated crowd worker."""

    worker_id: int
    reliability: float
    insight: float
    speed: float
    activity: dict[TemporalContext, float]

    def __post_init__(self) -> None:
        if not 0.0 <= self.reliability <= 1.0:
            raise ValueError(f"reliability must be in [0, 1]: {self.reliability}")
        if not 0.0 <= self.insight <= 1.0:
            raise ValueError(f"insight must be in [0, 1]: {self.insight}")
        if self.speed <= 0:
            raise ValueError(f"speed must be positive: {self.speed}")
        for context in TemporalContext:
            if self.activity.get(context, 0.0) < 0:
                raise ValueError("activity weights must be non-negative")

    def label_accuracy(
        self,
        incentive_cents: float,
        quality_model: QualityModel,
        metadata: ImageMetadata | None = None,
    ) -> float:
        """Effective accuracy under ``incentive_cents``, on ``metadata``.

        Genuinely hard images degrade everyone: low-resolution photos cost
        ~12 accuracy points and moderate damage (the boundary class) ~6 —
        this is why the paper's aggregated crowd labels sit near 84-94%
        rather than at the honest-image ceiling.
        """
        accuracy = quality_model.effective_accuracy(
            self.reliability, incentive_cents
        )
        if metadata is not None:
            accuracy -= self._difficulty_penalty(metadata)
        return float(np.clip(accuracy, 0.05, 0.98))

    @staticmethod
    def _difficulty_penalty(metadata: ImageMetadata) -> float:
        from repro.data.metadata import FailureArchetype

        penalty = 0.0
        if metadata.archetype is FailureArchetype.LOW_RESOLUTION:
            penalty += 0.12
        if metadata.true_label is DamageLabel.MODERATE:
            penalty += 0.06
        return penalty

    def answer_label(
        self,
        metadata: ImageMetadata,
        incentive_cents: float,
        quality_model: QualityModel,
        rng: np.random.Generator,
    ) -> DamageLabel:
        """Produce this worker's severity label for an image.

        Honest images: correct with the effective accuracy, otherwise the
        error lands on an adjacent severity with higher probability than the
        far one (severity is ordinal).  Deceptive images: the worker sees
        through the deception with probability ``insight x accuracy``;
        otherwise they report what the pixels suggest, like the AI would.
        """
        accuracy = self.label_accuracy(incentive_cents, quality_model, metadata)
        if metadata.is_deceptive:
            if rng.random() < self.insight * accuracy:
                return metadata.true_label
            return metadata.apparent_label
        if rng.random() < accuracy:
            return metadata.true_label
        return self._confused_label(metadata.true_label, rng)

    def answer_questionnaire(
        self,
        metadata: ImageMetadata,
        incentive_cents: float,
        quality_model: QualityModel,
        rng: np.random.Generator,
    ) -> QuestionnaireAnswers:
        """Produce the fixed-form questionnaire answers.

        Fake detection and danger recognition ride on ``insight`` (they are
        story-level judgements); the scene question rides on plain accuracy.
        Questionnaire answers are deliberately *more* reliable than the
        severity label itself — recognizing a photoshopped image is easier
        than grading damage — which is what lets CQC beat majority voting.
        """
        accuracy = self.label_accuracy(incentive_cents, quality_model)
        detect_prob = np.clip(0.55 + 0.45 * self.insight + 0.1 * (accuracy - 0.8),
                              0.05, 0.99)
        says_fake = (
            metadata.is_fake
            if rng.random() < detect_prob
            else not metadata.is_fake
        )
        scene = (
            metadata.scene
            if rng.random() < accuracy
            else list(SceneType)[int(rng.integers(len(SceneType)))]
        )
        says_danger = (
            metadata.people_in_danger
            if rng.random() < detect_prob
            else not metadata.people_in_danger
        )
        return QuestionnaireAnswers(
            says_fake=bool(says_fake),
            scene=scene,
            says_people_in_danger=bool(says_danger),
        )

    @staticmethod
    def _confused_label(
        true_label: DamageLabel, rng: np.random.Generator
    ) -> DamageLabel:
        """An erroneous label, biased toward adjacent severities."""
        others = [label for label in DamageLabel if label != true_label]
        distances = np.array(
            [abs(int(label) - int(true_label)) for label in others], dtype=float
        )
        weights = 1.0 / distances
        weights /= weights.sum()
        return others[int(rng.choice(len(others), p=weights))]
