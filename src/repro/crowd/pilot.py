"""The pilot study (§IV-B.1): characterizing the black-box platform.

The paper probes MTurk with 7 incentive levels x 4 temporal contexts, 100
HITs each (20 queries x 5 workers), on *training* images whose golden labels
are known.  The pilot's outputs drive three things:

- Figure 5 (delay vs incentive per context) and Figure 6 (quality vs
  incentive);
- warm-starting the IPD bandit's payoff estimates;
- training data for the CQC classifier (query features -> golden label).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crowd.delay import INCENTIVE_LEVELS
from repro.crowd.platform import CrowdsourcingPlatform
from repro.data.dataset import DisasterDataset
from repro.crowd.tasks import QueryResult
from repro.utils.clock import TemporalContext

__all__ = ["PilotCell", "PilotResult", "run_pilot_study"]


@dataclass
class PilotCell:
    """Observations for one (context, incentive) combination."""

    context: TemporalContext
    incentive_cents: float
    results: list[QueryResult] = field(default_factory=list)
    true_labels: list[int] = field(default_factory=list)

    @property
    def mean_delay(self) -> float:
        """Mean per-response delay over all HITs in the cell."""
        delays = [
            r.delay_seconds for result in self.results for r in result.responses
        ]
        if not delays:
            raise ValueError("pilot cell has no responses")
        return float(np.mean(delays))

    @property
    def label_accuracy(self) -> float:
        """Fraction of individual worker labels matching the golden label."""
        correct = 0
        total = 0
        for result, truth in zip(self.results, self.true_labels):
            for response in result.responses:
                correct += int(int(response.label) == truth)
                total += 1
        if total == 0:
            raise ValueError("pilot cell has no responses")
        return correct / total


@dataclass
class PilotResult:
    """All pilot cells, indexed by (context, incentive)."""

    cells: dict[tuple[TemporalContext, float], PilotCell] = field(
        default_factory=dict
    )
    incentive_levels: tuple[float, ...] = INCENTIVE_LEVELS

    def cell(self, context: TemporalContext, incentive: float) -> PilotCell:
        """The observations for one combination."""
        return self.cells[(context, float(incentive))]

    def delay_table(self) -> dict[TemporalContext, list[float]]:
        """Figure 5's series: mean delay per incentive level, per context."""
        return {
            context: [
                self.cell(context, level).mean_delay
                for level in self.incentive_levels
            ]
            for context in TemporalContext.ordered()
        }

    def quality_table(self) -> list[float]:
        """Figure 6's series: label accuracy per incentive level (pooled)."""
        accuracies = []
        for level in self.incentive_levels:
            correct = 0
            total = 0
            for context in TemporalContext.ordered():
                cell = self.cell(context, level)
                for result, truth in zip(cell.results, cell.true_labels):
                    for response in result.responses:
                        correct += int(int(response.label) == truth)
                        total += 1
            accuracies.append(correct / max(total, 1))
        return accuracies

    def all_labeled_results(self) -> tuple[list[QueryResult], list[int]]:
        """Every pilot query with its golden label (CQC training data)."""
        results: list[QueryResult] = []
        labels: list[int] = []
        for cell in self.cells.values():
            results.extend(cell.results)
            labels.extend(cell.true_labels)
        return results, labels


def run_pilot_study(
    platform: CrowdsourcingPlatform,
    training_set: DisasterDataset,
    rng: np.random.Generator,
    incentive_levels: tuple[float, ...] = INCENTIVE_LEVELS,
    queries_per_cell: int = 20,
) -> PilotResult:
    """Run the full pilot sweep on training images with golden labels.

    Each (context, incentive) cell posts ``queries_per_cell`` queries over
    images sampled (with replacement across cells, without within a cell)
    from the training set.
    """
    if queries_per_cell <= 0:
        raise ValueError("queries_per_cell must be positive")
    if len(training_set) < queries_per_cell:
        raise ValueError(
            f"training set has {len(training_set)} images, "
            f"need >= {queries_per_cell} per cell"
        )
    result = PilotResult(incentive_levels=tuple(float(x) for x in incentive_levels))
    for context in TemporalContext.ordered():
        for level in result.incentive_levels:
            cell = PilotCell(context=context, incentive_cents=level)
            chosen = rng.choice(
                len(training_set), size=queries_per_cell, replace=False
            )
            for index in chosen:
                image = training_set[int(index)]
                query_result = platform.post_query(
                    image.metadata, level, context, ledger=None
                )
                cell.results.append(query_result)
                cell.true_labels.append(int(image.true_label))
            result.cells[(context, level)] = cell
    return result
