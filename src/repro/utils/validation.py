"""Argument-validation helpers shared across the library.

Validation failures raise :class:`ValueError`/:class:`TypeError` with messages
that name the offending argument, so misuse surfaces at the public API
boundary instead of deep inside numpy broadcasting.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "check_probability",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_array_shape",
    "check_distribution",
    "as_float_array",
]


def check_probability(value: float, name: str = "value") -> float:
    """Validate that ``value`` lies in [0, 1] and return it as a float."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_positive(value: float, name: str = "value") -> float:
    """Validate that ``value`` is strictly positive and return it."""
    value = float(value)
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative(value: float, name: str = "value") -> float:
    """Validate that ``value`` is >= 0 and return it."""
    value = float(value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(
    value: float, low: float, high: float, name: str = "value"
) -> float:
    """Validate that ``value`` lies in the closed interval [low, high]."""
    value = float(value)
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_array_shape(
    array: np.ndarray, shape: Sequence[int | None], name: str = "array"
) -> np.ndarray:
    """Validate ``array`` has rank and dimensions matching ``shape``.

    ``None`` entries in ``shape`` match any size along that axis.
    """
    array = np.asarray(array)
    if array.ndim != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got shape {array.shape}"
        )
    for axis, (actual, expected) in enumerate(zip(array.shape, shape)):
        if expected is not None and actual != expected:
            raise ValueError(
                f"{name} axis {axis} must have size {expected}, "
                f"got shape {array.shape}"
            )
    return array


def check_distribution(
    probs: np.ndarray, name: str = "distribution", atol: float = 1e-6
) -> np.ndarray:
    """Validate a 1-D probability distribution (non-negative, sums to 1)."""
    probs = np.asarray(probs, dtype=np.float64)
    if probs.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {probs.shape}")
    if probs.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if np.any(probs < -atol):
        raise ValueError(f"{name} has negative entries: {probs}")
    total = float(probs.sum())
    if abs(total - 1.0) > atol:
        raise ValueError(f"{name} must sum to 1, got {total}")
    return np.clip(probs, 0.0, None)


def as_float_array(data: object, name: str = "data") -> np.ndarray:
    """Convert ``data`` to a float64 numpy array, rejecting non-finite values."""
    array = np.asarray(data, dtype=np.float64)
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return array
