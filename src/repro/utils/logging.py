"""Lightweight structured logging for experiment runs.

The standard :mod:`logging` module is used underneath; this wrapper adds a
uniform ``repro.*`` namespace and an in-memory :class:`RunLog` that experiment
drivers use to accumulate per-cycle records (cycle index, context, query set,
incentives, delays, accuracy) which the reporting layer then renders into the
paper's tables and figure series.

:class:`RunLog` is part of the telemetry event model: attach a
:class:`~repro.telemetry.runtime.Telemetry` and every record is mirrored as
a structured telemetry event, so there is exactly one structured-record
path out of a run (the telemetry JSONL exporter).  The root log level is
controlled by the ``REPRO_LOG_LEVEL`` environment variable (a name like
``DEBUG`` or a numeric level); explicit ``level`` arguments win.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.runtime import Telemetry

__all__ = ["get_logger", "RunLog", "env_log_level"]

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"

#: Environment variable that sets the default ``repro`` log level.
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"


def env_log_level(default: int = logging.WARNING) -> int:
    """The log level named by ``$REPRO_LOG_LEVEL`` (default when unset/bad).

    Accepts standard level names (``DEBUG``, ``info``...) and integers.
    """
    raw = os.environ.get(LOG_LEVEL_ENV, "").strip()
    if not raw:
        return default
    if raw.isdigit():
        return int(raw)
    level = logging.getLevelName(raw.upper())
    return level if isinstance(level, int) else default


def get_logger(name: str, level: int | None = None) -> logging.Logger:
    """Return a namespaced logger, configuring a handler once per process.

    ``level`` overrides the environment-derived default (see
    :func:`env_log_level`) for the shared ``repro`` root logger; it only
    takes effect on the call that first configures the handler.
    """
    logger = logging.getLogger(f"repro.{name}")
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
        root.setLevel(env_log_level() if level is None else level)
    return logger


@dataclass
class RunLog:
    """Accumulates structured per-event records during an experiment run.

    With ``telemetry`` attached, every record is also emitted as a
    telemetry event (timestamped by the telemetry clock), so run logs ride
    the same JSONL export as spans and metrics.
    """

    records: list[dict[str, Any]] = field(default_factory=list)
    telemetry: "Telemetry | None" = None

    def record(self, event: str, **fields: Any) -> dict[str, Any]:
        """Append a record tagged with ``event`` and return it."""
        entry = {"event": event, **fields}
        self.records.append(entry)
        if self.telemetry is not None:
            self.telemetry.event(event, **fields)
        return entry

    def by_event(self, event: str) -> list[dict[str, Any]]:
        """All records whose event tag equals ``event``."""
        return [r for r in self.records if r["event"] == event]

    def values(self, event: str, key: str) -> list[Any]:
        """Extract ``key`` from every record of type ``event`` (if present)."""
        return [r[key] for r in self.by_event(event) if key in r]

    def group_by(self, event: str, key: str) -> dict[Any, list[dict[str, Any]]]:
        """Group records of type ``event`` by the value of ``key``."""
        groups: dict[Any, list[dict[str, Any]]] = {}
        for record in self.by_event(event):
            groups.setdefault(record.get(key), []).append(record)
        return groups

    def extend(self, other: "RunLog") -> None:
        """Append all records from ``other`` (records only, not telemetry)."""
        self.records.extend(other.records)

    def clear(self) -> None:
        """Drop all records."""
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterable[dict[str, Any]]:
        return iter(self.records)
