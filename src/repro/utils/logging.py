"""Lightweight structured logging for experiment runs.

The standard :mod:`logging` module is used underneath; this wrapper adds a
uniform ``repro.*`` namespace and an in-memory :class:`RunLog` that experiment
drivers use to accumulate per-cycle records (cycle index, context, query set,
incentives, delays, accuracy) which the reporting layer then renders into the
paper's tables and figure series.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["get_logger", "RunLog"]

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"


def get_logger(name: str, level: int = logging.WARNING) -> logging.Logger:
    """Return a namespaced logger, configuring a handler once per process."""
    logger = logging.getLogger(f"repro.{name}")
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
        root.setLevel(level)
    return logger


@dataclass
class RunLog:
    """Accumulates structured per-event records during an experiment run."""

    records: list[dict[str, Any]] = field(default_factory=list)

    def record(self, event: str, **fields: Any) -> dict[str, Any]:
        """Append a record tagged with ``event`` and return it."""
        entry = {"event": event, **fields}
        self.records.append(entry)
        return entry

    def by_event(self, event: str) -> list[dict[str, Any]]:
        """All records whose event tag equals ``event``."""
        return [r for r in self.records if r["event"] == event]

    def values(self, event: str, key: str) -> list[Any]:
        """Extract ``key`` from every record of type ``event`` (if present)."""
        return [r[key] for r in self.by_event(event) if key in r]

    def group_by(self, event: str, key: str) -> dict[Any, list[dict[str, Any]]]:
        """Group records of type ``event`` by the value of ``key``."""
        groups: dict[Any, list[dict[str, Any]]] = {}
        for record in self.by_event(event):
            groups.setdefault(record.get(key), []).append(record)
        return groups

    def extend(self, other: "RunLog") -> None:
        """Append all records from ``other``."""
        self.records.extend(other.records)

    def clear(self) -> None:
        """Drop all records."""
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterable[dict[str, Any]]:
        return iter(self.records)
