"""Shared utilities: seeded RNG, simulated clock, logging, validation."""

from repro.utils.clock import SECONDS_PER_CYCLE, SimulatedClock, TemporalContext
from repro.utils.logging import RunLog, get_logger
from repro.utils.rng import SeedSequencer, default_rng, spawn
from repro.utils.validation import (
    as_float_array,
    check_array_shape,
    check_distribution,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "SECONDS_PER_CYCLE",
    "SimulatedClock",
    "TemporalContext",
    "RunLog",
    "get_logger",
    "SeedSequencer",
    "default_rng",
    "spawn",
    "as_float_array",
    "check_array_shape",
    "check_distribution",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
