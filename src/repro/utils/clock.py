"""Simulated wall clock for the crowdsourcing platform and delay accounting.

The paper's evaluation runs 40 ten-minute sensing cycles spread over four
temporal contexts (morning, afternoon, evening, midnight).  A real deployment
would read the time of day from the system clock; the reproduction advances a
:class:`SimulatedClock` instead so that experiments are fast and fully
deterministic while preserving the context structure the IPD bandit exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["TemporalContext", "SimulatedClock", "SECONDS_PER_CYCLE"]

#: Duration of one sensing cycle in the paper's deployment (10 minutes).
SECONDS_PER_CYCLE = 600.0


class TemporalContext(str, Enum):
    """The four times of day the paper's pilot study distinguishes."""

    MORNING = "morning"
    AFTERNOON = "afternoon"
    EVENING = "evening"
    MIDNIGHT = "midnight"

    @classmethod
    def from_hour(cls, hour: float) -> "TemporalContext":
        """Map an hour of day (0-24) to its temporal context.

        Boundaries follow common usage: morning 6-12, afternoon 12-18,
        evening 18-24, midnight 0-6.
        """
        hour = hour % 24.0
        if 6.0 <= hour < 12.0:
            return cls.MORNING
        if 12.0 <= hour < 18.0:
            return cls.AFTERNOON
        if 18.0 <= hour < 24.0:
            return cls.EVENING
        return cls.MIDNIGHT

    @classmethod
    def ordered(cls) -> tuple["TemporalContext", ...]:
        """Contexts in the order the paper reports them."""
        return (cls.MORNING, cls.AFTERNOON, cls.EVENING, cls.MIDNIGHT)

    @property
    def index(self) -> int:
        """Stable integer id (0-3) used as the bandit context index."""
        return TemporalContext.ordered().index(self)


@dataclass
class SimulatedClock:
    """A monotonically advancing simulated clock.

    Parameters
    ----------
    start_hour:
        Hour of day (0-24) at which the simulation begins.
    """

    start_hour: float = 8.0
    _elapsed: float = field(default=0.0, init=False)

    @property
    def elapsed_seconds(self) -> float:
        """Seconds elapsed since the clock was created."""
        return self._elapsed

    @property
    def hour_of_day(self) -> float:
        """Current simulated hour of day in [0, 24)."""
        return (self.start_hour + self._elapsed / 3600.0) % 24.0

    @property
    def context(self) -> TemporalContext:
        """Temporal context for the current simulated time."""
        return TemporalContext.from_hour(self.hour_of_day)

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new elapsed time."""
        if seconds < 0:
            raise ValueError(f"cannot advance the clock backwards: {seconds}")
        self._elapsed += float(seconds)
        return self._elapsed

    def advance_to(self, elapsed_seconds: float) -> float:
        """Advance (forwards only) to an absolute elapsed time.

        A no-op when the clock is already at or past the target — simulated
        time never runs backwards, so a scheduler can realign to a cycle
        boundary even after backoff pushed the clock beyond it.
        """
        if elapsed_seconds > self._elapsed:
            self._elapsed = float(elapsed_seconds)
        return self._elapsed

    def advance_cycles(self, n: int, cycle_seconds: float = SECONDS_PER_CYCLE) -> float:
        """Advance by ``n`` sensing cycles of ``cycle_seconds`` each."""
        if n < 0:
            raise ValueError(f"cannot advance a negative number of cycles: {n}")
        return self.advance(n * cycle_seconds)

    def jump_to_context(self, context: TemporalContext) -> float:
        """Advance (forwards only) until the clock enters ``context``."""
        starts = {
            TemporalContext.MORNING: 6.0,
            TemporalContext.AFTERNOON: 12.0,
            TemporalContext.EVENING: 18.0,
            TemporalContext.MIDNIGHT: 0.0,
        }
        target = starts[context]
        delta_hours = (target - self.hour_of_day) % 24.0
        if self.context is context:
            return self._elapsed
        return self.advance(delta_hours * 3600.0)
