"""Seeded random-number management.

Every stochastic component in the reproduction draws from a
:class:`numpy.random.Generator` handed to it explicitly, so whole experiment
runs are reproducible from a single integer seed.  :func:`spawn` derives
independent child generators for subsystems (crowd simulator, bandit, model
initialization, ...) so that changing how many draws one subsystem makes does
not perturb the others.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["default_rng", "spawn", "SeedSequencer"]


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return a new :class:`numpy.random.Generator` seeded with ``seed``.

    A thin wrapper over :func:`numpy.random.default_rng` kept as the single
    entry point so a different bit generator can be swapped in globally.
    """
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``.

    Uses the generator's own bit stream to seed the children, which keeps the
    derivation deterministic given the parent's state.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


class SeedSequencer:
    """Deterministically hands out named child generators.

    Unlike :func:`spawn`, children are keyed by name so the generator a
    subsystem receives depends only on the root seed and the subsystem's
    name — not on the order subsystems are constructed in.

    Example
    -------
    >>> seq = SeedSequencer(42)
    >>> crowd_rng = seq.get("crowd")
    >>> model_rng = seq.get("models")
    """

    def __init__(self, root_seed: int) -> None:
        self._root_seed = int(root_seed)
        self._issued: dict[str, int] = {}

    @property
    def root_seed(self) -> int:
        """The root seed this sequencer derives all children from."""
        return self._root_seed

    def get(self, name: str) -> np.random.Generator:
        """Return the child generator for ``name`` (fresh state each call)."""
        seed = self._seed_for(name)
        self._issued[name] = seed
        return np.random.default_rng(seed)

    def seed_for(self, name: str) -> int:
        """The integer seed ``name`` maps to, without issuing a generator.

        Lets out-of-process workers (see :mod:`repro.eval.parallel`) derive
        the exact seed a name would get here and reconstruct the generator
        on their side of the process boundary.
        """
        return self._seed_for(name)

    def issued(self) -> dict[str, int]:
        """Mapping of names to derived seeds issued so far (for audit logs)."""
        return dict(self._issued)

    def _seed_for(self, name: str) -> int:
        # Stable, platform-independent hash of (root_seed, name).
        digest = 1469598103934665603  # FNV-1a offset basis
        for byte in f"{self._root_seed}:{name}".encode("utf-8"):
            digest ^= byte
            digest = (digest * 1099511628211) % (2**64)
        return digest % (2**63 - 1)

    def __iter__(self) -> Iterator[str]:
        return iter(self._issued)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeedSequencer(root_seed={self._root_seed}, issued={len(self._issued)})"
