"""Gradient-boosting substrate: CART trees, GBT classifier, expert boosting."""

from repro.boosting.adaboost import ExpertBooster
from repro.boosting.gbt import GradientBoostedClassifier
from repro.boosting.tree import RegressionTree, TreeNode

__all__ = [
    "ExpertBooster",
    "GradientBoostedClassifier",
    "RegressionTree",
    "TreeNode",
]
