"""CART regression trees, the weak learner under gradient boosting.

Trees are grown greedily on exact splits with variance reduction as the
criterion.  For gradient boosting, leaves fit the Newton step
``-sum(grad) / (sum(hess) + lambda)`` so the same tree class serves both
plain regression and second-order boosting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TreeNode", "RegressionTree"]


@dataclass
class TreeNode:
    """A node of a binary regression tree.

    Leaves have ``feature == -1`` and carry the prediction in ``value``.
    """

    feature: int = -1
    threshold: float = 0.0
    value: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


class RegressionTree:
    """Greedy CART regression tree with Newton-style leaf values.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root at depth 0).
    min_samples_leaf:
        Minimum samples each child must retain for a split to be valid.
    min_gain:
        Minimum split gain; splits below it become leaves.
    reg_lambda:
        L2 regularization on leaf values (the XGBoost ``lambda``).
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        min_gain: float = 1e-7,
        reg_lambda: float = 1.0,
    ) -> None:
        if max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {max_depth}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        if reg_lambda < 0:
            raise ValueError(f"reg_lambda must be >= 0, got {reg_lambda}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_gain = min_gain
        self.reg_lambda = reg_lambda
        self.root: TreeNode | None = None
        self.n_features: int | None = None

    def fit(
        self,
        x: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray | None = None,
    ) -> "RegressionTree":
        """Fit the tree to gradients (and optional Hessians).

        With ``hess=None`` all Hessians are 1, which reduces to fitting the
        negative mean gradient per leaf — i.e., ordinary least-squares
        regression on ``-grad``.
        """
        x = np.asarray(x, dtype=np.float64)
        grad = np.asarray(grad, dtype=np.float64).ravel()
        if x.ndim != 2 or x.shape[0] != grad.shape[0]:
            raise ValueError(
                f"x must be (n, d) aligned with grad, got {x.shape} "
                f"and {grad.shape}"
            )
        if hess is None:
            hess = np.ones_like(grad)
        else:
            hess = np.asarray(hess, dtype=np.float64).ravel()
            if hess.shape != grad.shape:
                raise ValueError("hess must be parallel to grad")
            if np.any(hess < 0):
                raise ValueError("hess must be non-negative")
        self.n_features = x.shape[1]
        self.root = self._build(x, grad, hess, depth=0)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Leaf value for each row of ``x``."""
        if self.root is None or self.n_features is None:
            raise RuntimeError("RegressionTree.predict called before fit")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.n_features:
            raise ValueError(
                f"x must be (n, {self.n_features}), got shape {x.shape}"
            )
        out = np.empty(x.shape[0], dtype=np.float64)
        self._predict_into(self.root, x, np.arange(x.shape[0]), out)
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        if self.root is None:
            raise RuntimeError("tree not fitted")
        return self._depth(self.root)

    def n_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        if self.root is None:
            raise RuntimeError("tree not fitted")
        return self._leaves(self.root)

    def feature_split_counts(self) -> np.ndarray:
        """How many internal nodes split on each feature, shape ``(d,)``."""
        if self.root is None or self.n_features is None:
            raise RuntimeError("tree not fitted")
        counts = np.zeros(self.n_features, dtype=np.int64)
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            counts[node.feature] += 1
            assert node.left is not None and node.right is not None
            stack.extend((node.left, node.right))
        return counts

    # -- internals ---------------------------------------------------------

    def _leaf_value(self, grad: np.ndarray, hess: np.ndarray) -> float:
        return float(-grad.sum() / (hess.sum() + self.reg_lambda))

    def _score(self, g_sum: float, h_sum: float) -> float:
        return g_sum * g_sum / (h_sum + self.reg_lambda)

    def _build(
        self, x: np.ndarray, grad: np.ndarray, hess: np.ndarray, depth: int
    ) -> TreeNode:
        node = TreeNode(value=self._leaf_value(grad, hess))
        n = x.shape[0]
        if depth >= self.max_depth or n < 2 * self.min_samples_leaf:
            return node
        best_gain = self.min_gain
        best: tuple[int, float, np.ndarray] | None = None
        parent_score = self._score(grad.sum(), hess.sum())
        for feature in range(x.shape[1]):
            column = x[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_vals = column[order]
            g_cum = np.cumsum(grad[order])
            h_cum = np.cumsum(hess[order])
            g_total, h_total = g_cum[-1], h_cum[-1]
            # Candidate split after position i (left gets i+1 samples).
            positions = np.arange(self.min_samples_leaf - 1, n - self.min_samples_leaf)
            if positions.size == 0:
                continue
            valid = sorted_vals[positions] < sorted_vals[positions + 1]
            positions = positions[valid]
            if positions.size == 0:
                continue
            g_left = g_cum[positions]
            h_left = h_cum[positions]
            gains = (
                self._score_vec(g_left, h_left)
                + self._score_vec(g_total - g_left, h_total - h_left)
                - parent_score
            )
            idx = int(np.argmax(gains))
            if gains[idx] > best_gain:
                best_gain = float(gains[idx])
                pos = positions[idx]
                threshold = 0.5 * (sorted_vals[pos] + sorted_vals[pos + 1])
                best = (feature, threshold, column <= threshold)
        if best is None:
            return node
        feature, threshold, mask = best
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x[mask], grad[mask], hess[mask], depth + 1)
        node.right = self._build(x[~mask], grad[~mask], hess[~mask], depth + 1)
        return node

    def _score_vec(self, g: np.ndarray, h: np.ndarray) -> np.ndarray:
        return g * g / (h + self.reg_lambda)

    def _predict_into(
        self, node: TreeNode, x: np.ndarray, idx: np.ndarray, out: np.ndarray
    ) -> None:
        if node.is_leaf:
            out[idx] = node.value
            return
        mask = x[idx, node.feature] <= node.threshold
        assert node.left is not None and node.right is not None
        self._predict_into(node.left, x, idx[mask], out)
        self._predict_into(node.right, x, idx[~mask], out)

    def _depth(self, node: TreeNode) -> int:
        if node.is_leaf:
            return 0
        assert node.left is not None and node.right is not None
        return 1 + max(self._depth(node.left), self._depth(node.right))

    def _leaves(self, node: TreeNode) -> int:
        if node.is_leaf:
            return 1
        assert node.left is not None and node.right is not None
        return self._leaves(node.left) + self._leaves(node.right)
