"""Confidence-rated boosting over pre-trained experts (SAMME-style).

The paper's **Ensemble** baseline aggregates VGG16, BoVW and DDM "using a
boosting technique" [52] (Schapire & Singer's confidence-rated predictions).
Because the member models are already trained, boosting here learns a stagewise
weighting of the experts: at each round the expert with the lowest weighted
error on a labeled calibration set is added with its SAMME confidence weight,
and sample weights are updated multiplicatively.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["ExpertBooster"]


class ExpertBooster:
    """Stagewise confidence-rated combination of fixed expert predictions.

    Parameters
    ----------
    n_rounds:
        Number of boosting rounds (experts may repeat across rounds).
    n_classes:
        Number of output classes.
    """

    def __init__(self, n_rounds: int = 10, n_classes: int = 3) -> None:
        if n_rounds <= 0:
            raise ValueError(f"n_rounds must be positive, got {n_rounds}")
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        self.n_rounds = n_rounds
        self.n_classes = n_classes
        self.alphas: list[float] = []
        self.chosen: list[int] = []

    def fit(
        self, expert_probs: Sequence[np.ndarray], y: np.ndarray
    ) -> "ExpertBooster":
        """Learn expert weights from calibration predictions.

        Parameters
        ----------
        expert_probs:
            One ``(n, n_classes)`` probability array per expert, all on the
            same ``n`` calibration samples.
        y:
            True labels for those samples.
        """
        y = np.asarray(y, dtype=np.int64).ravel()
        probs = [np.asarray(p, dtype=np.float64) for p in expert_probs]
        if not probs:
            raise ValueError("need at least one expert")
        n = y.shape[0]
        for p in probs:
            if p.shape != (n, self.n_classes):
                raise ValueError(
                    f"each expert must predict ({n}, {self.n_classes}), "
                    f"got {p.shape}"
                )
        predictions = [np.argmax(p, axis=1) for p in probs]
        weights = np.full(n, 1.0 / n)
        self.alphas = []
        self.chosen = []
        k = self.n_classes
        for _ in range(self.n_rounds):
            errors = [
                float(np.sum(weights * (pred != y))) for pred in predictions
            ]
            best = int(np.argmin(errors))
            err = min(max(errors[best], 1e-10), 1.0 - 1e-10)
            if err >= 1.0 - 1.0 / k:
                break  # no expert better than chance under current weights
            # SAMME multiclass confidence weight.
            alpha = float(np.log((1.0 - err) / err) + np.log(k - 1.0))
            if alpha <= 0:
                break
            self.alphas.append(alpha)
            self.chosen.append(best)
            mistakes = predictions[best] != y
            weights = weights * np.exp(alpha * mistakes)
            weights /= weights.sum()
        if not self.alphas:
            # Degenerate calibration set: fall back to the single best expert.
            accuracy = [float(np.mean(pred == y)) for pred in predictions]
            self.chosen = [int(np.argmax(accuracy))]
            self.alphas = [1.0]
        return self

    def expert_weights(self, n_experts: int) -> np.ndarray:
        """Total normalized weight assigned to each of ``n_experts``."""
        if not self.alphas:
            raise RuntimeError("ExpertBooster not fitted")
        totals = np.zeros(n_experts, dtype=np.float64)
        for alpha, idx in zip(self.alphas, self.chosen):
            if idx >= n_experts:
                raise ValueError("n_experts smaller than fitted expert indices")
            totals[idx] += alpha
        return totals / totals.sum()

    def predict_proba(self, expert_probs: Sequence[np.ndarray]) -> np.ndarray:
        """Weighted mixture of expert probabilities on new samples."""
        if not self.alphas:
            raise RuntimeError("ExpertBooster not fitted")
        probs = [np.asarray(p, dtype=np.float64) for p in expert_probs]
        weights = self.expert_weights(len(probs))
        mixture = np.zeros_like(probs[0])
        for w, p in zip(weights, probs):
            mixture += w * p
        return mixture / mixture.sum(axis=1, keepdims=True)

    def predict(self, expert_probs: Sequence[np.ndarray]) -> np.ndarray:
        """Most probable class of the weighted mixture."""
        return np.argmax(self.predict_proba(expert_probs), axis=1)
