"""Gradient-boosted decision trees with softmax multiclass objective.

This is the reproduction's stand-in for XGBoost [49], which the paper's CQC
module uses to fuse crowd labels and questionnaire answers into a truthful
label.  It implements the second-order (Newton) boosting update with
shrinkage, row subsampling, L2 leaf regularization and optional
early stopping — the core of the XGBoost algorithm, minus the systems-level
optimizations irrelevant at this scale.
"""

from __future__ import annotations

import numpy as np

from repro.boosting.tree import RegressionTree

__all__ = ["GradientBoostedClassifier"]


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class GradientBoostedClassifier:
    """Multiclass gradient boosting with one regression tree per class per round.

    Parameters
    ----------
    n_estimators:
        Maximum boosting rounds.
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth, min_samples_leaf, reg_lambda:
        Passed through to :class:`~repro.boosting.tree.RegressionTree`.
    subsample:
        Fraction of rows sampled (without replacement) per round.
    early_stopping_rounds:
        Stop when validation log-loss has not improved for this many rounds
        (requires validation data in :meth:`fit`).
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        reg_lambda: float = 1.0,
        subsample: float = 1.0,
        early_stopping_rounds: int | None = None,
    ) -> None:
        if n_estimators <= 0:
            raise ValueError(f"n_estimators must be positive, got {n_estimators}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 < subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {subsample}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.subsample = subsample
        self.early_stopping_rounds = early_stopping_rounds
        self.n_classes: int | None = None
        self._base_score: np.ndarray | None = None
        self._rounds: list[list[RegressionTree]] = []

    @property
    def n_rounds(self) -> int:
        """Number of boosting rounds actually fitted."""
        return len(self._rounds)

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        rng: np.random.Generator | None = None,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
    ) -> "GradientBoostedClassifier":
        """Fit to features ``x`` (n, d) and integer labels ``y`` (n,)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64).ravel()
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError(
                f"x must be (n, d) aligned with y, got {x.shape} and {y.shape}"
            )
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if y.min() < 0:
            raise ValueError("labels must be non-negative")
        self.n_classes = int(y.max()) + 1
        if self.n_classes < 2:
            self.n_classes = 2
        n, k = x.shape[0], self.n_classes

        has_val = x_val is not None and y_val is not None
        if self.early_stopping_rounds is not None and not has_val:
            raise ValueError("early stopping requires validation data")
        if rng is None:
            rng = np.random.default_rng(0)

        # Base score: class log-priors, so the model starts at the marginal.
        priors = np.bincount(y, minlength=k).astype(np.float64)
        priors = np.clip(priors / priors.sum(), 1e-12, None)
        self._base_score = np.log(priors)
        self._rounds = []

        onehot = np.zeros((n, k), dtype=np.float64)
        onehot[np.arange(n), y] = 1.0
        logits = np.tile(self._base_score, (n, 1))
        val_logits = (
            np.tile(self._base_score, (len(x_val), 1)) if has_val else None
        )
        best_val = np.inf
        best_round = 0

        for _ in range(self.n_estimators):
            probs = _softmax(logits)
            grad = probs - onehot
            hess = probs * (1.0 - probs)
            if self.subsample < 1.0:
                size = max(1, int(round(self.subsample * n)))
                rows = rng.choice(n, size=size, replace=False)
            else:
                rows = np.arange(n)
            round_trees: list[RegressionTree] = []
            for cls in range(k):
                tree = RegressionTree(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    reg_lambda=self.reg_lambda,
                )
                tree.fit(x[rows], grad[rows, cls], hess[rows, cls])
                logits[:, cls] += self.learning_rate * tree.predict(x)
                if has_val:
                    val_logits[:, cls] += self.learning_rate * tree.predict(x_val)
                round_trees.append(tree)
            self._rounds.append(round_trees)

            if has_val and self.early_stopping_rounds is not None:
                val_probs = _softmax(val_logits)
                y_val_arr = np.asarray(y_val, dtype=np.int64).ravel()
                picked = np.clip(
                    val_probs[np.arange(len(y_val_arr)), y_val_arr], 1e-12, None
                )
                val_loss = float(-np.log(picked).mean())
                if val_loss < best_val - 1e-9:
                    best_val = val_loss
                    best_round = len(self._rounds)
                elif len(self._rounds) - best_round >= self.early_stopping_rounds:
                    self._rounds = self._rounds[:best_round]
                    break
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Raw class logits, shape ``(n, n_classes)``."""
        if self._base_score is None or self.n_classes is None:
            raise RuntimeError("model not fitted")
        x = np.asarray(x, dtype=np.float64)
        logits = np.tile(self._base_score, (x.shape[0], 1))
        for round_trees in self._rounds:
            for cls, tree in enumerate(round_trees):
                logits[:, cls] += self.learning_rate * tree.predict(x)
        return logits

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Softmax class probabilities, shape ``(n, n_classes)``."""
        return _softmax(self.decision_function(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most probable class per row."""
        return np.argmax(self.decision_function(x), axis=1)

    def feature_importances(self) -> np.ndarray:
        """Split-frequency feature importances, normalized to sum to 1.

        Counts how often each feature is chosen for a split across all
        boosting rounds and classes — XGBoost's "weight" importance.  A
        uniform vector is returned if no tree ever split (degenerate fits).
        """
        if not self._rounds:
            raise RuntimeError("model not fitted")
        first_tree = self._rounds[0][0]
        if first_tree.n_features is None:
            raise RuntimeError("model not fitted")
        counts = np.zeros(first_tree.n_features, dtype=np.float64)
        for round_trees in self._rounds:
            for tree in round_trees:
                counts += tree.feature_split_counts()
        total = counts.sum()
        if total == 0:
            return np.full(counts.size, 1.0 / counts.size)
        return counts / total
