"""ROC curves and AUC for multi-class classifiers (Figure 7).

The paper plots macro-average ROC curves: each class is treated one-vs-rest,
per-class ROC curves are computed from the class scores, and the macro curve
averages the per-class true-positive rates over a common false-positive-rate
grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RocCurve", "binary_roc", "auc", "macro_average_roc"]


@dataclass(frozen=True)
class RocCurve:
    """An ROC curve as parallel arrays of FPR/TPR plus its AUC."""

    fpr: np.ndarray
    tpr: np.ndarray
    auc: float

    def interpolate(self, grid: np.ndarray) -> np.ndarray:
        """TPR values at the false-positive rates in ``grid``."""
        return np.interp(grid, self.fpr, self.tpr)


def binary_roc(y_true: np.ndarray, scores: np.ndarray) -> RocCurve:
    """ROC curve for a binary problem from real-valued scores.

    Parameters
    ----------
    y_true:
        Binary labels (0/1); must contain at least one of each class.
    scores:
        Scores where larger means "more likely positive".
    """
    y_true = np.asarray(y_true).ravel().astype(bool)
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must have the same length")
    n_pos = int(y_true.sum())
    n_neg = int(y_true.size - n_pos)
    if n_pos == 0 or n_neg == 0:
        raise ValueError("binary_roc requires both positive and negative samples")

    order = np.argsort(-scores, kind="stable")
    sorted_true = y_true[order]
    sorted_scores = scores[order]

    # Cumulative counts, collapsing ties so thresholds between equal scores
    # are not counted as distinct operating points.
    distinct = np.where(np.diff(sorted_scores))[0]
    threshold_idx = np.concatenate([distinct, [y_true.size - 1]])
    tps = np.cumsum(sorted_true)[threshold_idx]
    fps = (threshold_idx + 1) - tps

    tpr = np.concatenate([[0.0], tps / n_pos])
    fpr = np.concatenate([[0.0], fps / n_neg])
    return RocCurve(fpr=fpr, tpr=tpr, auc=auc(fpr, tpr))


def auc(fpr: np.ndarray, tpr: np.ndarray) -> float:
    """Area under a curve given by (fpr, tpr) points via the trapezoid rule."""
    fpr = np.asarray(fpr, dtype=np.float64)
    tpr = np.asarray(tpr, dtype=np.float64)
    if fpr.shape != tpr.shape or fpr.ndim != 1 or fpr.size < 2:
        raise ValueError("fpr and tpr must be 1-D arrays of equal length >= 2")
    order = np.argsort(fpr, kind="stable")
    return float(np.trapezoid(tpr[order], fpr[order]))


def macro_average_roc(
    y_true: np.ndarray, scores: np.ndarray, grid_size: int = 101
) -> RocCurve:
    """Macro-average one-vs-rest ROC over all classes (paper Figure 7).

    Parameters
    ----------
    y_true:
        Integer class labels, shape ``(n,)``.
    scores:
        Class scores/probabilities, shape ``(n, n_classes)``.
    grid_size:
        Number of false-positive-rate grid points for the averaged curve.
    """
    y_true = np.asarray(y_true, dtype=np.int64).ravel()
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2 or scores.shape[0] != y_true.size:
        raise ValueError(
            "scores must be (n, n_classes) aligned with y_true, "
            f"got {scores.shape} for {y_true.size} labels"
        )
    n_classes = scores.shape[1]
    grid = np.linspace(0.0, 1.0, grid_size)
    curves = []
    for cls in range(n_classes):
        positives = y_true == cls
        if positives.all() or not positives.any():
            continue  # class absent in y_true; skip it from the macro average
        curves.append(binary_roc(positives, scores[:, cls]))
    if not curves:
        raise ValueError("no class has both positive and negative samples")
    mean_tpr = np.mean([c.interpolate(grid) for c in curves], axis=0)
    mean_tpr[0] = 0.0
    mean_tpr[-1] = 1.0
    return RocCurve(fpr=grid, tpr=mean_tpr, auc=auc(grid, mean_tpr))
