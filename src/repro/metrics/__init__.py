"""Evaluation metrics: classification scores, ROC/AUC, information measures."""

from repro.metrics.classification import (
    ClassificationReport,
    accuracy,
    classification_report,
    confusion_matrix,
    macro_f1,
    macro_precision,
    macro_recall,
)
from repro.metrics.information import (
    batch_entropy,
    batch_normalized_entropy,
    bounded_divergence,
    entropy,
    kl_divergence,
    normalized_entropy,
    symmetric_kl,
)
from repro.metrics.roc import RocCurve, auc, binary_roc, macro_average_roc

__all__ = [
    "ClassificationReport",
    "accuracy",
    "classification_report",
    "confusion_matrix",
    "macro_f1",
    "macro_precision",
    "macro_recall",
    "batch_entropy",
    "batch_normalized_entropy",
    "bounded_divergence",
    "entropy",
    "kl_divergence",
    "normalized_entropy",
    "symmetric_kl",
    "RocCurve",
    "auc",
    "binary_roc",
    "macro_average_roc",
]
