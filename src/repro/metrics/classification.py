"""Multi-class classification metrics (macro-averaged, as in the paper).

The paper reports Accuracy, Precision, Recall and F1 macro-averaged over the
three damage classes because the Ecuador dataset is class-balanced (§V-C.1).
All functions take integer label arrays; probabilistic outputs are handled by
:mod:`repro.metrics.roc`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "confusion_matrix",
    "accuracy",
    "macro_precision",
    "macro_recall",
    "macro_f1",
    "ClassificationReport",
    "classification_report",
]


def _validate_labels(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None
) -> tuple[np.ndarray, np.ndarray, int]:
    y_true = np.asarray(y_true, dtype=np.int64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.int64).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            "y_true and y_pred must have the same length, "
            f"got {y_true.shape} and {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("cannot compute metrics on empty label arrays")
    if y_true.min(initial=0) < 0 or y_pred.min(initial=0) < 0:
        raise ValueError("labels must be non-negative integers")
    inferred = int(max(y_true.max(), y_pred.max())) + 1
    if n_classes is None:
        n_classes = inferred
    elif inferred > n_classes:
        raise ValueError(
            f"labels exceed n_classes={n_classes}: max label {inferred - 1}"
        )
    return y_true, y_pred, n_classes


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None
) -> np.ndarray:
    """Return the ``(n_classes, n_classes)`` confusion matrix.

    Rows index the true class, columns the predicted class.
    """
    y_true, y_pred, n_classes = _validate_labels(y_true, y_pred, n_classes)
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of samples whose predicted label equals the true label."""
    y_true, y_pred, _ = _validate_labels(y_true, y_pred, None)
    return float(np.mean(y_true == y_pred))


def _per_class_prf(
    matrix: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    true_positive = np.diag(matrix).astype(np.float64)
    predicted = matrix.sum(axis=0).astype(np.float64)
    actual = matrix.sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, true_positive / predicted, 0.0)
        recall = np.where(actual > 0, true_positive / actual, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / denom, 0.0)
    return precision, recall, f1


def macro_precision(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None
) -> float:
    """Unweighted mean of per-class precision."""
    precision, _, _ = _per_class_prf(confusion_matrix(y_true, y_pred, n_classes))
    return float(precision.mean())


def macro_recall(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None
) -> float:
    """Unweighted mean of per-class recall."""
    _, recall, _ = _per_class_prf(confusion_matrix(y_true, y_pred, n_classes))
    return float(recall.mean())


def macro_f1(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None
) -> float:
    """Unweighted mean of per-class F1 scores."""
    _, _, f1 = _per_class_prf(confusion_matrix(y_true, y_pred, n_classes))
    return float(f1.mean())


@dataclass(frozen=True)
class ClassificationReport:
    """Bundle of the four metrics reported in the paper's Table II."""

    accuracy: float
    precision: float
    recall: float
    f1: float

    def as_row(self) -> tuple[float, float, float, float]:
        """Return (accuracy, precision, recall, f1) in Table II column order."""
        return (self.accuracy, self.precision, self.recall, self.f1)

    def __str__(self) -> str:
        return (
            f"acc={self.accuracy:.3f} prec={self.precision:.3f} "
            f"rec={self.recall:.3f} f1={self.f1:.3f}"
        )


def classification_report(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None
) -> ClassificationReport:
    """Compute all four Table II metrics at once."""
    matrix = confusion_matrix(y_true, y_pred, n_classes)
    precision, recall, f1 = _per_class_prf(matrix)
    total = matrix.sum()
    return ClassificationReport(
        accuracy=float(np.diag(matrix).sum() / total),
        precision=float(precision.mean()),
        recall=float(recall.mean()),
        f1=float(f1.mean()),
    )
