"""Information-theoretic quantities used by QSS and MIC.

Committee entropy (Definition 8, Eq. 3) measures how uncertain the weighted
committee is about a sample; symmetric KL divergence (Eq. 5) measures how far
an expert's label distribution is from the crowd's truthful label.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "entropy",
    "normalized_entropy",
    "kl_divergence",
    "symmetric_kl",
    "bounded_divergence",
]

_EPS = 1e-12


def _as_distribution(probs: np.ndarray, name: str) -> np.ndarray:
    probs = np.asarray(probs, dtype=np.float64).ravel()
    if probs.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if np.any(probs < 0):
        raise ValueError(f"{name} has negative entries")
    total = probs.sum()
    if total <= 0:
        raise ValueError(f"{name} must have positive mass")
    return probs / total


def entropy(probs: np.ndarray, base: float | None = None) -> float:
    """Shannon entropy of a distribution (natural log by default).

    Inputs are renormalized so unnormalized committee votes can be passed
    directly, matching Eq. 3's use of the normalized committee vote.
    """
    p = _as_distribution(probs, "probs")
    nonzero = p[p > _EPS]
    value = float(-(nonzero * np.log(nonzero)).sum())
    if base is not None:
        value /= float(np.log(base))
    return value


def normalized_entropy(probs: np.ndarray) -> float:
    """Entropy scaled to [0, 1] by the maximum (uniform) entropy."""
    p = _as_distribution(probs, "probs")
    if p.size == 1:
        return 0.0
    return entropy(p) / float(np.log(p.size))


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """KL(p || q) with epsilon smoothing so zero entries stay finite."""
    p = _as_distribution(p, "p")
    q = _as_distribution(q, "q")
    if p.shape != q.shape:
        raise ValueError(f"p and q must have the same shape: {p.shape} vs {q.shape}")
    p_s = np.clip(p, _EPS, None)
    q_s = np.clip(q, _EPS, None)
    return float((p_s * np.log(p_s / q_s)).sum())


def symmetric_kl(p: np.ndarray, q: np.ndarray) -> float:
    """Symmetric KL divergence: KL(p||q) + KL(q||p) (Eq. 5)."""
    return kl_divergence(p, q) + kl_divergence(q, p)


def bounded_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Symmetric KL mapped to [0, 1) via ``d / (1 + d)``.

    This is the normalization :math:`\\delta` in Eq. 5: the MIC loss needs a
    divergence on a [0, 1] scale so the exponential-weights update is stable.
    """
    divergence = symmetric_kl(p, q)
    return divergence / (1.0 + divergence)
