"""Information-theoretic quantities used by QSS and MIC.

Committee entropy (Definition 8, Eq. 3) measures how uncertain the weighted
committee is about a sample; symmetric KL divergence (Eq. 5) measures how far
an expert's label distribution is from the crowd's truthful label.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "entropy",
    "normalized_entropy",
    "batch_entropy",
    "batch_normalized_entropy",
    "kl_divergence",
    "symmetric_kl",
    "bounded_divergence",
]

_EPS = 1e-12


def _as_distribution(probs: np.ndarray, name: str) -> np.ndarray:
    probs = np.asarray(probs, dtype=np.float64).ravel()
    if probs.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if np.any(probs < 0):
        raise ValueError(f"{name} has negative entries")
    total = probs.sum()
    if total <= 0:
        raise ValueError(f"{name} must have positive mass")
    return probs / total


def entropy(probs: np.ndarray, base: float | None = None) -> float:
    """Shannon entropy of a distribution (natural log by default).

    Inputs are renormalized so unnormalized committee votes can be passed
    directly, matching Eq. 3's use of the normalized committee vote.
    """
    p = _as_distribution(probs, "probs")
    nonzero = p[p > _EPS]
    value = float(-(nonzero * np.log(nonzero)).sum())
    if base is not None:
        value /= float(np.log(base))
    return value


def normalized_entropy(probs: np.ndarray) -> float:
    """Entropy scaled to [0, 1] by the maximum (uniform) entropy."""
    p = _as_distribution(probs, "probs")
    if p.size == 1:
        return 0.0
    return entropy(p) / float(np.log(p.size))


def _as_distribution_rows(probs: np.ndarray, name: str) -> np.ndarray:
    """Row-wise :func:`_as_distribution` for an ``(n, k)`` array."""
    probs = np.asarray(probs, dtype=np.float64)
    if probs.ndim != 2:
        raise ValueError(f"{name} must be 2-D (n, k), got shape {probs.shape}")
    if probs.shape[1] == 0:
        raise ValueError(f"{name} rows must be non-empty")
    if np.any(probs < 0):
        raise ValueError(f"{name} has negative entries")
    totals = probs.sum(axis=1, keepdims=True)
    if np.any(totals <= 0):
        raise ValueError(f"{name} rows must have positive mass")
    return probs / totals

def batch_entropy(probs: np.ndarray, base: float | None = None) -> np.ndarray:
    """Row-wise Shannon entropy of an ``(n, k)`` array, shape ``(n,)``.

    The vectorized form of :func:`entropy`, used on the committee's hot
    path (Eq. 3 over the whole image pool).  For the committee's small
    ``k`` the result is bit-identical to looping :func:`entropy` over the
    rows: each row is normalized by its own sum exactly as the scalar
    path does, sub-epsilon entries contribute an exact ``0.0`` (adding
    zeros to an IEEE sum of negative terms never changes it), and the
    row-axis reduction of a contiguous array matches the 1-D reduction.
    """
    p = _as_distribution_rows(probs, "probs")
    # Guard the log's domain with 1.0 where p is (near) zero; the masked
    # positions contribute exactly 0.0, mirroring the scalar filtering.
    safe = np.where(p > _EPS, p, 1.0)
    contributions = np.where(p > _EPS, p * np.log(safe), 0.0)
    values = -contributions.sum(axis=1)
    if base is not None:
        values = values / float(np.log(base))
    return values

def batch_normalized_entropy(probs: np.ndarray) -> np.ndarray:
    """Row-wise :func:`normalized_entropy` of an ``(n, k)`` array."""
    p = _as_distribution_rows(probs, "probs")
    if p.shape[1] == 1:
        return np.zeros(p.shape[0])
    # Mirror the scalar path exactly: normalize once here, then let
    # batch_entropy renormalize the already-normalized rows.
    return batch_entropy(p) / float(np.log(p.shape[1]))

def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """KL(p || q) with epsilon smoothing so zero entries stay finite."""
    p = _as_distribution(p, "p")
    q = _as_distribution(q, "q")
    if p.shape != q.shape:
        raise ValueError(f"p and q must have the same shape: {p.shape} vs {q.shape}")
    p_s = np.clip(p, _EPS, None)
    q_s = np.clip(q, _EPS, None)
    return float((p_s * np.log(p_s / q_s)).sum())


def symmetric_kl(p: np.ndarray, q: np.ndarray) -> float:
    """Symmetric KL divergence: KL(p||q) + KL(q||p) (Eq. 5)."""
    return kl_divergence(p, q) + kl_divergence(q, p)


def bounded_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Symmetric KL mapped to [0, 1) via ``d / (1 + d)``.

    This is the normalization :math:`\\delta` in Eq. 5: the MIC loss needs a
    divergence on a [0, 1] scale so the exponential-weights update is stable.
    """
    divergence = symmetric_kl(p, q)
    return divergence / (1.0 + divergence)
