"""The event registry: every deployment the service knows about.

An ordered, id-keyed collection of :class:`~repro.serve.deployment.Deployment`
objects.  Iteration order is insertion order; all cross-event fan-outs in
the service sort by ``event_id`` instead, so registry order never leaks
into scheduling decisions.
"""

from __future__ import annotations

from typing import Iterator

from repro.serve.deployment import Deployment

__all__ = ["EventRegistry"]


class EventRegistry:
    """Deployments by event id, with duplicate-id rejection."""

    def __init__(self) -> None:
        self._events: dict[str, Deployment] = {}

    def add(self, deployment: Deployment) -> Deployment:
        """Register a deployment; raises on a duplicate event id."""
        event_id = deployment.event_id
        if event_id in self._events:
            raise ValueError(f"event {event_id!r} is already registered")
        self._events[event_id] = deployment
        return deployment

    def get(self, event_id: str) -> Deployment:
        """The deployment for ``event_id`` (KeyError with a clear message)."""
        try:
            return self._events[event_id]
        except KeyError:
            raise KeyError(
                f"unknown event {event_id!r}; registered: "
                f"{sorted(self._events)}"
            ) from None

    def remove(self, event_id: str) -> Deployment:
        """Deregister and return a deployment."""
        deployment = self.get(event_id)
        del self._events[event_id]
        return deployment

    def active(self) -> list[Deployment]:
        """Unfinished deployments, sorted by event id (deterministic)."""
        return sorted(
            (d for d in self._events.values() if not d.done),
            key=lambda d: d.event_id,
        )

    def all(self) -> list[Deployment]:
        """Every deployment, sorted by event id."""
        return sorted(self._events.values(), key=lambda d: d.event_id)

    def __contains__(self, event_id: str) -> bool:
        return event_id in self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Deployment]:
        return iter(self._events.values())

    def status_table(self) -> dict[str, dict]:
        """JSON-safe ``{event_id: status}`` for every deployment."""
        return {d.event_id: d.status() for d in self.all()}
