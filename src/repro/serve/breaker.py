"""Deterministic per-event circuit breaker for the serving layer.

A quarantined deployment must not keep burning shared crowd capacity on
a platform that is down, a workload that poisons its own cycles, or a
model that rolls back every retrain.  The classic remedy is a circuit
breaker per dependency; here the "dependency" is one event's whole
sensing loop, and the breaker's clock is the service's *virtual-time*
window counter — never the wall clock — so every transition is a pure
function of the tick history and replays bit-for-bit on
:meth:`~repro.serve.service.CrowdLearnService.resume`.

States and legal transitions::

    closed ──(failure rate over the sliding window ≥ threshold,
              or a bulkhead trip)──▶ open
    open ──(cooldown_windows sensing windows elapse; probe budget
            left)──▶ half_open
    half_open ──(probe tick clean)──▶ closed
    half_open ──(probe tick fails)──▶ open

No other transition exists — the property test in
``tests/property/test_breaker_properties.py`` drives arbitrary
failure/success sequences through the machine and asserts exactly this.

A *failure* is a completed tick that saw platform errors, timeouts or
guard rollbacks (see :func:`repro.serve.health.tick_failed`), or a tick
whose exception the service's bulkhead caught (:meth:`force_open`).
``max_probe_rounds`` bounds the open→half_open cycle so a permanently
faulted event converges to "open, probes exhausted" and ``drain()``
terminates instead of probing forever.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BreakerPolicy", "CircuitBreaker", "BREAKER_STATES"]

#: The three breaker states, in ladder order.
BREAKER_STATES: tuple[str, ...] = ("closed", "open", "half_open")

#: The only edges the state machine may take.
LEGAL_TRANSITIONS: frozenset[tuple[str, str]] = frozenset(
    {
        ("closed", "open"),
        ("open", "half_open"),
        ("half_open", "closed"),
        ("half_open", "open"),
    }
)


@dataclass(frozen=True)
class BreakerPolicy:
    """Tuning knobs for one event's breaker.

    Parameters
    ----------
    window:
        Sliding window of completed ticks the failure rate is computed
        over.
    failure_threshold:
        Open when ``failures / samples`` in the window reaches this.
    min_samples:
        Never open on fewer than this many samples (a single unlucky
        first tick must not quarantine a fresh event).
    cooldown_windows:
        Sensing windows (virtual time, not ticks) the breaker stays open
        before a half-open probe may run.
    probe_successes:
        Consecutive clean probe ticks required to close again.
    max_probe_rounds:
        Open→half_open rounds allowed before the event is parked for
        good (bounds ``drain()`` under a permanent fault).
    """

    window: int = 6
    failure_threshold: float = 0.5
    min_samples: int = 3
    cooldown_windows: int = 2
    probe_successes: int = 1
    max_probe_rounds: int = 2

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got "
                f"{self.failure_threshold}"
            )
        if self.min_samples < 1:
            raise ValueError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )
        if self.cooldown_windows < 1:
            raise ValueError(
                f"cooldown_windows must be >= 1, got {self.cooldown_windows}"
            )
        if self.probe_successes < 1:
            raise ValueError(
                f"probe_successes must be >= 1, got {self.probe_successes}"
            )
        if self.max_probe_rounds < 0:
            raise ValueError(
                f"max_probe_rounds must be >= 0, got {self.max_probe_rounds}"
            )

    def as_dict(self) -> dict:
        """JSON-safe form (manifest round-trip)."""
        return {
            "window": self.window,
            "failure_threshold": self.failure_threshold,
            "min_samples": self.min_samples,
            "cooldown_windows": self.cooldown_windows,
            "probe_successes": self.probe_successes,
            "max_probe_rounds": self.max_probe_rounds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BreakerPolicy":
        """Inverse of :meth:`as_dict` (ignores unknown keys)."""
        names = cls.__dataclass_fields__.keys()
        return cls(**{k: v for k, v in data.items() if k in names})


class CircuitBreaker:
    """One event's breaker; all state is JSON-serializable and exact.

    The machine consumes two inputs only: :meth:`record` with a tick's
    boolean failure signal plus the sensing window it ran in, and
    :meth:`try_half_open` with the current window (the service calls it
    when a scheduled probe entry pops off the virtual-time heap).
    :meth:`force_open` is the bulkhead's hammer for ticks that never
    completed at all.
    """

    def __init__(self, policy: BreakerPolicy | None = None) -> None:
        self.policy = policy if policy is not None else BreakerPolicy()
        self.state: str = "closed"
        #: Sliding window of 0/1 failure outcomes (most recent last).
        self.outcomes: list[int] = []
        #: Sensing window of the most recent close→open transition.
        self.opened_at: int | None = None
        self.probe_streak: int = 0
        self.probe_rounds: int = 0
        #: Lifetime transition counts, for telemetry and the bench report.
        self.opened_total: int = 0
        self.half_open_total: int = 0
        self.closed_total: int = 0

    # -- inputs ------------------------------------------------------------

    def record(self, failure: bool, window: int) -> str | None:
        """Feed one completed tick's outcome; returns the new state on a
        transition, else ``None``."""
        if self.state == "open":
            raise RuntimeError(
                "an open breaker admits no ticks; call try_half_open first"
            )
        if self.state == "half_open":
            if failure:
                self._open(window)
                return "open"
            self.probe_streak += 1
            if self.probe_streak >= self.policy.probe_successes:
                self._close()
                return "closed"
            return None
        self.outcomes.append(1 if failure else 0)
        del self.outcomes[: -self.policy.window]
        if (
            len(self.outcomes) >= self.policy.min_samples
            and sum(self.outcomes) / len(self.outcomes)
            >= self.policy.failure_threshold
        ):
            self._open(window)
            return "open"
        return None

    def force_open(self, window: int) -> str:
        """Bulkhead trip: the tick raised instead of completing."""
        if self.state == "open":
            return "open"
        self._open(window)
        return "open"

    def try_half_open(self, window: int) -> bool:
        """Begin a probe if the cooldown has elapsed and budget remains."""
        due = self.probe_window()
        if due is None or window < due:
            return False
        self.state = "half_open"
        self.probe_rounds += 1
        self.probe_streak = 0
        self.half_open_total += 1
        return True

    # -- introspection -----------------------------------------------------

    def probe_window(self) -> int | None:
        """First sensing window a probe may run in; ``None`` when the
        breaker is not open or its probe budget is spent."""
        if self.state != "open" or self.opened_at is None:
            return None
        if self.probe_rounds >= self.policy.max_probe_rounds:
            return None
        return self.opened_at + self.policy.cooldown_windows

    def failure_rate(self) -> float:
        """Current sliding-window failure rate (0 with no samples)."""
        if not self.outcomes:
            return 0.0
        return sum(self.outcomes) / len(self.outcomes)

    # -- transitions -------------------------------------------------------

    def _open(self, window: int) -> None:
        self.state = "open"
        self.opened_at = int(window)
        self.probe_streak = 0
        self.outcomes = []
        self.opened_total += 1

    def _close(self) -> None:
        self.state = "closed"
        self.opened_at = None
        self.probe_streak = 0
        self.probe_rounds = 0
        self.outcomes = []
        self.closed_total += 1

    # -- persistence -------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe full state for the serve journal."""
        return {
            "policy": self.policy.as_dict(),
            "state": self.state,
            "outcomes": list(self.outcomes),
            "opened_at": self.opened_at,
            "probe_streak": self.probe_streak,
            "probe_rounds": self.probe_rounds,
            "opened_total": self.opened_total,
            "half_open_total": self.half_open_total,
            "closed_total": self.closed_total,
        }

    @classmethod
    def restore(cls, state: dict) -> "CircuitBreaker":
        """Rebuild a breaker bit-for-bit from :meth:`snapshot` output."""
        breaker = cls(BreakerPolicy.from_dict(state["policy"]))
        if state["state"] not in BREAKER_STATES:
            raise ValueError(f"unknown breaker state {state['state']!r}")
        breaker.state = state["state"]
        breaker.outcomes = [int(v) for v in state["outcomes"]]
        breaker.opened_at = (
            None if state["opened_at"] is None else int(state["opened_at"])
        )
        breaker.probe_streak = int(state["probe_streak"])
        breaker.probe_rounds = int(state["probe_rounds"])
        breaker.opened_total = int(state["opened_total"])
        breaker.half_open_total = int(state["half_open_total"])
        breaker.closed_total = int(state["closed_total"])
        return breaker
