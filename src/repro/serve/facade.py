"""Async façade over :class:`~repro.serve.service.CrowdLearnService`.

The serving core is synchronous and single-threaded by design — that is
what makes its interleaving deterministic.  Real deployments, though,
front it with an event loop: operators submit events and poll status
while cycles grind in the background.  :class:`AsyncCrowdLearnService`
provides that surface with plain ``asyncio``:

- every method holds one :class:`asyncio.Lock`, so the core never sees
  concurrent mutation (admission arithmetic and the heap stay
  single-writer);
- :meth:`drain` yields to the loop between sensing cycles, so status
  queries and fresh submissions interleave with a long drain instead of
  blocking behind it.

Determinism is untouched: the lock serializes callers but never reorders
the virtual-time heap, so a drained fleet's digests match the
synchronous service byte for byte.

A tick that raises never aborts the drain: the core's bulkhead
quarantines the faulted event and :meth:`drain` keeps going, returning a
:class:`DrainOutcome` that names every event that finished and every
event that was parked (with its quarantine reason) — structured results,
not an exception that takes the surviving events down with it.
"""

from __future__ import annotations

import asyncio
import dataclasses

from repro.serve.service import CrowdLearnService, EventStatus

__all__ = ["AsyncCrowdLearnService", "DrainOutcome"]


@dataclasses.dataclass(frozen=True)
class DrainOutcome:
    """What a full drain accomplished, event by event.

    ``ticks`` counts executed sensing cycles; ``drained`` lists events
    that ran to completion; ``quarantined`` maps each parked event to
    its operator-facing quarantine reason.
    """

    ticks: int
    drained: tuple[str, ...]
    quarantined: dict[str, str]

    @property
    def clean(self) -> bool:
        """Whether every event drained without a quarantine."""
        return not self.quarantined

    def as_dict(self) -> dict:
        return {
            "ticks": self.ticks,
            "drained": list(self.drained),
            "quarantined": dict(self.quarantined),
        }


class AsyncCrowdLearnService:
    """Cooperative wrapper: one lock, one yield point per sensing cycle."""

    def __init__(self, service: CrowdLearnService) -> None:
        self.service = service
        self._lock = asyncio.Lock()

    async def submit_event(self, event_id: str, **kwargs):
        """Register an event (see :meth:`CrowdLearnService.submit_event`)."""
        async with self._lock:
            return self.service.submit_event(event_id, **kwargs)

    async def ingest_images(self, event_id: str, **kwargs) -> int:
        """Feed a burst into a live event; returns cycles added."""
        async with self._lock:
            return self.service.ingest_images(event_id, **kwargs)

    async def step(self) -> str | None:
        """Run the next due sensing cycle (``None`` when drained)."""
        async with self._lock:
            return self.service.step()

    async def drain(self) -> DrainOutcome:
        """Run every pending cycle, yielding to the loop between cycles.

        Per-event failures surface in the returned
        :class:`DrainOutcome`, never as an exception: the bulkhead in
        :meth:`CrowdLearnService.step` parks the faulted event and the
        drain continues over the survivors.
        """
        executed = 0
        while True:
            async with self._lock:
                event_id = self.service.step()
            if event_id is None:
                break
            executed += 1
            # Let queued status calls / submissions in before the next tick.
            await asyncio.sleep(0)
        async with self._lock:
            service = self.service
            drained = tuple(
                d.event_id for d in service.registry.all() if d.done
            )
            quarantined = {
                event_id: (
                    service.health[event_id].quarantine_reason
                    or "breaker open"
                )
                for event_id in service.quarantined_events()
            }
        return DrainOutcome(
            ticks=executed, drained=drained, quarantined=quarantined
        )

    async def event_status(self, event_id: str) -> EventStatus:
        async with self._lock:
            return self.service.event_status(event_id)

    async def digests(self) -> dict[str, str]:
        async with self._lock:
            return self.service.digests()

    async def combined_digest(self) -> str:
        async with self._lock:
            return self.service.combined_digest()

    async def close(self) -> None:
        async with self._lock:
            self.service.close()
