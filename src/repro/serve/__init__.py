"""Multi-event serving layer: N concurrent deployments, one shared crowd.

CrowdLearn (ICDCS'19) is a *system* serving damage-assessment
applications, yet the repro historically ran one in-process loop per
deployment.  Real disasters overlap: imagery arrives in bursts, and a
finite crowd is contended across events.  This package turns the loop
into a service:

- :class:`~repro.serve.registry.EventRegistry` of per-event
  :class:`~repro.serve.deployment.Deployment`\\ s (each wrapping a
  :class:`~repro.core.system.CrowdLearnSystem` plus its journal and
  checkpoint),
- one global virtual-time heap interleaving the N sensing loops
  deterministically (per-event RNG streams, stable tie-break on
  ``(due_time, event_id, seq)``),
- a :class:`~repro.serve.pool.SharedCrowdPool` metering per-cycle crowd
  capacity across events through pluggable
  :mod:`~repro.serve.admission` policies, with per-event ledgers and
  explicit backpressure (deferred to later windows or shed),
- a synchronous service core (:class:`~repro.serve.service.CrowdLearnService`),
  an asyncio façade (:class:`~repro.serve.facade.AsyncCrowdLearnService`)
  and a surge load generator (:mod:`~repro.serve.loadgen`),
- service-level resilience: per-event circuit breakers
  (:mod:`~repro.serve.breaker`), a degradation ladder
  (:mod:`~repro.serve.health`), and bulkhead isolation in the service
  core so one faulted event never takes the fleet down.
"""

from repro.serve.admission import (
    AdmissionPolicy,
    AdmissionRequest,
    DeadlineAwarePolicy,
    FairSharePolicy,
    PriorityPolicy,
    create_admission_policy,
)
from repro.serve.breaker import BREAKER_STATES, BreakerPolicy, CircuitBreaker
from repro.serve.deployment import Deployment
from repro.serve.facade import AsyncCrowdLearnService, DrainOutcome
from repro.serve.health import (
    HEALTH_STATES,
    EventHealth,
    HealthPolicy,
    tick_failed,
)
from repro.serve.pool import AdmissionDecision, EventLedger, SharedCrowdPool
from repro.serve.registry import EventRegistry
from repro.serve.service import CrowdLearnService, EventStatus

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "AdmissionRequest",
    "AsyncCrowdLearnService",
    "BREAKER_STATES",
    "BreakerPolicy",
    "CircuitBreaker",
    "CrowdLearnService",
    "DeadlineAwarePolicy",
    "Deployment",
    "DrainOutcome",
    "EventHealth",
    "EventLedger",
    "EventRegistry",
    "EventStatus",
    "FairSharePolicy",
    "HEALTH_STATES",
    "HealthPolicy",
    "PriorityPolicy",
    "SharedCrowdPool",
    "create_admission_policy",
    "tick_failed",
]
