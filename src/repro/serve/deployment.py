"""One served disaster event: a system, its stream, and its durability.

A :class:`Deployment` owns everything single-tenant about an event — the
:class:`~repro.core.system.CrowdLearnSystem`, the sensing stream, the
accumulated :class:`~repro.core.system.RunOutcome`, and (in durable
mode) the event's checkpoint file and write-ahead journal.  The service
drives it one cycle at a time through :meth:`run_next_cycle`, passing
the query cap the shared pool granted; everything inside the cycle is
exactly the standalone loop, which is what makes an N=1 served event
byte-identical to ``CrowdLearnSystem.run``.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path

from repro.core.system import CrowdLearnSystem, CycleOutcome, RunOutcome
from repro.data.dataset import DisasterImage
from repro.data.stream import SensingCycleStream

__all__ = ["Deployment"]

#: Base image id for ingested bursts: far above any world dataset's ids so
#: burst images can never alias a seed image in cache pool keys.
_BURST_ID_BASE = 1_000_000


class Deployment:
    """A single event's loop, driven cycle-by-cycle by the service.

    Parameters
    ----------
    event_id:
        Stable identity; orders heap ties and namespaces caches/labels.
    system, stream:
        The event's own system (per-event RNG streams, committee clone,
        platform, ledger) and sensing-cycle stream.
    priority:
        Static weight for priority/deadline admission.
    start_window:
        Global sensing window in which the event's cycle 0 runs.
    checkpoint_path, journal:
        Durable mode: snapshot after *every* cycle and rotate the
        journal, mirroring ``CrowdLearnSystem._run_from`` with
        ``checkpoint_every=1``.
    """

    def __init__(
        self,
        event_id: str,
        system: CrowdLearnSystem,
        stream: SensingCycleStream,
        priority: float = 1.0,
        start_window: int = 0,
        checkpoint_path: str | Path | None = None,
        journal=None,
        outcome: RunOutcome | None = None,
        next_cycle: int = 0,
    ) -> None:
        if priority <= 0:
            raise ValueError(f"priority must be > 0, got {priority}")
        self.event_id = event_id
        self.system = system
        self.stream = stream
        self.priority = float(priority)
        self.start_window = int(start_window)
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.journal = journal
        self.outcome = outcome if outcome is not None else RunOutcome()
        self.next_cycle = int(next_cycle)
        #: Wall seconds of each completed cycle (for p50/p99 latency).
        self.cycle_wall_seconds: list[float] = []
        #: The pool grant each completed cycle ran under.
        self.grants: list[int] = []
        #: Ingested bursts, as ``(at_cycle, n_images, burst_seed)`` —
        #: re-applied on resume (bursts are seed-derived, not pickled).
        self.bursts: list[tuple[int, int, int]] = []

    # -- introspection -----------------------------------------------------

    @property
    def n_cycles(self) -> int:
        return len(self.stream)

    @property
    def done(self) -> bool:
        return self.next_cycle >= self.n_cycles

    @property
    def cycles_remaining(self) -> int:
        return max(self.n_cycles - self.next_cycle, 0)

    def demand(self) -> int:
        """Fresh query demand of the next sensing cycle."""
        if self.done:
            return 0
        cycle = self.stream.cycle(self.next_cycle)
        return min(self.system.config.queries_per_cycle, len(cycle))

    def max_servable(self) -> int:
        """Hard cap on queries the next cycle's imagery can absorb."""
        if self.done:
            return 0
        return len(self.stream.cycle(self.next_cycle))

    def releasable_budget_cents(self) -> float:
        """Unspent crowd budget a parked event can no longer use.

        Surfaced in quarantine journal records and the serve report so
        operators can see what a faulted event leaves on the table.
        """
        return float(self.system.ledger.remaining)

    # -- the loop ----------------------------------------------------------

    def run_next_cycle(self, grant: int) -> CycleOutcome:
        """Run one sensing cycle under the pool's query cap.

        Mirrors one iteration of ``CrowdLearnSystem._run_from``: attach
        the journal, run the cycle, append the outcome, snapshot and
        rotate.  ``cycle_query_cap`` is reset before the checkpoint is
        written so snapshots never bake in a transient grant.
        """
        if self.done:
            raise RuntimeError(f"event {self.event_id!r} already drained")
        cycle = self.stream.cycle(self.next_cycle)
        system = self.system
        if self.journal is not None:
            system.journal = self.journal
        system.cycle_query_cap = int(grant)
        started = time.perf_counter()
        try:
            outcome_cycle = system.run_cycle(cycle)
        finally:
            system.cycle_query_cap = None
            if self.journal is not None:
                system.journal = None
        self.cycle_wall_seconds.append(time.perf_counter() - started)
        self.grants.append(int(grant))
        self.outcome.append(outcome_cycle)
        self.next_cycle += 1
        if self.checkpoint_path is not None:
            from repro.eval.persistence import save_checkpoint

            save_checkpoint(
                self.checkpoint_path, system, self.stream, self.outcome,
                self.next_cycle,
            )
            if self.journal is not None:
                self.journal.rotate(self.next_cycle)
        return outcome_cycle

    # -- imagery ingestion -------------------------------------------------

    def ingest(self, images: list[DisasterImage],
               burst_seed: int | None = None) -> int:
        """Append a burst of fresh imagery as extra sensing cycles.

        Burst images are re-identified into a disjoint id range (see
        ``_BURST_ID_BASE``) so they can never alias the world dataset in
        prediction-cache pool keys, then appended to the stream's image
        plan; the stream grows by however many (possibly ragged) cycles
        the burst fills.  Returns the number of cycles added.

        ``burst_seed`` records how to regenerate the burst; resumable
        services journal ``(at_cycle, n_images, burst_seed)`` instead of
        pixels.
        """
        if not images:
            return 0
        burst_index = len(self.bursts)
        base = _BURST_ID_BASE * (burst_index + 1)
        relabeled = [
            DisasterImage(
                image.pixels,
                dataclasses.replace(image.metadata, image_id=base + i),
            )
            for i, image in enumerate(images)
        ]
        stream = self.stream
        stream._images.extend(relabeled)
        per_cycle = stream.images_per_cycle
        total = len(stream._images)
        new_n_cycles = -(-total // per_cycle)  # ceil division
        added = new_n_cycles - stream.n_cycles
        stream.n_cycles = new_n_cycles
        self.bursts.append(
            (self.next_cycle, len(images),
             -1 if burst_seed is None else int(burst_seed))
        )
        return added

    def status(self) -> dict:
        """JSON-safe progress summary (the service adds pool books)."""
        ledger = self.system.ledger
        return {
            "event_id": self.event_id,
            "priority": self.priority,
            "next_cycle": self.next_cycle,
            "n_cycles": self.n_cycles,
            "done": self.done,
            "start_window": self.start_window,
            "spent_cents": float(ledger.spent),
            "charged_cents": float(ledger.total_charged),
            "refunded_cents": float(ledger.total_refunded),
            "remaining_cents": float(ledger.remaining),
            "bursts": len(self.bursts),
        }
