"""Surge load generator for the multi-event serving layer.

Replays a deterministic disaster-surge timeline against a
:class:`~repro.serve.service.CrowdLearnService`: N events submitted
up-front with staggered priorities, a mid-run imagery burst into the
first event, and a shared crowd sized *below* aggregate demand so
admission, deferral and shedding all actually happen.  The run's
figures land in ``benchmarks/results/BENCH_serve.json``:

- **throughput** — sensing cycles per wall second across the fleet,
- **latency** — p50/p99/mean wall seconds per sensing cycle,
- **quality** — per-event macro-F1 over fused labels,
- **books** — per-event and aggregate pool ledgers, checked against the
  conservation invariant (requested == admitted + shed + backlog), and
  money books checked against charged − refunded == spent,
- **digests** — per-event run-outcome digests plus the combined digest,
  the reproducibility anchor CI compares across runs.

``check_report`` is the ``--check`` gate: it returns a list of failure
strings (empty means pass) so CI can fail loudly on a broken invariant
rather than silently uploading a bad artifact.

**Chaos mode** (``--chaos``) is the blast-radius drill: the same fleet
runs twice — once clean, once with a permanent platform outage scoped to
the *last* event — and the report asserts that the faulted event ends
QUARANTINED while every healthy event's digest is byte-identical to the
clean run.  The chaos fleet is deliberately *unmetered*: under a metered
pool a quarantine frees capacity and legitimately changes healthy
events' grants, so byte-parity is only a theorem when events are
capacity-independent (the metered release/re-water-fill path has its own
conservation tests).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

from repro.crowd.faults import FaultPlan
from repro.serve.admission import create_admission_policy
from repro.serve.pool import SharedCrowdPool
from repro.serve.service import CrowdLearnService

__all__ = ["run_loadgen", "check_report", "write_report", "render_report",
           "chaos_plan", "DEFAULT_OUTPUT"]

DEFAULT_OUTPUT = Path("benchmarks/results/BENCH_serve.json")

#: Priority cycle for submitted events: a hot event, a routine one, a
#: middling one — enough spread that priority/deadline policies differ
#: visibly from fair-share.
_PRIORITIES = (2.0, 1.0, 1.5)


def chaos_plan() -> FaultPlan:
    """The drill's event-scoped fault: a permanent platform outage.

    Every post attempt raises, so the faulted event fails every tick it
    posts in, trips its breaker, fails both recovery probes and lands in
    terminal quarantine — the full degradation ladder in one plan.
    """
    return FaultPlan(outage_windows=((0, 1 << 30),))


def _percentiles(values: list[float]) -> dict[str, float]:
    import numpy as np

    if not values:
        return {"p50": 0.0, "p99": 0.0, "mean": 0.0}
    return {
        "p50": float(np.percentile(values, 50)),
        "p99": float(np.percentile(values, 99)),
        "mean": float(np.mean(values)),
    }


def build_service(
    setup,
    n_events: int = 3,
    capacity: int | None = None,
    policy: str = "fair-share",
    max_backlog: int | None = None,
    serve_dir: str | Path | None = None,
    fsync: str = "always",
    unmetered: bool = False,
    fault_plans: dict[str, FaultPlan] | None = None,
) -> CrowdLearnService:
    """Assemble the surge fleet: N events over one under-provisioned crowd.

    ``capacity=None`` sizes the shared pool at half the fleet's fresh
    per-window demand (at least one slot), which guarantees contention —
    the whole point of the bench.  Pass an explicit capacity (or ``0``
    for a fully saturated crowd) to override, or ``unmetered=True`` for
    the capacity-independent pool the chaos drill's byte-parity claim
    needs.  ``fault_plans`` maps event ids to event-scoped
    :class:`~repro.crowd.faults.FaultPlan`\\ s.
    """
    if n_events < 1:
        raise ValueError(f"n_events must be >= 1, got {n_events}")
    if unmetered:
        pool = SharedCrowdPool()
    else:
        if capacity is None:
            demand = n_events * setup.config.queries_per_cycle
            capacity = max(1, demand // 2)
        pool = SharedCrowdPool(
            capacity_per_cycle=capacity,
            policy=create_admission_policy(policy),
            max_backlog=max_backlog,
        )
    service = CrowdLearnService(
        setup, pool=pool, serve_dir=serve_dir, fsync=fsync
    )
    for i in range(n_events):
        event_id = f"event-{i + 1:02d}"
        service.submit_event(
            event_id,
            priority=_PRIORITIES[i % len(_PRIORITIES)],
            fault_plan=(fault_plans or {}).get(event_id),
        )
    return service


def drive(
    service: CrowdLearnService,
    burst_images: int = 10,
    burst_seed: int = 1234,
    burst_after_ticks: int | None = None,
    crash_at_tick: int | None = None,
) -> int:
    """Run the surge timeline to drain; returns ticks executed.

    The imagery burst lands on the first event once ``burst_after_ticks``
    cycles have run (default: one full fleet round).  ``crash_at_tick``
    SIGKILLs the process after that many ticks — the crash half of the
    serve crash/recovery drill; a supervisor is expected to ``resume``.

    Both thresholds compare against ``service.ticks`` — the *global*
    cycle count, restored on resume — so a resumed drive continues the
    original timeline instead of restarting it.
    """
    n_events = len(service.registry)
    if burst_after_ticks is None:
        burst_after_ticks = n_events
    first_event = min(d.event_id for d in service.registry.all())
    executed = 0
    burst_done = burst_images <= 0
    while True:
        if crash_at_tick is not None and service.ticks >= crash_at_tick:
            import os
            import signal

            os.kill(os.getpid(), signal.SIGKILL)
        if not burst_done and service.ticks >= burst_after_ticks:
            service.ingest_images(
                first_event, n_images=burst_images, burst_seed=burst_seed
            )
            burst_done = True
        if service.step() is None:
            return executed
        executed += 1


def build_report(
    service: CrowdLearnService,
    wall_seconds: float,
    meta: dict[str, Any],
    clean_digests: dict[str, str] | None = None,
) -> dict[str, Any]:
    """Collect the drained fleet's figures into the bench report.

    With ``clean_digests`` (the chaos drill's no-fault reference run),
    the report gains a ``chaos`` section comparing every healthy event's
    digest against its clean twin — the blast-radius assertion.
    """
    events: dict[str, Any] = {}
    all_walls: list[float] = []
    charged = refunded = spent = 0.0
    quarantined = service.quarantined_events()
    for deployment in service.registry.all():
        status = service.event_status(deployment.event_id)
        events[deployment.event_id] = {
            "macro_f1": status.macro_f1,
            "cycles": status.n_cycles,
            "grants": deployment.grants,
            "pool": status.pool,
            "budget_cents": status.budget,
            "latency_seconds": status.latency_seconds,
            "health": status.health,
        }
        all_walls.extend(deployment.cycle_wall_seconds)
        charged += status.budget["charged_cents"]
        refunded += status.budget["refunded_cents"]
        spent += status.budget["spent_cents"]
    totals = service.pool.totals()
    drained = all(
        d.done or d.event_id in quarantined
        for d in service.registry.all()
    )
    report = {
        "meta": meta,
        "service": {
            "ticks": service.ticks,
            "wall_seconds": wall_seconds,
            "events_per_second": (
                len(events) / wall_seconds if wall_seconds > 0 else 0.0
            ),
            "cycles_per_second": (
                service.ticks / wall_seconds if wall_seconds > 0 else 0.0
            ),
            "cycle_latency_seconds": _percentiles(all_walls),
            "drained": drained,
            "quarantined": quarantined,
        },
        "events": events,
        "pool": {
            "totals": totals,
            "conserved": service.pool.conserved(),
            "contended": (totals["deferred"] + totals["shed"]) > 0,
            "per_event_conserved": {
                event_id: led.conserved()
                for event_id, led in sorted(service.pool.ledgers.items())
            },
        },
        "budget_cents": {
            "charged": charged,
            "refunded": refunded,
            "spent": spent,
            "conserved": abs((charged - refunded) - spent) < 1e-6,
        },
        "digests": {
            "per_event": service.digests(),
            "combined": service.combined_digest(),
        },
    }
    if clean_digests is not None:
        faulted = meta.get("faulted_event")
        digests = report["digests"]["per_event"]
        parity = {
            event_id: digests.get(event_id) == digest
            for event_id, digest in sorted(clean_digests.items())
            if event_id != faulted
        }
        report["chaos"] = {
            "faulted_event": faulted,
            "quarantined": quarantined,
            "quarantine_reasons": {
                event_id: (
                    service.health[event_id].quarantine_reason
                    or "breaker open"
                )
                for event_id in quarantined
            },
            "healthy_parity": parity,
            "blast_radius_contained": (
                faulted in quarantined
                and all(parity.values())
                and set(quarantined) <= {faulted}
            ),
            "clean_digests": dict(sorted(clean_digests.items())),
        }
    return report


def faulted_event_id(n_events: int) -> str:
    """The chaos drill's victim: the last event, so the imagery burst
    (which targets the first) lands on a healthy deployment."""
    return f"event-{n_events:02d}"


def reference_digests(
    setup,
    n_events: int = 3,
    burst_images: int = 10,
    burst_seed: int = 1234,
) -> dict[str, str]:
    """Digests of the clean (no-fault, unmetered) twin of the chaos fleet."""
    reference = build_service(setup, n_events=n_events, unmetered=True)
    drive(reference, burst_images=burst_images, burst_seed=burst_seed)
    digests = reference.digests()
    reference.close()
    return digests


def run_loadgen(
    seed: int = 0,
    fast: bool = True,
    n_events: int = 3,
    capacity: int | None = None,
    policy: str = "fair-share",
    max_backlog: int | None = None,
    burst_images: int = 10,
    burst_seed: int = 1234,
    serve_dir: str | Path | None = None,
    fsync: str = "always",
    crash_at_tick: int | None = None,
    chaos: bool = False,
) -> dict[str, Any]:
    """One full surge run: build, drive to drain, report.

    ``chaos=True`` runs the blast-radius drill instead of the metered
    surge: the clean reference fleet first (for parity digests), then
    the same fleet with a permanent platform outage scoped to the last
    event.  The chaos fleet is unmetered — see the module docstring.
    """
    from repro.eval.runner import prepare

    setup = prepare(seed=seed, fast=fast)
    clean_digests = None
    fault_plans = None
    faulted = None
    if chaos:
        faulted = faulted_event_id(n_events)
        fault_plans = {faulted: chaos_plan()}
        clean_digests = reference_digests(
            setup,
            n_events=n_events,
            burst_images=burst_images,
            burst_seed=burst_seed,
        )
    service = build_service(
        setup,
        n_events=n_events,
        capacity=capacity,
        policy=policy,
        max_backlog=max_backlog,
        serve_dir=serve_dir,
        fsync=fsync,
        unmetered=chaos,
        fault_plans=fault_plans,
    )
    started = time.perf_counter()
    drive(
        service,
        burst_images=burst_images,
        burst_seed=burst_seed,
        crash_at_tick=crash_at_tick,
    )
    wall_seconds = time.perf_counter() - started
    meta = {
        "bench": "serve-loadgen",
        "seed": seed,
        "fast": fast,
        "n_events": n_events,
        "capacity_per_cycle": service.pool.capacity_per_cycle,
        "policy": policy,
        "max_backlog": max_backlog,
        "burst": {"images": burst_images, "seed": burst_seed},
        "durable": service.durable,
        "fsync": fsync,
        "chaos": chaos,
        "faulted_event": faulted,
    }
    report = build_report(
        service, wall_seconds, meta, clean_digests=clean_digests
    )
    service.close()
    return report


def check_report(
    report: dict[str, Any], p99_gate_seconds: float | None = None
) -> list[str]:
    """The ``--check`` gates; returns failure strings (empty = pass).

    Gates: every event drained (quarantined events count as handled, not
    drained-in-place); pool books conserved per event and in aggregate;
    contention actually occurred (a surge bench that never defers or
    sheds is not testing backpressure — skipped in chaos mode, whose
    fleet is deliberately unmetered); money books balance; optionally
    p99 cycle latency under ``p99_gate_seconds``.  Chaos reports add the
    blast-radius gates: the faulted event (and only it) quarantined, and
    every healthy event's digest byte-identical to the clean run.
    """
    failures: list[str] = []
    chaos = report.get("chaos")
    if not report["service"]["drained"]:
        failures.append("fleet did not drain: some events have cycles left")
    if not report["pool"]["conserved"]:
        failures.append(
            "pool conservation violated: requested != admitted + shed + "
            "backlog + quarantined in aggregate "
            f"({report['pool']['totals']})"
        )
    for event_id, ok in report["pool"]["per_event_conserved"].items():
        if not ok:
            failures.append(
                f"pool conservation violated for {event_id}: "
                f"{report['events'][event_id]['pool']}"
            )
    if chaos is None and not report["pool"]["contended"]:
        failures.append(
            "no contention observed (deferred + shed == 0); the pool was "
            "over-provisioned and backpressure went untested"
        )
    if not report["budget_cents"]["conserved"]:
        failures.append(
            f"budget books do not balance: {report['budget_cents']}"
        )
    if chaos is not None:
        faulted = chaos["faulted_event"]
        if faulted not in chaos["quarantined"]:
            failures.append(
                f"chaos drill: faulted event {faulted} never reached "
                f"QUARANTINED (quarantined: {chaos['quarantined']})"
            )
        extra = sorted(set(chaos["quarantined"]) - {faulted})
        if extra:
            failures.append(
                f"chaos drill: blast radius escaped — healthy events "
                f"{extra} were quarantined too"
            )
        broken = sorted(
            event_id
            for event_id, ok in chaos["healthy_parity"].items()
            if not ok
        )
        if broken:
            failures.append(
                "chaos drill: healthy events diverged from the clean "
                f"run: {broken}"
            )
    if p99_gate_seconds is not None:
        p99 = report["service"]["cycle_latency_seconds"]["p99"]
        if p99 > p99_gate_seconds:
            failures.append(
                f"p99 cycle latency {p99:.3f}s exceeds the "
                f"{p99_gate_seconds:.3f}s gate"
            )
    return failures


def write_report(report: dict[str, Any], path: str | Path) -> Path:
    """Pretty-print the report to ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def render_report(report: dict[str, Any]) -> str:
    """Human-readable summary for the CLI."""
    service = report["service"]
    pool = report["pool"]["totals"]
    lines = [
        "serve loadgen "
        f"({report['meta']['n_events']} events, "
        f"capacity {report['meta']['capacity_per_cycle']}/window, "
        f"policy {report['meta']['policy']})",
        f"  ticks {service['ticks']}  "
        f"cycles/s {service['cycles_per_second']:.2f}  "
        f"p50 {service['cycle_latency_seconds']['p50'] * 1e3:.0f}ms  "
        f"p99 {service['cycle_latency_seconds']['p99'] * 1e3:.0f}ms",
        f"  pool: requested {pool['requested']}  admitted "
        f"{pool['admitted']}  deferred {pool['deferred']}  shed "
        f"{pool['shed']}  conserved "
        f"{'yes' if report['pool']['conserved'] else 'NO'}",
    ]
    quarantined = set(report["service"].get("quarantined", []))
    for event_id, entry in sorted(report["events"].items()):
        marker = "  [QUARANTINED]" if event_id in quarantined else ""
        lines.append(
            f"  {event_id}: F1 {entry['macro_f1']:.3f}  "
            f"cycles {entry['cycles']}  "
            f"admitted {entry['pool']['admitted']}  "
            f"deferred {entry['pool']['deferred']}  "
            f"shed {entry['pool']['shed']}{marker}"
        )
    chaos = report.get("chaos")
    if chaos is not None:
        contained = chaos["blast_radius_contained"]
        lines.append(
            f"  chaos: faulted {chaos['faulted_event']}  "
            f"blast radius {'contained' if contained else 'ESCAPED'}  "
            f"healthy parity "
            f"{sum(chaos['healthy_parity'].values())}"
            f"/{len(chaos['healthy_parity'])}"
        )
    lines.append(f"  combined digest {report['digests']['combined'][:16]}…")
    return "\n".join(lines)
