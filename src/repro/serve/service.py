"""The serving core: N interleaved sensing loops over one shared crowd.

:class:`CrowdLearnService` owns a global virtual-time event heap.  Each
entry is ``(due_time, event_id, seq)`` — due time first, event id as the
stable tie-break, a monotonic sequence number last — so the interleaving
of N sensing loops is a pure function of the submitted events, never of
wall clock or dict order.  Virtual time is bucketed into *sensing
windows* of ``config.cycle_seconds``; at each window boundary the
:class:`~repro.serve.pool.SharedCrowdPool` fixes per-event quotas from
the full request set, and every cycle executed inside the window is
metered against them.

Durable mode (``serve_dir``) layers the PR 6 crash-tolerance machinery
per event — one checkpoint + write-ahead journal pair each, snapshot and
rotated after every cycle — plus a service-level append-only journal
(``serve.journal``) recording window rollovers, admissions and imagery
bursts, each with a post-mutation pool snapshot.  :meth:`resume`
rebuilds the whole fleet from the manifest, replays each event's partial
cycle through its own journal, restores the pool from the last service
record, and reconstructs the at-most-one admission record a crash can
swallow (killed between an event's checkpoint and the service append).

Service-level resilience (this layer's blast-radius guarantees):

- **Bulkheads** — every tick runs inside :meth:`step`'s isolation
  boundary.  An exception escaping one event's cycle quarantines *that
  event only*: its unused grant and waiting backlog move to the pool's
  ``quarantined`` bucket (freed capacity re-enters the same window's
  water-fill), its heap entries are parked, and every other event keeps
  draining.
- **Circuit breakers** (:mod:`repro.serve.breaker`) — each event's
  completed ticks feed a deterministic closed→open→half-open machine;
  an open breaker parks the event and schedules a cooldown probe on the
  virtual-time heap.  Breaker and health state ride in every journal
  record, so :meth:`resume` rebuilds them bit-for-bit.
- **Degradation ladder** (:mod:`repro.serve.health`) — flaky-but-alive
  events shrink to DEGRADED batches or BROWNOUT committee-only cycles
  before they ever earn a quarantine, and climb back with hysteresis.
"""

from __future__ import annotations

import dataclasses
import hashlib
import heapq
import json
import os
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.cache import PredictionCache
from repro.core.system import CrowdLearnSystem
from repro.crowd.faults import FaultInjector, FaultPlan, InjectedCrash
from repro.data.dataset import build_dataset
from repro.data.stream import SensingCycleStream
from repro.eval.persistence import run_outcome_digest
from repro.serve.deployment import Deployment
from repro.serve.health import EventHealth, HealthPolicy, tick_failed
from repro.serve.pool import AdmissionRequest, SharedCrowdPool
from repro.serve.registry import EventRegistry
from repro.telemetry.runtime import Telemetry, use_telemetry

__all__ = ["CrowdLearnService", "EventStatus", "ServeJournalError"]

_MANIFEST_NAME = "serve.json"
_JOURNAL_NAME = "serve.journal"


class ServeJournalError(RuntimeError):
    """The service journal is unreadable or inconsistent with the fleet."""


@dataclasses.dataclass(frozen=True)
class EventStatus:
    """One event's externally visible state."""

    event_id: str
    done: bool
    next_cycle: int
    n_cycles: int
    macro_f1: float
    pool: dict[str, int]
    budget: dict[str, float]
    latency_seconds: dict[str, float]
    health: dict[str, Any] | None = None

    def as_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


def _record_line(record: dict) -> str:
    """Canonical JSON line with an embedded content hash."""
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    return json.dumps(
        {"record": record, "sha256": digest},
        sort_keys=True, separators=(",", ":"),
    )


def _read_serve_journal(path: Path, repair: bool = False) -> list[dict]:
    """All intact records; a torn tail line is tolerated, torn middles not.

    With ``repair``, the torn tail (a crash mid-append) is truncated away
    so the reopened file can take live appends without concatenating a
    new record onto the garbage.
    """
    records: list[dict] = []
    raw = path.read_bytes()
    lines = raw.decode("utf-8").splitlines(keepends=True)
    good_bytes = 0
    for i, line in enumerate(lines):
        try:
            entry = json.loads(line)
            body = json.dumps(
                entry["record"], sort_keys=True, separators=(",", ":")
            )
            if hashlib.sha256(body.encode()).hexdigest() != entry["sha256"]:
                raise ValueError("checksum mismatch")
        except (ValueError, KeyError, TypeError) as exc:
            if i == len(lines) - 1:
                break  # torn tail from a crash mid-append
            raise ServeJournalError(
                f"corrupt serve journal record at line {i + 1} of {path}"
            ) from exc
        records.append(entry["record"])
        good_bytes += len(line.encode("utf-8"))
    if repair:
        if good_bytes < len(raw):
            with open(path, "r+b") as fh:
                fh.truncate(good_bytes)
        elif raw and not raw.endswith(b"\n"):
            # Final record intact but its newline lost mid-crash.
            with open(path, "ab") as fh:
                fh.write(b"\n")
    return records


class CrowdLearnService:
    """Runs N concurrent disaster deployments over one shared crowd.

    Parameters
    ----------
    setup:
        The shared evaluation world
        (:class:`~repro.eval.runner.ExperimentSetup`): one crowd
        population, one trained base committee, one test pool.
    pool:
        Capacity arbiter; the default is unmetered (single-tenant parity
        mode).
    serve_dir:
        Durable mode: per-event checkpoints/journals plus the service
        manifest and journal live here.
    fsync:
        Journal fsync policy forwarded to every event journal
        (``always``/``rotate``/``never``).
    instrument:
        Give each event a live :class:`Telemetry` pipeline labelled
        ``{"event": <id>}`` (disjoint per event).  Off by default — the
        no-op pipeline keeps served runs byte-identical to standalone
        ones.
    health_policy:
        Thresholds for the per-event breaker and degradation ladder
        (:class:`~repro.serve.health.HealthPolicy`).  Always on: a
        healthy event's ladder never moves and never caps a grant, so
        fault-free runs stay byte-identical.
    """

    def __init__(
        self,
        setup,
        pool: SharedCrowdPool | None = None,
        serve_dir: str | Path | None = None,
        fsync: str = "always",
        instrument: bool = False,
        health_policy: HealthPolicy | None = None,
    ) -> None:
        self.setup = setup
        self.pool = pool if pool is not None else SharedCrowdPool()
        self.registry = EventRegistry()
        self.fsync = fsync
        self.instrument = instrument
        self.cycle_seconds = float(setup.config.cycle_seconds)
        self.health_policy = (
            health_policy if health_policy is not None else HealthPolicy()
        )
        #: Per-event breaker + ladder state, keyed by event id.
        self.health: dict[str, EventHealth] = {}
        self.telemetries: dict[str, Telemetry] = {}
        self._heap: list[tuple[float, str, int]] = []
        self._seq = 0
        self.ticks = 0
        self._drained: dict[str, bool] = {}
        #: Shared physical cache; each event gets a namespaced view.
        self.cache: PredictionCache | None = (
            PredictionCache(
                max_pools=setup.config.cache_max_pools,
                max_features=setup.config.cache_max_features,
            )
            if setup.config.cache_enabled
            else None
        )
        self.serve_dir = Path(serve_dir) if serve_dir is not None else None
        self._journal_fh = None
        self._manifest: dict[str, Any] = {
            "version": 1,
            "seed": setup.seed,
            "fast": setup.fast,
            "fsync": fsync,
            "capacity_per_cycle": self.pool.capacity_per_cycle,
            "policy": self.pool.policy.name,
            "max_backlog": self.pool.max_backlog,
            "health_policy": self.health_policy.as_dict(),
            "events": [],
        }
        if self.serve_dir is not None:
            self.serve_dir.mkdir(parents=True, exist_ok=True)
            self._journal_fh = open(
                self.serve_dir / _JOURNAL_NAME, "a", encoding="utf-8"
            )

    # -- internal plumbing -------------------------------------------------

    @property
    def durable(self) -> bool:
        return self.serve_dir is not None

    def _next_window(self) -> int:
        """The window a newly submitted event starts in."""
        return 0 if self.pool.window < 0 else self.pool.window + 1

    def _due(self, deployment: Deployment) -> float:
        return (
            (deployment.start_window + deployment.next_cycle)
            * self.cycle_seconds
        )

    def _push(self, deployment: Deployment) -> None:
        heapq.heappush(
            self._heap,
            (self._due(deployment), deployment.event_id, self._seq),
        )
        self._seq += 1

    def _append_journal(self, record: dict) -> None:
        if self._journal_fh is None:
            return
        self._journal_fh.write(_record_line(record) + "\n")
        if self.fsync == "always":
            self._journal_fh.flush()
            os.fsync(self._journal_fh.fileno())

    def _write_manifest(self) -> None:
        if self.serve_dir is None:
            return
        path = self.serve_dir / _MANIFEST_NAME
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(self._manifest, indent=2, sort_keys=True))
        os.replace(tmp, path)

    def _event_paths(self, event_id: str) -> tuple[Path, Path]:
        assert self.serve_dir is not None
        return (
            self.serve_dir / f"event-{event_id}.ckpt",
            self.serve_dir / f"event-{event_id}.journal",
        )

    def _health(self, event_id: str) -> EventHealth:
        """The event's health record (created on first touch)."""
        try:
            return self.health[event_id]
        except KeyError:
            health = EventHealth(self.health_policy)
            self.health[event_id] = health
            return health

    def _health_map(self) -> dict[str, dict]:
        """JSON-safe per-event health snapshots (journaled per record)."""
        return {
            event_id: health.snapshot()
            for event_id, health in sorted(self.health.items())
        }

    def _count(self, event_id: str, name: str, help_text: str) -> None:
        telemetry = self.telemetries.get(event_id)
        if telemetry is not None:
            telemetry.counter(name, help=help_text).inc()

    def _telemetry_for(self, event_id: str) -> Telemetry | None:
        if not self.instrument:
            return None
        telemetry = Telemetry(base_labels={"event": event_id})
        self.telemetries[event_id] = telemetry
        return telemetry

    def _wire_pool_observer(self, deployment: Deployment) -> None:
        """Meter the event's actual posts into its pool ledger."""
        event_id = deployment.event_id
        workers_per_query = deployment.system.platform.workers_per_query
        pool = self.pool

        def on_post(result) -> None:
            pool.note_post(event_id, workers_per_query)

        deployment.system.platform.on_post = on_post

    # -- event lifecycle ---------------------------------------------------

    def submit_event(
        self,
        event_id: str,
        seed: int | None = None,
        n_cycles: int | None = None,
        priority: float = 1.0,
        platform_name: str | None = None,
        stream_name: str | None = None,
        system: CrowdLearnSystem | None = None,
        stream: SensingCycleStream | None = None,
        start_window: int | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> Deployment:
        """Register a new disaster event and schedule its first cycle.

        With no explicit ``system``/``stream``, both are built from the
        shared setup under per-event names — platform RNG
        ``platform-event-<id>``, stream RNG ``stream-event-<id>``, and a
        per-event root seed derived from the event id — so two events'
        random streams are independent by construction and independent
        of submission order (the
        :class:`~repro.utils.rng.SeedSequencer` hashes names, not call
        order).

        ``fault_plan`` scopes chaos to this event alone: the plan is
        armed on the event's own platform with an RNG stream derived
        from ``faults-event-<id>`` and recorded in the manifest, so a
        resumed fleet re-arms it deterministically.  Other events never
        see the injector — that isolation is what the blast-radius drill
        asserts.
        """
        if not event_id or any(c in event_id for c in "/\\ \t\n"):
            raise ValueError(
                f"event_id must be a non-empty path-safe token, "
                f"got {event_id!r}"
            )
        if event_id in self.registry:
            raise ValueError(f"event {event_id!r} is already registered")
        setup = self.setup
        platform_name = platform_name or f"event-{event_id}"
        stream_name = stream_name or f"event-{event_id}"
        if seed is None:
            seed = setup.seeds.seed_for(f"event-{event_id}")
        telemetry = self._telemetry_for(event_id)
        injector = None
        if fault_plan is not None and not fault_plan.is_noop():
            injector = FaultInjector(
                plan=fault_plan,
                rng=setup.seeds.get(f"faults-event-{event_id}"),
            )
        if system is None:
            from repro.eval.runner import build_crowdlearn

            system = build_crowdlearn(
                setup,
                platform_name=platform_name,
                telemetry=telemetry,
                seed=seed,
                event_id=event_id,
                cache=self.cache,
                faults=injector,
            )
        elif injector is not None:
            system.platform.faults = injector
        if stream is None:
            stream = SensingCycleStream(
                setup.test_set,
                n_cycles=n_cycles or setup.config.n_cycles,
                images_per_cycle=setup.config.images_per_cycle,
                cycles_per_context=setup.config.cycles_per_context,
                rng=setup.seeds.get(f"stream-{stream_name}"),
            )
        if start_window is None:
            start_window = self._next_window()
        checkpoint_path = journal = None
        if self.durable:
            from repro.eval.journal import CycleJournal

            checkpoint_path, journal_path = self._event_paths(event_id)
            journal = CycleJournal.create(
                journal_path,
                fsync=self.fsync,
                crash_injector=getattr(system.platform, "faults", None),
            )
        deployment = Deployment(
            event_id=event_id,
            system=system,
            stream=stream,
            priority=priority,
            start_window=start_window,
            checkpoint_path=checkpoint_path,
            journal=journal,
        )
        self.registry.add(deployment)
        self._health(event_id)
        self._wire_pool_observer(deployment)
        self._push(deployment)
        self._manifest["events"].append(
            {
                "event_id": event_id,
                "seed": int(seed),
                "priority": float(priority),
                "n_cycles": len(stream),
                "start_window": int(start_window),
                "platform_name": platform_name,
                "stream_name": stream_name,
                "fault_plan": (
                    None if fault_plan is None or fault_plan.is_noop()
                    else fault_plan.as_dict()
                ),
            }
        )
        self._write_manifest()
        return deployment

    def ingest_images(
        self,
        event_id: str,
        images=None,
        n_images: int | None = None,
        burst_seed: int | None = None,
    ) -> int:
        """Feed a burst of fresh imagery into a live event.

        Either pass ``images`` directly, or ``(n_images, burst_seed)`` to
        generate a deterministic synthetic burst — the journaled,
        crash-replayable form the load generator uses.  Returns the
        number of sensing cycles the burst added.
        """
        deployment = self.registry.get(event_id)
        if images is None:
            if n_images is None or burst_seed is None:
                raise ValueError(
                    "pass images, or n_images and burst_seed to generate"
                )
            images = list(
                build_dataset(
                    n_images=n_images,
                    rng=np.random.default_rng(burst_seed),
                )
            )
        was_done = deployment.done
        added = deployment.ingest(images, burst_seed=burst_seed)
        if added and was_done:
            self._drained.pop(event_id, None)
            self._push(deployment)
        self._append_journal(
            {
                "kind": "ingest",
                "event": event_id,
                "n_images": len(images),
                "burst_seed": -1 if burst_seed is None else int(burst_seed),
                "burst_index": len(deployment.bursts) - 1,
                "n_cycles_after": deployment.n_cycles,
                "n_images_total_after": len(deployment.stream._images),
                "pool": self.pool.snapshot(),
                "health": self._health_map(),
            }
        )
        return added

    # -- the scheduler loop ------------------------------------------------

    def step(self) -> str | None:
        """Run the next due sensing cycle; returns its event id.

        ``None`` when every event has drained (or is parked with its
        probe budget spent).  Window rollovers happen here: the first
        tick whose due time crosses into a new window fixes that
        window's quotas from *all* events due in it, in event-id order.

        Every tick runs inside the service's **bulkhead**: an exception
        escaping the cycle quarantines that event (grant and backlog
        released to the pool, heap entries parked, breaker forced open)
        and the step still returns normally — the other events' ticks
        are untouched.  :class:`~repro.crowd.faults.InjectedCrash` is
        deliberately *not* caught: crash drills must kill the process,
        not park an event.
        """
        while self._heap:
            due, event_id, _seq = heapq.heappop(self._heap)
            deployment = self.registry.get(event_id)
            if deployment.done:
                continue  # stale entry (e.g. rescheduled after a burst)
            health = self._health(event_id)
            window = int(due // self.cycle_seconds)
            if window > self.pool.window:
                self._begin_window(window)
            if health.state == "quarantined":
                # A parked event's only heap entry is its scheduled
                # recovery probe; half-open the breaker before admitting.
                if not health.begin_probe(window):
                    continue  # stale entry; probe budget already spent
                self._count(
                    event_id, "breaker_half_open_total",
                    "recovery probes started by the circuit breaker",
                )
            decision = self.pool.admit(
                event_id, deployment.demand(), deployment.max_servable()
            )
            grant = health.cap_grant(decision.granted)
            if grant < decision.granted:
                # The ladder shaved the batch; the difference goes back
                # to this window's water-fill and the event's backlog.
                self.pool.release(
                    event_id, decision.granted - grant, requeue=True
                )
            telemetry = self.telemetries.get(event_id)
            state_before = health.state
            try:
                if telemetry is not None:
                    with use_telemetry(telemetry):
                        outcome_cycle = deployment.run_next_cycle(grant)
                else:
                    outcome_cycle = deployment.run_next_cycle(grant)
            except InjectedCrash:
                raise
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # noqa: BLE001 - the bulkhead boundary
                self._trip(deployment, window, grant, exc)
                return event_id
            self.ticks += 1
            failed = tick_failed(outcome_cycle)
            state = health.observe(failed, window)
            self._append_journal(
                {
                    "kind": "tick",
                    "event": event_id,
                    "cycle": deployment.next_cycle - 1,
                    "window": window,
                    "granted": grant,
                    "deferred": decision.deferred,
                    "shed": decision.shed,
                    "failed": failed,
                    "pool": self.pool.snapshot(),
                    "health": self._health_map(),
                }
            )
            if telemetry is not None:
                counter = telemetry.counter(
                    "serve_queries_deferred_total",
                    help="queries pushed to a later window by backpressure",
                )
                counter.inc(decision.deferred)
                if failed:
                    telemetry.counter(
                        "health_failed_ticks_total",
                        help="completed ticks carrying a failure signal",
                    ).inc()
                if state != state_before:
                    telemetry.counter(
                        "health_transitions_total",
                        help="degradation-ladder state changes",
                    ).inc()
            if deployment.done:
                self._finish_event(deployment)
            elif state == "quarantined":
                self._count(
                    event_id, "breaker_opened_total",
                    "breakers opened (failure rate or bulkhead trip)",
                )
                self._park(deployment, window)
            else:
                if state_before == "quarantined" and state != "quarantined":
                    self._count(
                        event_id, "breaker_closed_total",
                        "breakers closed by a clean recovery probe",
                    )
                self._push(deployment)
            return event_id
        return None

    def _trip(
        self, deployment: Deployment, window: int, grant: int, exc: Exception
    ) -> None:
        """Bulkhead trip: the tick raised instead of completing.

        The cycle never advanced, so the event's grant is unused and its
        in-memory system state may be mid-cycle dirty — re-running the
        same deterministic cycle would fail identically, so the breaker
        is forced open with its probe budget spent (no re-admission)
        and the event is parked for good.
        """
        event_id = deployment.event_id
        health = self._health(event_id)
        reason = f"tick raised {type(exc).__name__}: {exc}"
        health.trip(window, reason)
        self._count(
            event_id, "breaker_opened_total",
            "breakers opened (failure rate or bulkhead trip)",
        )
        if grant > 0:
            self.pool.release(event_id, grant, requeue=False)
        self._park(deployment, window)

    def _park(self, deployment: Deployment, window: int) -> None:
        """Move a quarantined event off the schedule.

        Its waiting backlog joins the pool's ``quarantined`` bucket, the
        remaining budget it can no longer spend is recorded for the
        operator, and — when the breaker still has probe budget — one
        recovery probe is scheduled on the virtual-time heap.
        """
        event_id = deployment.event_id
        health = self._health(event_id)
        parked_backlog = self.pool.park(event_id)
        self._count(
            event_id, "health_quarantined_total",
            "events parked by the bulkhead or breaker",
        )
        self._schedule_probe(deployment)
        record = {
            "kind": "quarantine",
            "event": event_id,
            "window": window,
            "reason": health.quarantine_reason,
            "parked_backlog": parked_backlog,
            "released_budget_cents": deployment.releasable_budget_cents(),
            "probe_window": health.breaker.probe_window(),
            "pool": self.pool.snapshot(),
            "health": self._health_map(),
        }
        if deployment.journal is not None:
            from repro.eval.journal import wal_tail_summary

            # Post-mortem of the event's own WAL: how far the aborted
            # cycle got and whether a crowd post is in doubt.
            record["wal"] = wal_tail_summary(deployment.journal.path)
        self._append_journal(record)

    def _schedule_probe(self, deployment: Deployment) -> None:
        """Queue the breaker's half-open probe, re-anchoring the event.

        A parked event's virtual schedule stops; when the cooldown ends
        its next cycle must run in the probe window, not at its long-past
        original due time.  ``start_window`` is re-anchored so
        ``start_window + next_cycle == probe_window`` (and the manifest
        is rewritten so a resumed fleet re-anchors identically), then the
        probe entry is pushed like any other tick.
        """
        health = self._health(deployment.event_id)
        probe_window = health.breaker.probe_window()
        if probe_window is None:
            return  # probe budget spent: parked for good
        deployment.start_window = probe_window - deployment.next_cycle
        for entry in self._manifest["events"]:
            if entry["event_id"] == deployment.event_id:
                entry["start_window"] = int(deployment.start_window)
        self._write_manifest()
        self._push(deployment)

    def _begin_window(self, window: int) -> None:
        requests = []
        for deployment in self.registry.active():
            health = self._health(deployment.event_id)
            if (
                health.state == "quarantined"
                and health.breaker.probe_window() is None
            ):
                continue  # parked for good: no requests, no quota
            led = self.pool.ledger(deployment.event_id)
            due_window = (
                deployment.start_window + deployment.next_cycle
            )
            if due_window > window:
                continue  # not due until a later window (or probe pending)
            want = min(
                deployment.demand() + led.backlog,
                deployment.max_servable(),
            )
            # The ladder shapes the *request* too, so brownout events
            # free their crowd share up front instead of grabbing quota
            # they would immediately hand back.
            want = health.demand_cap(want)
            requests.append(
                AdmissionRequest(
                    event_id=deployment.event_id,
                    demand=want,
                    priority=deployment.priority,
                    cycles_remaining=deployment.cycles_remaining,
                )
            )
        quotas = self.pool.begin_window(window, requests)
        self._append_journal(
            {
                "kind": "window",
                "window": window,
                "requests": [
                    dataclasses.asdict(request) for request in requests
                ],
                "quotas": quotas,
                "pool": self.pool.snapshot(),
                "health": self._health_map(),
            }
        )

    def _finish_event(self, deployment: Deployment) -> None:
        """Close the event's books: unservable backlog is shed."""
        event_id = deployment.event_id
        shed = self.pool.shed_backlog(event_id)
        self._drained[event_id] = True
        if deployment.journal is not None:
            deployment.journal.close()
            deployment.journal = None
        self._append_journal(
            {
                "kind": "drained",
                "event": event_id,
                "shed_at_drain": shed,
                "pool": self.pool.snapshot(),
                "health": self._health_map(),
            }
        )

    def drain(self) -> int:
        """Run every pending cycle to completion; returns ticks executed.

        "Completion" includes quarantine: a parked event with its probe
        budget spent holds no heap entry, so the loop terminates even
        when some events never drained — check
        :meth:`quarantined_events` afterwards.
        """
        executed = 0
        while self.step() is not None:
            executed += 1
        return executed

    def close(self) -> None:
        """Release journal handles (idempotent)."""
        for deployment in self.registry:
            if deployment.journal is not None:
                deployment.journal.close()
                deployment.journal = None
        if self._journal_fh is not None:
            self._journal_fh.close()
            self._journal_fh = None

    # -- introspection -----------------------------------------------------

    def quarantined_events(self) -> list[str]:
        """Event ids currently parked (breaker open), sorted."""
        return sorted(
            event_id
            for event_id, health in self.health.items()
            if health.state == "quarantined"
        )

    def event_status(self, event_id: str) -> EventStatus:
        """One event's progress, books and latency percentiles."""
        from repro.metrics import macro_f1

        deployment = self.registry.get(event_id)
        ledger = deployment.system.ledger
        y_true = deployment.outcome.y_true()
        walls = deployment.cycle_wall_seconds
        latency = {
            "p50": float(np.percentile(walls, 50)) if walls else 0.0,
            "p99": float(np.percentile(walls, 99)) if walls else 0.0,
            "mean": float(np.mean(walls)) if walls else 0.0,
        }
        return EventStatus(
            event_id=event_id,
            done=deployment.done,
            next_cycle=deployment.next_cycle,
            n_cycles=deployment.n_cycles,
            macro_f1=(
                float(macro_f1(y_true, deployment.outcome.y_pred()))
                if len(y_true)
                else 0.0
            ),
            pool=self.pool.ledger(event_id).as_dict(),
            budget={
                "spent_cents": float(ledger.spent),
                "charged_cents": float(ledger.total_charged),
                "refunded_cents": float(ledger.total_refunded),
                "remaining_cents": float(ledger.remaining),
            },
            latency_seconds=latency,
            health=(
                self.health[event_id].snapshot()
                if event_id in self.health
                else None
            ),
        )

    def digests(self) -> dict[str, str]:
        """Per-event run-outcome digests (the byte-parity primitive)."""
        return {
            deployment.event_id: run_outcome_digest(deployment.outcome)
            for deployment in self.registry.all()
        }

    def combined_digest(self) -> str:
        """One digest over every event's digest, keyed and sorted by id."""
        body = json.dumps(self.digests(), sort_keys=True)
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    # -- crash recovery ----------------------------------------------------

    @classmethod
    def resume(
        cls,
        serve_dir: str | Path,
        setup=None,
        instrument: bool = False,
    ) -> "CrowdLearnService":
        """Rebuild a durable service after a crash.

        Reads the manifest, rebuilds the shared world (unless ``setup``
        is passed in), restores every event from its checkpoint +
        journal (or rebuilds it fresh when it crashed before its first
        checkpoint), re-applies journaled imagery bursts the checkpoints
        predate, restores the pool from the last service-journal record,
        reconstructs the at-most-one admission record a crash can
        swallow, and reassembles the heap.  The resumed service then
        continues deterministically: ``drain()`` yields the same
        per-event digests an uninterrupted run produces.
        """
        from repro.eval.journal import CycleJournal
        from repro.eval.persistence import load_checkpoint
        from repro.eval.runner import build_crowdlearn, prepare

        serve_dir = Path(serve_dir)
        manifest_path = serve_dir / _MANIFEST_NAME
        if not manifest_path.exists():
            raise FileNotFoundError(f"no serve manifest at {manifest_path}")
        manifest = json.loads(manifest_path.read_text())
        if setup is None:
            setup = prepare(seed=manifest["seed"], fast=manifest["fast"])
        records = _read_serve_journal(serve_dir / _JOURNAL_NAME, repair=True)

        from repro.serve.admission import create_admission_policy

        pool = SharedCrowdPool(
            capacity_per_cycle=manifest["capacity_per_cycle"],
            policy=create_admission_policy(manifest["policy"]),
            max_backlog=manifest["max_backlog"],
        )
        if records:
            pool = SharedCrowdPool.restore(records[-1]["pool"])
        health_policy = (
            HealthPolicy.from_dict(manifest["health_policy"])
            if manifest.get("health_policy")
            else None
        )
        service = cls(
            setup,
            pool=pool,
            serve_dir=serve_dir,
            fsync=manifest["fsync"],
            instrument=instrument,
            health_policy=health_policy,
        )
        service._manifest = manifest
        for record in reversed(records):
            if "health" in record:
                for event_id, state in record["health"].items():
                    service.health[event_id] = EventHealth.restore(
                        state, policy=service.health_policy
                    )
                break

        ticks_by_event: dict[str, int] = {}
        for record in records:
            if record["kind"] == "tick":
                ticks_by_event[record["event"]] = (
                    ticks_by_event.get(record["event"], 0) + 1
                )
        drained = {
            record["event"] for record in records
            if record["kind"] == "drained"
        }

        missing_tick: Deployment | None = None
        for entry in manifest["events"]:
            event_id = entry["event_id"]
            checkpoint_path, journal_path = service._event_paths(event_id)
            telemetry = service._telemetry_for(event_id)
            if checkpoint_path.exists():
                system, stream, outcome, next_cycle = load_checkpoint(
                    checkpoint_path
                )
                if telemetry is not None:
                    system.telemetry = telemetry
                    system.platform.telemetry = telemetry
            else:
                # Crashed before the first checkpoint: rebuild from the
                # manifest (re-arming any event-scoped fault plan from
                # its recorded spec — the injector RNG starts fresh, and
                # so does the replayed cycle); the event journal replays
                # cycle 0.
                rebuilt_injector = None
                if entry.get("fault_plan"):
                    rebuilt_injector = FaultInjector(
                        plan=FaultPlan.from_dict(entry["fault_plan"]),
                        rng=setup.seeds.get(f"faults-event-{event_id}"),
                    )
                system = build_crowdlearn(
                    setup,
                    platform_name=entry["platform_name"],
                    telemetry=telemetry,
                    seed=entry["seed"],
                    event_id=event_id,
                    cache=service.cache,
                    faults=rebuilt_injector,
                )
                stream = SensingCycleStream(
                    setup.test_set,
                    n_cycles=entry["n_cycles"],
                    images_per_cycle=setup.config.images_per_cycle,
                    cycles_per_context=setup.config.cycles_per_context,
                    rng=setup.seeds.get(f"stream-{entry['stream_name']}"),
                )
                from repro.core.system import RunOutcome

                outcome = RunOutcome()
                next_cycle = 0
            if service.cache is not None:
                # Checkpointed systems drop cache entries on pickle; give
                # the restored system its namespaced view of the shared
                # physical stores again.
                system.cache = service.cache.scoped(event_id)
                system.committee.attach_cache(system.cache)
                if system.guards is not None:
                    system.guards.cache = system.cache
            injector = getattr(system.platform, "faults", None)
            if injector is not None:
                injector.disarm_crashes()
            journal, _info = CycleJournal.resume(
                journal_path, next_cycle, fsync=manifest["fsync"],
                crash_injector=injector,
            )
            deployment = Deployment(
                event_id=event_id,
                system=system,
                stream=stream,
                priority=entry["priority"],
                start_window=entry["start_window"],
                checkpoint_path=checkpoint_path,
                journal=journal,
                outcome=outcome,
                next_cycle=next_cycle,
            )
            service.registry.add(deployment)
            service._wire_pool_observer(deployment)
            service._replay_bursts(deployment, records)
            if next_cycle == ticks_by_event.get(event_id, 0) + 1:
                if missing_tick is not None:
                    raise ServeJournalError(
                        "more than one admission record is missing "
                        f"({missing_tick.event_id!r} and {event_id!r}); "
                        "the serve journal cannot lag its checkpoints by "
                        "more than one tick"
                    )
                missing_tick = deployment
            elif next_cycle != ticks_by_event.get(event_id, 0):
                raise ServeJournalError(
                    f"event {event_id!r} checkpoint is at cycle "
                    f"{next_cycle} but the serve journal recorded "
                    f"{ticks_by_event.get(event_id, 0)} ticks"
                )
            if deployment.done:
                service._drained[event_id] = True
                if deployment.journal is not None:
                    deployment.journal.close()
                    deployment.journal = None
            elif deployment is missing_tick:
                pass  # _reconstruct_tick reschedules after replaying health
            elif service._health(event_id).state == "quarantined":
                # Parked when we died.  The kill may have landed between
                # the tick append and the quarantine append, so park
                # again (idempotent — backlog already moved parks zero)
                # and re-schedule the probe, or nothing if terminal.
                service.pool.park(event_id)
                service._schedule_probe(deployment)
            else:
                service._push(deployment)
        for event_id in drained:
            service._drained[event_id] = True
        service.ticks = sum(ticks_by_event.values())
        if missing_tick is not None:
            service._reconstruct_tick(missing_tick)
        return service

    def _replay_bursts(
        self, deployment: Deployment, records: list[dict]
    ) -> None:
        """Re-apply journaled bursts the event's checkpoint predates."""
        for record in records:
            if record["kind"] != "ingest":
                continue
            if record["event"] != deployment.event_id:
                continue
            if len(deployment.stream._images) >= record["n_images_total_after"]:
                # Already inside the checkpointed stream; keep the burst
                # count aligned so later re-ids stay disjoint.
                deployment.bursts.append(
                    (0, record["n_images"], record["burst_seed"])
                )
                continue
            if record["burst_seed"] < 0:
                raise ServeJournalError(
                    f"event {deployment.event_id!r} has an unreplayable "
                    "burst (no seed) newer than its checkpoint"
                )
            images = list(
                build_dataset(
                    n_images=record["n_images"],
                    rng=np.random.default_rng(record["burst_seed"]),
                )
            )
            deployment.ingest(images, burst_seed=record["burst_seed"])

    def _reconstruct_tick(self, deployment: Deployment) -> None:
        """Re-derive the admission a crash swallowed.

        The event's cycle ``next_cycle - 1`` completed (checkpoint and
        journal rotation are durable) but the service append never
        landed.  The restored pool and health state are exactly the
        pre-admission state, and admission, health capping and the
        breaker are all deterministic, so replaying them with the
        completed cycle's demand and outcome reproduces the lost
        mutations; the reconstructed record is then appended like any
        other, and the event is rescheduled (or parked) exactly as
        :meth:`step` would have.
        """
        event_id = deployment.event_id
        cycle_index = deployment.next_cycle - 1
        due_window = deployment.start_window + cycle_index
        cycle = deployment.stream.cycle(cycle_index)
        demand = min(self.setup.config.queries_per_cycle, len(cycle))
        if due_window > self.pool.window:
            # The window record is appended (and fsynced) *before* the
            # cycle runs, so a lost tick can never also lose its window.
            raise ServeJournalError(
                f"event {event_id!r} completed a cycle in window "
                f"{due_window} but the serve journal never opened it; "
                "the journal is missing more than its final record"
            )
        health = self._health(event_id)
        if health.state == "quarantined":
            # A quarantined event only ticks through its scheduled
            # probe; the swallowed tick completed, so replay the
            # half-open transition it must have taken.
            if not health.begin_probe(due_window):
                raise ServeJournalError(
                    f"event {event_id!r} completed a cycle while "
                    "quarantined with no probe due; the serve journal "
                    "and checkpoints disagree"
                )
        decision = self.pool.admit(event_id, demand, len(cycle))
        grant = health.cap_grant(decision.granted)
        if grant < decision.granted:
            self.pool.release(
                event_id, decision.granted - grant, requeue=True
            )
        deployment.grants.append(grant)
        # Re-meter the completed cycle's crowd utilization: the restored
        # pool snapshot predates it, and the cycle will not run again.
        posted = int(deployment.outcome.cycles[-1].query_indices.size)
        workers_per_query = deployment.system.platform.workers_per_query
        for _ in range(posted):
            self.pool.note_post(event_id, workers_per_query)
        self.ticks += 1
        failed = tick_failed(deployment.outcome.cycles[-1])
        state = health.observe(failed, due_window)
        self._append_journal(
            {
                "kind": "tick",
                "event": event_id,
                "cycle": cycle_index,
                "window": due_window,
                "granted": grant,
                "deferred": decision.deferred,
                "shed": decision.shed,
                "failed": failed,
                "reconstructed": True,
                "pool": self.pool.snapshot(),
                "health": self._health_map(),
            }
        )
        if deployment.done:
            self._finish_event(deployment)
        elif state == "quarantined":
            self._park(deployment, due_window)
        else:
            self._push(deployment)
