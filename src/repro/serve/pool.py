"""The shared crowd pool: worker capacity as a contended resource.

One worker population backs every concurrent deployment, so per-cycle
crowd throughput is finite.  The pool buckets virtual time into sensing
windows (one per ``cycle_seconds``), computes each window's per-event
quotas through an :class:`~repro.serve.admission.AdmissionPolicy`, and
meters every event's query demand against them:

- demand within quota is **admitted** (becomes the cycle's query cap),
- unmet demand is **deferred** into the event's backlog, rolling forward
  as extra catch-up slots in later windows,
- backlog beyond ``max_backlog`` is **shed** — those queries will never
  be posted, so nothing is ever charged for them (the money stays in the
  event's :class:`~repro.bandit.budget.BudgetLedger`, whose PR 1 refund
  path keeps covering posted-but-unanswered queries).

Conservation invariant, per event and in aggregate::

    requested == admitted + shed + backlog + quarantined

``quarantined`` holds demand whose event was parked by the service's
bulkhead/breaker layer (:mod:`repro.serve.health`): those queries were
requested and will never be served, but they were not *shed* by
backpressure — keeping them in their own bucket keeps both stories
auditable.  When an event is parked mid-window, :meth:`SharedCrowdPool.release`
returns its unused grant to the window and re-water-fills the freed
slots across the events still waiting in the *same* window, so released
capacity is never stranded until the next rollover.

The load generator's ``--check`` gate asserts the invariant exactly.
All state is JSON-serializable (:meth:`SharedCrowdPool.snapshot` /
:meth:`SharedCrowdPool.restore`) so the serving layer's own journal can
restore the pool mid-run bit-for-bit.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.serve.admission import (
    AdmissionPolicy,
    AdmissionRequest,
    FairSharePolicy,
    create_admission_policy,
)

__all__ = ["EventLedger", "AdmissionDecision", "SharedCrowdPool"]


@dataclass
class EventLedger:
    """Per-event capacity books (queries, not money).

    ``requested`` counts every query the event ever demanded;
    ``admitted`` those granted a slot (immediately or as catch-up);
    ``deferred`` every demand pushed to a later window (cumulative — a
    query deferred twice counts twice); ``shed`` demand dropped past the
    backlog bound; ``backlog`` the queries still waiting; ``quarantined``
    demand the service's health layer parked (never to be served, but
    not shed by backpressure).  Worker-side utilization
    (``posted_queries``/``worker_assignments``) is metered by the
    platform's post observer, so granted-but-never-posted slots (budget
    exhaustion, outages) stay visible.
    """

    requested: int = 0
    admitted: int = 0
    deferred: int = 0
    shed: int = 0
    backlog: int = 0
    quarantined: int = 0
    posted_queries: int = 0
    worker_assignments: int = 0

    def as_dict(self) -> dict[str, int]:
        return asdict(self)

    def conserved(self) -> bool:
        """Whether this event's books balance (see module docstring)."""
        return self.requested == (
            self.admitted + self.shed + self.backlog + self.quarantined
        )


@dataclass(frozen=True)
class AdmissionDecision:
    """What one event's cycle may do in the current window."""

    event_id: str
    window: int
    granted: int        # the cycle's query cap (new + catch-up)
    admitted_new: int   # portion of this cycle's fresh demand admitted
    served_backlog: int  # catch-up slots drawn from the backlog
    deferred: int       # fresh demand pushed into the backlog
    shed: int           # backlog overflow dropped this admission


@dataclass
class SharedCrowdPool:
    """Meters shared per-window crowd capacity across events.

    Parameters
    ----------
    capacity_per_cycle:
        Query slots the whole crowd can absorb per sensing window across
        *all* events; ``None`` disables metering (every demand admitted),
        which is the single-tenant parity mode.
    policy:
        Admission policy splitting each window's capacity.
    max_backlog:
        Per-event bound on deferred queries; overflow is shed.  ``None``
        defers without bound.
    """

    capacity_per_cycle: int | None = None
    policy: AdmissionPolicy = field(default_factory=FairSharePolicy)
    max_backlog: int | None = None
    window: int = -1
    window_remaining: int = 0
    window_quotas: dict[str, int] = field(default_factory=dict)
    #: The request set the current window's quotas were computed from
    #: (kept so :meth:`release` can re-water-fill freed slots).
    window_requests: list[AdmissionRequest] = field(default_factory=list)
    #: Events that already admitted in the current window.
    window_admitted: list[str] = field(default_factory=list)
    ledgers: dict[str, EventLedger] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity_per_cycle is not None and self.capacity_per_cycle < 0:
            raise ValueError(
                f"capacity_per_cycle must be >= 0, got "
                f"{self.capacity_per_cycle}"
            )
        if self.max_backlog is not None and self.max_backlog < 0:
            raise ValueError(
                f"max_backlog must be >= 0, got {self.max_backlog}"
            )

    @property
    def metered(self) -> bool:
        return self.capacity_per_cycle is not None

    def ledger(self, event_id: str) -> EventLedger:
        """The event's capacity books (created on first touch)."""
        try:
            return self.ledgers[event_id]
        except KeyError:
            led = EventLedger()
            self.ledgers[event_id] = led
            return led

    # -- window lifecycle --------------------------------------------------

    def begin_window(
        self, window: int, requests: list[AdmissionRequest]
    ) -> dict[str, int]:
        """Open sensing window ``window`` and fix its per-event quotas.

        ``requests`` must cover every event that will admit in this
        window, with demand = fresh cycle demand + servable backlog.
        Quotas are computed once, up front, from the full request set —
        admission order within the window then cannot change anyone's
        share, which is what makes the heap interleaving deterministic.
        """
        if window <= self.window:
            raise ValueError(
                f"windows must advance monotonically: {window} after "
                f"{self.window}"
            )
        self.window = window
        self.window_requests = list(requests)
        self.window_admitted = []
        if not self.metered:
            self.window_quotas = {}
            self.window_remaining = 0
            return {}
        self.window_quotas = self.policy.allocate(
            self.capacity_per_cycle, requests
        )
        self.window_remaining = self.capacity_per_cycle
        return dict(self.window_quotas)

    # -- admission ---------------------------------------------------------

    def admit(
        self, event_id: str, demand_new: int, max_servable: int | None = None
    ) -> AdmissionDecision:
        """Meter one event's cycle demand against the current window.

        ``demand_new`` is the fresh demand this sensing cycle generates;
        the event's backlog is appended as catch-up want.  ``max_servable``
        caps the grant at what the cycle's imagery can actually absorb
        (catch-up queries are posed against the newest imagery — in rapid
        damage assessment fresh scenes supersede stale ones).  Fresh
        demand is served before backlog so a saturated event degrades to
        "latest imagery first" rather than starving on its own history.
        """
        if demand_new < 0:
            raise ValueError(f"demand_new must be >= 0, got {demand_new}")
        led = self.ledger(event_id)
        led.requested += demand_new
        if event_id not in self.window_admitted:
            self.window_admitted.append(event_id)
        want = demand_new + led.backlog
        if max_servable is not None:
            want = min(want, max_servable)
        if not self.metered:
            granted = want
        else:
            quota = self.window_quotas.get(event_id, 0)
            granted = min(want, quota, self.window_remaining)
            self.window_quotas[event_id] = quota - granted
            self.window_remaining -= granted
        admitted_new = min(demand_new, granted)
        served_backlog = min(led.backlog, granted - admitted_new)
        deferred_new = demand_new - admitted_new
        led.admitted += granted
        led.deferred += deferred_new
        led.backlog = led.backlog - served_backlog + deferred_new
        shed = 0
        if self.max_backlog is not None and led.backlog > self.max_backlog:
            shed = led.backlog - self.max_backlog
            led.backlog = self.max_backlog
            led.shed += shed
        return AdmissionDecision(
            event_id=event_id,
            window=self.window,
            granted=granted,
            admitted_new=admitted_new,
            served_backlog=served_backlog,
            deferred=deferred_new,
            shed=shed,
        )

    def shed_backlog(self, event_id: str) -> int:
        """Drop an event's remaining backlog (e.g. when it finishes).

        A finished stream can never serve its deferred queries, so they
        are shed to keep the conservation invariant closed.
        """
        led = self.ledger(event_id)
        dropped = led.backlog
        led.shed += dropped
        led.backlog = 0
        return dropped

    def release(
        self, event_id: str, slots: int, requeue: bool = True
    ) -> dict[str, int]:
        """Un-admit ``slots`` the event will not use this window.

        Two callers: the health layer shaving a grant down to a degraded
        batch (``requeue=True`` — the shaved demand goes back to the
        event's backlog, to be served once it recovers), and the
        bulkhead parking a faulted event mid-tick (``requeue=False`` —
        the demand moves to the ``quarantined`` bucket, never to be
        served).  Either way the slots re-enter the *current* window:
        ``window_remaining`` grows back and the freed capacity is
        re-water-filled across the events still waiting to admit in this
        window (returned as ``{event_id: extra_quota}``), so a parked
        event's share is redistributed instead of stranded.
        """
        if slots < 0:
            raise ValueError(f"slots must be >= 0, got {slots}")
        if slots == 0:
            return {}
        led = self.ledger(event_id)
        if slots > led.admitted:
            raise ValueError(
                f"cannot release {slots} slots from {event_id!r}: only "
                f"{led.admitted} were ever admitted"
            )
        led.admitted -= slots
        if requeue:
            led.deferred += slots
            led.backlog += slots
            if self.max_backlog is not None and led.backlog > self.max_backlog:
                overflow = led.backlog - self.max_backlog
                led.backlog = self.max_backlog
                led.shed += overflow
        else:
            led.quarantined += slots
        if not self.metered:
            return {}
        self.window_remaining += slots
        return self._refill(slots, exclude=event_id)

    def _refill(self, slots: int, exclude: str) -> dict[str, int]:
        """Water-fill freed slots over this window's still-waiting events."""
        waiting = []
        for request in self.window_requests:
            if request.event_id == exclude:
                continue
            if request.event_id in self.window_admitted:
                continue
            unmet = request.demand - self.window_quotas.get(
                request.event_id, 0
            )
            if unmet <= 0:
                continue
            waiting.append(
                AdmissionRequest(
                    event_id=request.event_id,
                    demand=unmet,
                    priority=request.priority,
                    cycles_remaining=request.cycles_remaining,
                )
            )
        if not waiting:
            return {}
        extra = self.policy.allocate(slots, waiting)
        granted = {k: v for k, v in extra.items() if v > 0}
        for target, bonus in granted.items():
            self.window_quotas[target] = (
                self.window_quotas.get(target, 0) + bonus
            )
        return granted

    def park(self, event_id: str) -> int:
        """Move an event's waiting backlog into the quarantine bucket.

        Called when the health layer parks the event: its backlog can no
        longer be served, but it was never shed by backpressure either.
        Returns the number of queries parked.
        """
        led = self.ledger(event_id)
        moved = led.backlog
        led.quarantined += moved
        led.backlog = 0
        return moved

    def note_post(self, event_id: str, workers_per_query: int) -> None:
        """Platform post observer hook: meter actual crowd utilization."""
        led = self.ledger(event_id)
        led.posted_queries += 1
        led.worker_assignments += workers_per_query

    # -- invariants & persistence -----------------------------------------

    def conserved(self) -> bool:
        """Whether every event's books balance."""
        return all(led.conserved() for led in self.ledgers.values())

    def totals(self) -> dict[str, int]:
        """Aggregate books across events (JSON-safe)."""
        out = EventLedger()
        for led in self.ledgers.values():
            out.requested += led.requested
            out.admitted += led.admitted
            out.deferred += led.deferred
            out.shed += led.shed
            out.backlog += led.backlog
            out.quarantined += led.quarantined
            out.posted_queries += led.posted_queries
            out.worker_assignments += led.worker_assignments
        return out.as_dict()

    def snapshot(self) -> dict:
        """JSON-safe full state, for the serving layer's journal."""
        return {
            "capacity_per_cycle": self.capacity_per_cycle,
            "policy": self.policy.name,
            "max_backlog": self.max_backlog,
            "window": self.window,
            "window_remaining": self.window_remaining,
            "window_quotas": dict(self.window_quotas),
            "window_requests": [
                asdict(request) for request in self.window_requests
            ],
            "window_admitted": list(self.window_admitted),
            "ledgers": {
                event_id: led.as_dict()
                for event_id, led in sorted(self.ledgers.items())
            },
        }

    @classmethod
    def restore(cls, state: dict) -> "SharedCrowdPool":
        """Rebuild a pool from :meth:`snapshot` output."""
        pool = cls(
            capacity_per_cycle=state["capacity_per_cycle"],
            policy=create_admission_policy(state["policy"]),
            max_backlog=state["max_backlog"],
        )
        pool.window = int(state["window"])
        pool.window_remaining = int(state["window_remaining"])
        pool.window_quotas = {
            k: int(v) for k, v in state["window_quotas"].items()
        }
        pool.window_requests = [
            AdmissionRequest(**fields)
            for fields in state.get("window_requests", [])
        ]
        pool.window_admitted = list(state.get("window_admitted", []))
        pool.ledgers = {
            event_id: EventLedger(**fields)
            for event_id, fields in state["ledgers"].items()
        }
        return pool
