"""Admission policies: how shared crowd capacity splits across events.

Every sensing window the :class:`~repro.serve.pool.SharedCrowdPool`
collects one :class:`AdmissionRequest` per active event and asks a
policy to split the window's query capacity.  Policies are pure
functions of ``(capacity, requests)`` — no RNG, no hidden state — so an
interleaved run's grant sequence is reproducible from the event set
alone.  All ties break on ``event_id`` (lexicographic), never on dict
order or arrival order.

Three policies ship:

- **fair-share** — max-min water-filling: capacity is leveled across
  events so small demands are fully served before any large demand gets
  more than its equal share.
- **priority** — capacity proportional to each event's static priority
  weight (largest-remainder rounding), demand-capped with iterative
  redistribution of the surplus.
- **deadline** — like priority, but the weight is *urgency*: demand per
  remaining sensing cycle, so events about to end drain their backlog
  first.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "AdmissionRequest",
    "AdmissionPolicy",
    "FairSharePolicy",
    "PriorityPolicy",
    "DeadlineAwarePolicy",
    "POLICIES",
    "create_admission_policy",
]


@dataclass(frozen=True)
class AdmissionRequest:
    """One event's demand for the upcoming sensing window.

    ``demand`` already folds in any deferred backlog the event wants to
    catch up on; ``cycles_remaining`` counts sensing cycles until the
    event's stream ends (used by the deadline-aware policy).
    """

    event_id: str
    demand: int
    priority: float = 1.0
    cycles_remaining: int = 1

    def __post_init__(self) -> None:
        if self.demand < 0:
            raise ValueError(f"demand must be >= 0, got {self.demand}")
        if self.priority <= 0:
            raise ValueError(f"priority must be > 0, got {self.priority}")


class AdmissionPolicy:
    """Base policy: split ``capacity`` query slots across ``requests``.

    Subclasses implement :meth:`allocate`, returning a complete
    ``{event_id: quota}`` mapping with ``0 <= quota <= demand`` and
    ``sum(quotas) <= capacity``.  Requests with zero demand always get
    zero.
    """

    name = "base"

    def allocate(
        self, capacity: int, requests: list[AdmissionRequest]
    ) -> dict[str, int]:
        raise NotImplementedError

    @staticmethod
    def _validated(
        capacity: int, requests: list[AdmissionRequest]
    ) -> list[AdmissionRequest]:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        seen: set[str] = set()
        for request in requests:
            if request.event_id in seen:
                raise ValueError(f"duplicate event id {request.event_id!r}")
            seen.add(request.event_id)
        return sorted(requests, key=lambda r: r.event_id)


def _weighted_allocate(
    capacity: int, requests: list[AdmissionRequest], weights: dict[str, float]
) -> dict[str, int]:
    """Demand-capped proportional split with largest-remainder rounding.

    Iterates because capping at demand frees capacity that must be
    re-split across the still-hungry events; each pass strictly shrinks
    the hungry set or exhausts capacity, so it terminates in at most
    ``len(requests)`` passes.
    """
    quotas = {r.event_id: 0 for r in requests}
    hungry = [r for r in requests if r.demand > 0]
    remaining = capacity
    while remaining > 0 and hungry:
        total_weight = sum(weights[r.event_id] for r in hungry)
        if total_weight <= 0:
            # Degenerate weights: fall back to equal shares.
            shares = {r.event_id: 1.0 for r in hungry}
            total_weight = float(len(hungry))
        else:
            shares = {r.event_id: weights[r.event_id] for r in hungry}
        ideal = {
            r.event_id: remaining * shares[r.event_id] / total_weight
            for r in hungry
        }
        granted = 0
        # Integer floor first, then leftovers by largest fractional
        # remainder (ties on event_id for determinism).
        floors = {
            r.event_id: min(int(ideal[r.event_id]),
                            r.demand - quotas[r.event_id])
            for r in hungry
        }
        for r in hungry:
            quotas[r.event_id] += floors[r.event_id]
            granted += floors[r.event_id]
        leftovers = remaining - granted
        if leftovers > 0:
            by_remainder = sorted(
                (r for r in hungry if quotas[r.event_id] < r.demand),
                key=lambda r: (
                    -(ideal[r.event_id] - int(ideal[r.event_id])),
                    r.event_id,
                ),
            )
            for r in by_remainder:
                if leftovers == 0:
                    break
                quotas[r.event_id] += 1
                granted += 1
                leftovers -= 1
        if granted == 0:
            break  # nobody could take more (all demand-capped)
        remaining -= granted
        hungry = [r for r in hungry if quotas[r.event_id] < r.demand]
    return quotas


class FairSharePolicy(AdmissionPolicy):
    """Max-min fairness: water-fill capacity until demands level out."""

    name = "fair-share"

    def allocate(
        self, capacity: int, requests: list[AdmissionRequest]
    ) -> dict[str, int]:
        requests = self._validated(capacity, requests)
        quotas = {r.event_id: 0 for r in requests}
        hungry = [r for r in requests if r.demand > 0]
        remaining = capacity
        while remaining > 0 and hungry:
            share = remaining // len(hungry)
            if share == 0:
                # Fewer slots than events: hand out singles in id order.
                for r in hungry:
                    if remaining == 0:
                        break
                    quotas[r.event_id] += 1
                    remaining -= 1
                break
            for r in hungry:
                take = min(share, r.demand - quotas[r.event_id])
                quotas[r.event_id] += take
                remaining -= take
            hungry = [r for r in hungry if quotas[r.event_id] < r.demand]
        return quotas


class PriorityPolicy(AdmissionPolicy):
    """Capacity proportional to static event priority weights."""

    name = "priority"

    def allocate(
        self, capacity: int, requests: list[AdmissionRequest]
    ) -> dict[str, int]:
        requests = self._validated(capacity, requests)
        weights = {r.event_id: float(r.priority) for r in requests}
        return _weighted_allocate(capacity, requests, weights)


class DeadlineAwarePolicy(AdmissionPolicy):
    """Capacity proportional to urgency: demand per remaining cycle.

    An event one cycle from its stream's end with a deep backlog gets
    weight equal to its whole demand; a long-running event can afford to
    defer.  Static priority still scales the urgency, so two equally
    urgent events split by importance.
    """

    name = "deadline"

    def allocate(
        self, capacity: int, requests: list[AdmissionRequest]
    ) -> dict[str, int]:
        requests = self._validated(capacity, requests)
        weights = {
            r.event_id: (
                float(r.priority)
                * r.demand / max(r.cycles_remaining, 1)
            )
            for r in requests
        }
        return _weighted_allocate(capacity, requests, weights)


#: Name → policy class, the registry behind ``repro serve --policy``.
POLICIES: dict[str, type[AdmissionPolicy]] = {
    FairSharePolicy.name: FairSharePolicy,
    PriorityPolicy.name: PriorityPolicy,
    DeadlineAwarePolicy.name: DeadlineAwarePolicy,
}


def create_admission_policy(name: str) -> AdmissionPolicy:
    """Instantiate a policy by registry name (raises on unknown names)."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown admission policy {name!r}; "
            f"choose from {sorted(POLICIES)}"
        ) from None
