"""Per-event health model and the service's degradation ladder.

The breaker (:mod:`repro.serve.breaker`) is binary — an event either may
tick or may not.  Operations needs more shades than that: an event whose
platform is *flaky* should shrink its crowd footprint before it earns a
quarantine, and a recovering event should climb back gradually rather
than slam straight to full batches.  :class:`EventHealth` layers that
ladder on top of the breaker::

    HEALTHY   ── full query batch (the grant, untouched)
    DEGRADED  ── reduced batch: ceil(grant · degraded_fraction)
    BROWNOUT  ── committee-only: grant forced to 0 (PR 7's zero-grant
                 fallback, now an explicit health state)
    QUARANTINED ─ parked: no ticks at all (breaker open)

Demotion is driven by an EWMA of the per-tick failure signal and is
immediate; promotion requires the EWMA back under a strictly lower
threshold *and* ``readmit_streak`` consecutive clean ticks — the same
hysteresis shape as PR 3's committee quarantine, so one good tick never
re-admits a still-sick event.  A closing breaker re-enters the ladder at
BROWNOUT and must climb rung by rung.

Every number here is derived from tick outcomes and the virtual-time
window counter; there is no wall clock and no RNG, so health state
journals exactly and resumes bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.system import CycleOutcome
from repro.serve.breaker import BreakerPolicy, CircuitBreaker

__all__ = [
    "HEALTH_STATES",
    "HealthPolicy",
    "EventHealth",
    "tick_failed",
]

#: Ladder order, healthiest first.
HEALTH_STATES: tuple[str, ...] = (
    "healthy", "degraded", "brownout", "quarantined",
)

#: Ladder rungs the EWMA moves between while the breaker is closed.
_RUNGS: tuple[str, ...] = ("healthy", "degraded", "brownout")


def tick_failed(outcome: CycleOutcome) -> bool:
    """The breaker's failure signal for one completed sensing cycle.

    A tick fails when the platform misbehaved (outages hit, queries
    dropped after retries, all-late queries) or the model layer had to
    roll a retrain back — exactly the interventions PR 1/3/5 count.
    Committee fallbacks and refunds alone are *not* failures: they are
    the degraded modes working as designed.
    """
    resilience = outcome.resilience
    if resilience is not None and resilience.platform_failures() > 0:
        return True
    guards = outcome.guards
    if guards is not None and guards.rollbacks > 0:
        return True
    return False


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds for the ladder plus the embedded breaker policy.

    ``*_enter`` demotes when the failure EWMA reaches it; the matching
    ``*_exit`` must be strictly lower (hysteresis), and promotion also
    waits for ``readmit_streak`` consecutive clean ticks.
    """

    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    ewma_alpha: float = 0.5
    degraded_enter: float = 0.35
    degraded_exit: float = 0.15
    brownout_enter: float = 0.7
    brownout_exit: float = 0.4
    readmit_streak: int = 2
    degraded_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        for enter, exit_, name in (
            (self.degraded_enter, self.degraded_exit, "degraded"),
            (self.brownout_enter, self.brownout_exit, "brownout"),
        ):
            if not 0.0 < enter <= 1.0:
                raise ValueError(
                    f"{name}_enter must be in (0, 1], got {enter}"
                )
            if not 0.0 <= exit_ < enter:
                raise ValueError(
                    f"{name}_exit must sit below {name}_enter for "
                    f"hysteresis, got {exit_} >= {enter}"
                )
        if self.degraded_enter >= self.brownout_enter:
            raise ValueError(
                "degraded_enter must be below brownout_enter, got "
                f"{self.degraded_enter} >= {self.brownout_enter}"
            )
        if self.readmit_streak < 1:
            raise ValueError(
                f"readmit_streak must be >= 1, got {self.readmit_streak}"
            )
        if not 0.0 < self.degraded_fraction <= 1.0:
            raise ValueError(
                f"degraded_fraction must be in (0, 1], got "
                f"{self.degraded_fraction}"
            )

    def as_dict(self) -> dict:
        """JSON-safe form (manifest round-trip)."""
        return {
            "breaker": self.breaker.as_dict(),
            "ewma_alpha": self.ewma_alpha,
            "degraded_enter": self.degraded_enter,
            "degraded_exit": self.degraded_exit,
            "brownout_enter": self.brownout_enter,
            "brownout_exit": self.brownout_exit,
            "readmit_streak": self.readmit_streak,
            "degraded_fraction": self.degraded_fraction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HealthPolicy":
        """Inverse of :meth:`as_dict` (ignores unknown keys)."""
        names = set(cls.__dataclass_fields__) - {"breaker"}
        kwargs = {k: v for k, v in data.items() if k in names}
        if "breaker" in data:
            kwargs["breaker"] = BreakerPolicy.from_dict(data["breaker"])
        return cls(**kwargs)


class EventHealth:
    """One event's position on the ladder, owning its breaker."""

    def __init__(self, policy: HealthPolicy | None = None) -> None:
        self.policy = policy if policy is not None else HealthPolicy()
        self.breaker = CircuitBreaker(self.policy.breaker)
        self.ewma: float = 0.0
        #: Consecutive clean ticks (promotion currency).
        self.streak: int = 0
        #: Ladder rung while the breaker is closed (index into _RUNGS).
        self.rung: int = 0
        #: Why the event was last quarantined (operator-facing).
        self.quarantine_reason: str | None = None
        #: Lifetime ladder transitions, for telemetry.
        self.transitions_total: int = 0

    # -- the externally visible state --------------------------------------

    @property
    def state(self) -> str:
        """Current ladder state; the breaker always wins."""
        if self.breaker.state == "open":
            return "quarantined"
        if self.breaker.state == "half_open":
            # A probe runs with a degraded-size batch: enough traffic to
            # observe the platform, small enough to bound the blast.
            return "degraded"
        return _RUNGS[self.rung]

    def cap_grant(self, grant: int) -> int:
        """The pool's grant after this event's health cap."""
        state = self.state
        if state == "healthy":
            return grant
        if state == "degraded":
            return self._degraded(grant)
        return 0  # brownout / quarantined post nothing

    def _degraded(self, grant: int) -> int:
        if grant <= 0:
            return 0
        frac = self.policy.degraded_fraction
        return max(1, min(int(grant), math.ceil(grant * frac)))

    def demand_cap(self, want: int) -> int:
        """Cap a *window request* the same way :meth:`cap_grant` caps a
        grant, so brownout events free their share up front.  A
        quarantined event with a probe pending requests a degraded-size
        batch — the probe tick runs half-open, which caps like DEGRADED.
        """
        if (
            self.breaker.state == "open"
            and self.breaker.probe_window() is not None
        ):
            return self._degraded(want)
        return self.cap_grant(want)

    # -- inputs ------------------------------------------------------------

    def observe(self, failure: bool, window: int) -> str:
        """Fold one completed tick into the ladder; returns the new state."""
        before = self.state
        breaker = self.breaker
        # The rate that can trip the breaker includes this tick; compute
        # it up front because opening clears the sliding window.
        tripping = (breaker.outcomes + [1 if failure else 0])[
            -breaker.policy.window:
        ]
        rate = sum(tripping) / len(tripping)
        transition = breaker.record(failure, window)
        self.ewma = (
            self.policy.ewma_alpha * (1.0 if failure else 0.0)
            + (1.0 - self.policy.ewma_alpha) * self.ewma
        )
        self.streak = 0 if failure else self.streak + 1
        if transition == "open":
            self.quarantine_reason = (
                "breaker opened: failure rate "
                f"{rate:.2f} over the sliding window"
                if before != "degraded"
                else "probe tick failed; breaker re-opened"
            )
        elif transition == "closed":
            # Re-enter through brownout and climb by hysteresis.
            self.rung = _RUNGS.index("brownout")
            self.streak = 0
            self.quarantine_reason = None
        elif self.breaker.state == "closed":
            self._move_rung()
        after = self.state
        if after != before:
            self.transitions_total += 1
        return after

    def trip(self, window: int, reason: str) -> str:
        """Bulkhead trip: the tick raised; quarantine immediately.

        Terminal: the cycle never completed, so the event's in-memory
        system may be mid-cycle dirty and re-running it would diverge
        from (or identically repeat) the failure.  The probe budget is
        spent up front — no half-open re-admission — unlike a breaker
        opened by completed-but-failing ticks, which probes after its
        cooldown.
        """
        before = self.state
        self.breaker.force_open(window)
        self.breaker.probe_rounds = self.policy.breaker.max_probe_rounds
        self.ewma = 1.0
        self.streak = 0
        self.quarantine_reason = reason
        if self.state != before:
            self.transitions_total += 1
        return self.state

    def begin_probe(self, window: int) -> bool:
        """Half-open the breaker for a probe tick, if one is due."""
        return self.breaker.try_half_open(window)

    def _move_rung(self) -> None:
        policy = self.policy
        if self.ewma >= policy.brownout_enter:
            worse = _RUNGS.index("brownout")
        elif self.ewma >= policy.degraded_enter:
            worse = _RUNGS.index("degraded")
        else:
            worse = 0
        if worse > self.rung:
            self.rung = worse
            self.streak = 0
            return
        if self.rung == 0 or self.streak < policy.readmit_streak:
            return
        # Promotion: one rung at a time, only past the exit threshold.
        if self.rung == _RUNGS.index("brownout"):
            if self.ewma <= policy.brownout_exit:
                self.rung -= 1
                self.streak = 0
        elif self.rung == _RUNGS.index("degraded"):
            if self.ewma <= policy.degraded_exit:
                self.rung -= 1
                self.streak = 0

    # -- persistence -------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe full state for the serve journal."""
        return {
            "breaker": self.breaker.snapshot(),
            "ewma": self.ewma,
            "streak": self.streak,
            "rung": self.rung,
            "quarantine_reason": self.quarantine_reason,
            "transitions_total": self.transitions_total,
            "state": self.state,  # derived; journaled for operators
        }

    @classmethod
    def restore(
        cls, state: dict, policy: HealthPolicy | None = None
    ) -> "EventHealth":
        """Rebuild bit-for-bit from :meth:`snapshot` output."""
        health = cls(policy)
        health.breaker = CircuitBreaker.restore(state["breaker"])
        health.ewma = float(state["ewma"])
        health.streak = int(state["streak"])
        health.rung = int(state["rung"])
        health.quarantine_reason = state["quarantine_reason"]
        health.transitions_total = int(state["transitions_total"])
        return health
