"""Quickstart: assemble and run CrowdLearn on one synthetic disaster event.

Builds the synthetic Ecuador-earthquake stand-in dataset, trains the
{VGG16, BoVW, DDM} committee, runs the pilot study against the simulated
crowdsourcing platform, and then executes the full closed loop — QSS →
IPD → crowd → CQC → MIC — over a short deployment, printing per-cycle
progress and the final scores.

Run:
    python examples/quickstart.py [--full]

The default is a miniature deployment that finishes in well under a minute;
``--full`` runs the paper's 960-image / 40-cycle configuration (~2 minutes).
"""

import argparse
import time

import numpy as np

from repro.eval.runner import build_crowdlearn, prepare
from repro.metrics import classification_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the paper-scale deployment instead of the fast demo",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    args = parser.parse_args()

    print("Building dataset, committee and pilot study "
          f"({'paper scale' if args.full else 'fast demo'})...")
    started = time.time()
    setup = prepare(seed=args.seed, fast=not args.full)
    print(f"  ready in {time.time() - started:.1f}s: "
          f"{len(setup.train_set)} train / {len(setup.test_set)} test images")

    print("\nCommittee experts on the held-out test set (AI only):")
    for expert in setup.base_committee.experts:
        report = classification_report(
            setup.test_set.labels(), expert.predict(setup.test_set)
        )
        print(f"  {expert.name:6s} {report}")

    print("\nRunning the CrowdLearn closed loop...")
    system = build_crowdlearn(setup)
    stream = setup.make_stream("quickstart")
    outcome_accumulator = []
    for cycle in stream:
        outcome = system.run_cycle(cycle)
        outcome_accumulator.append(outcome)
        queried = len(outcome.query_indices)
        weights = ", ".join(f"{w:.2f}" for w in outcome.expert_weights)
        print(
            f"  cycle {outcome.cycle_index:2d} [{outcome.context.value:9s}] "
            f"queried {queried} images for {outcome.cost_cents:4.0f}c, "
            f"crowd delay {outcome.crowd_delay:6.1f}s, "
            f"expert weights [{weights}]"
        )

    y_true = np.concatenate([o.true_labels for o in outcome_accumulator])
    y_pred = np.concatenate([o.final_labels for o in outcome_accumulator])
    report = classification_report(y_true, y_pred)
    total_cost = sum(o.cost_cents for o in outcome_accumulator)
    print(f"\nCrowdLearn final: {report}")
    print(f"Total crowd spend: {total_cost / 100:.2f} USD "
          f"(budget {system.ledger.total / 100:.2f} USD)")


if __name__ == "__main__":
    main()
