"""Earthquake response scenario: compare all schemes on a streaming event.

Simulates the paper's motivating deployment: imagery from a disaster event
streams in over sensing cycles, and an emergency-response agency must grade
damage severity quickly and accurately.  The example runs CrowdLearn against
every baseline of §V and prints the dispatch-quality comparison (Table II
style), the per-context crowd latency, and a triage report — how many
severe-damage sites each scheme would have missed, which is what actually
costs lives in this application.

Run:
    python examples/earthquake_response.py [--full] [--seed N]
"""

import argparse

import numpy as np

from repro.data.metadata import DamageLabel
from repro.eval.reporting import format_table
from repro.eval.runner import prepare, run_all_schemes
from repro.metrics import classification_report


def triage_stats(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[int, int]:
    """(missed severe sites, false severe alarms) for dispatch triage."""
    severe = int(DamageLabel.SEVERE)
    missed = int(np.sum((y_true == severe) & (y_pred != severe)))
    false_alarms = int(np.sum((y_true != severe) & (y_pred == severe)))
    return missed, false_alarms


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale run")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print("Preparing the earthquake event stream and all schemes...")
    setup = prepare(seed=args.seed, fast=not args.full)
    results = run_all_schemes(setup)

    order = [
        "CrowdLearn", "VGG16", "BoVW", "DDM", "Ensemble",
        "Hybrid-Para", "Hybrid-AL",
    ]
    rows = []
    for name in order:
        result = results[name]
        report = classification_report(result.y_true, result.y_pred)
        missed, false_alarms = triage_stats(result.y_true, result.y_pred)
        delay = result.mean_crowd_delay()
        rows.append(
            [
                name,
                report.accuracy,
                report.f1,
                missed,
                false_alarms,
                "N/A" if delay is None else f"{delay:.0f}s",
            ]
        )
    print()
    print(
        format_table(
            [
                "Scheme", "Accuracy", "F1",
                "Missed severe", "False alarms", "Crowd delay",
            ],
            rows,
            title="Damage assessment quality per scheme",
        )
    )

    print("\nWhy the AI needs the crowd — VGG16's failure report "
          "(the paper's Figure 1, quantified):")
    from repro.eval.diagnostics import diagnose

    vgg = next(e for e in setup.base_committee.experts if e.name == "VGG16")
    report_card = diagnose(vgg, setup.test_set)
    print(report_card.render())
    innate = report_card.innate_failure_archetypes()
    if innate:
        print("Innate (confidently wrong) failure archetypes: "
              + ", ".join(a.value for a in innate))

    crowdlearn = results["CrowdLearn"]
    print("\nCrowd latency by time of day (CrowdLearn's IPD):")
    for context, delay in crowdlearn.crowd_delay_by_context().items():
        print(f"  {context.value:9s} {delay:7.1f}s")
    print(
        f"\nTotal crowd spend: {crowdlearn.cost_cents / 100:.2f} USD for "
        f"{len(crowdlearn.y_true)} assessed images"
    )


if __name__ == "__main__":
    main()
