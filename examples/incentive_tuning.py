"""Incentive tuning: watch the IPD bandit learn the crowd's price of speed.

Reproduces the mechanics behind Figures 5 and 8 interactively: first probes
the black-box platform the way the pilot study does (delay vs incentive per
time of day), then lets three incentive policies — the constrained
contextual bandit (UCB-ALP), a fixed policy, and a random policy — price the
same stream of queries under the same budget, and prints what each policy
learned and paid.

Run:
    python examples/incentive_tuning.py [--budget-usd B] [--seed N]
"""

import argparse
from collections import Counter

import numpy as np

from repro.bandit.budget import BudgetExhausted, BudgetLedger
from repro.bandit.ccmb import UCBALPBandit
from repro.bandit.policies import FixedIncentivePolicy, RandomIncentivePolicy
from repro.core.ipd import IncentivePolicyDesigner
from repro.crowd.delay import INCENTIVE_LEVELS
from repro.eval.reporting import format_series
from repro.eval.runner import prepare
from repro.utils.clock import TemporalContext


def probe_platform(setup) -> None:
    """Print the pilot study's Figure 5 delay surface."""
    table = setup.pilot.delay_table()
    series = {c.value: table[c] for c in TemporalContext.ordered()}
    print(
        format_series(
            "incentive_cents",
            list(setup.pilot.incentive_levels),
            series,
            title="Pilot study: mean crowd delay (s) per incentive and context",
            float_format="{:.0f}",
        )
    )


def run_policy(setup, name, policy, budget_cents, warm_start):
    config = setup.config
    ledger = BudgetLedger(budget_cents)
    ipd = IncentivePolicyDesigner(
        arms=config.incentive_levels,
        ledger=ledger,
        total_queries=max(config.total_queries, 1),
        policy=policy,
        queries_per_context=config.queries_per_context(),
    )
    if warm_start:
        ipd.warm_start(setup.pilot)
    platform = setup.make_platform(f"tuning-{name}")
    stream = setup.make_stream(f"tuning-{name}")
    rng = setup.seeds.get(f"tuning-{name}")
    delays = []
    spends = Counter()
    for cycle in stream:
        dataset = cycle.dataset()
        n = min(config.queries_per_cycle, len(dataset))
        for index in rng.choice(len(dataset), size=n, replace=False):
            arm, incentive = ipd.price_query(cycle.context)
            try:
                result = platform.post_query(
                    dataset[int(index)].metadata, incentive, cycle.context,
                    ledger=ledger,
                )
            except BudgetExhausted:
                break
            ipd.observe(cycle.context, arm, result.mean_delay)
            delays.append(result.mean_delay)
            spends[(cycle.context.value, incentive)] += 1
    return float(np.mean(delays)), ledger.spent, spends, ipd


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget-usd", type=float, default=None)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--full", action="store_true", help="paper-scale run")
    args = parser.parse_args()

    setup = prepare(seed=args.seed, fast=not args.full)
    budget_cents = (
        args.budget_usd * 100.0
        if args.budget_usd is not None
        else setup.config.budget_cents
    )
    probe_platform(setup)

    n_contexts = len(TemporalContext.ordered())
    fixed_level = budget_cents / max(setup.config.total_queries, 1)
    fixed_arm = int(np.argmin([abs(a - fixed_level) for a in INCENTIVE_LEVELS]))
    policies = {
        "UCB-ALP (IPD)": (
            UCBALPBandit(
                n_contexts, INCENTIVE_LEVELS, rng=setup.seeds.get("tuning-ucb")
            ),
            True,
        ),
        "Fixed": (
            FixedIncentivePolicy(n_contexts, INCENTIVE_LEVELS, arm=fixed_arm),
            False,
        ),
        "Random": (
            RandomIncentivePolicy(
                n_contexts, INCENTIVE_LEVELS, setup.seeds.get("tuning-rand")
            ),
            False,
        ),
    }

    print(f"\nPricing {setup.config.total_queries} queries under a "
          f"{budget_cents / 100:.2f} USD budget:\n")
    for name, (policy, warm) in policies.items():
        mean_delay, spent, spends, ipd = run_policy(
            setup, name, policy, budget_cents, warm
        )
        print(f"{name}: mean delay {mean_delay:.1f}s, "
              f"spent {spent / 100:.2f} USD")
        by_context: dict[str, Counter] = {}
        for (context, incentive), count in spends.items():
            by_context.setdefault(context, Counter())[incentive] = count
        for context in TemporalContext.ordered():
            picks = by_context.get(context.value)
            if picks:
                summary = ", ".join(
                    f"{int(level)}c x{count}"
                    for level, count in sorted(picks.items())
                )
                print(f"    {context.value:9s} {summary}")
        print()


if __name__ == "__main__":
    main()
