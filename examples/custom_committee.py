"""Custom committee: plug your own expert model into CrowdLearn.

CrowdLearn treats its experts as black boxes behind the
:class:`repro.models.DDAModel` interface, so swapping in a new classifier is
a ~30-line exercise.  This example implements a gradient-boosted-trees
expert on raw color-histogram features (no deep learning at all), registers
it, forms a committee of {VGG16, GBT} and runs the closed loop — showing
that the QSS/MIC machinery is model-agnostic.

Run:
    python examples/custom_committee.py [--seed N]
"""

import argparse

import numpy as np

from repro.boosting import GradientBoostedClassifier
from repro.core.committee import Committee
from repro.eval.runner import build_crowdlearn, prepare
from repro.metrics import classification_report
from repro.models import DDAModel, register_model, create_model
from repro.vision import color_histogram, joint_color_histogram


class HistogramGBTModel(DDAModel):
    """A DDA expert: gradient-boosted trees over global color statistics."""

    name = "HistGBT"

    def __init__(self, n_estimators: int = 40, max_depth: int = 3) -> None:
        self._classifier = GradientBoostedClassifier(
            n_estimators=n_estimators, max_depth=max_depth, subsample=0.8
        )
        self._fitted = False

    @staticmethod
    def _features(dataset) -> np.ndarray:
        rows = []
        for image in dataset:
            rows.append(
                np.concatenate(
                    [
                        color_histogram(image.pixels, n_bins=8),
                        joint_color_histogram(image.pixels, bins_per_channel=3),
                    ]
                )
            )
        return np.stack(rows)

    def fit(self, dataset, rng):
        self._classifier.fit(self._features(dataset), dataset.labels(), rng=rng)
        self._fitted = True
        return self

    def predict_proba(self, dataset):
        self._check_fitted(self._fitted)
        return self._classifier.predict_proba(self._features(dataset))

    def retrain(self, dataset, labels, rng):
        """GBTs don't fine-tune; refit on the crowd-labeled batch alone.

        MIC always mixes a replay sample of golden training data into the
        retraining batch, so a full refit stays on-distribution.
        """
        self._check_fitted(self._fitted)
        labels = self._check_labels(dataset, labels)
        self._classifier.fit(self._features(dataset), labels, rng=rng)
        return self


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--full", action="store_true", help="paper-scale run")
    args = parser.parse_args()

    register_model("HistGBT", HistogramGBTModel)

    setup = prepare(seed=args.seed, fast=not args.full)

    print("Training a custom committee: {VGG16, HistGBT}...")
    vgg = setup.clone_committee().experts[0]
    hist_gbt = create_model("HistGBT")
    hist_gbt.fit(setup.train_set, setup.seeds.get("hist-gbt"))
    committee = Committee([vgg, hist_gbt])

    print("Expert accuracy on the test set:")
    for expert in committee.experts:
        report = classification_report(
            setup.test_set.labels(), expert.predict(setup.test_set)
        )
        print(f"  {expert.name:8s} {report}")

    system = build_crowdlearn(setup)
    system.committee = committee  # swap the committee into the closed loop
    outcome = system.run(setup.make_stream("custom-committee"))

    report = classification_report(outcome.y_true(), outcome.y_pred())
    print(f"\nCrowdLearn with the custom committee: {report}")
    print("Final expert weights:",
          ", ".join(f"{e.name}={w:.2f}"
                    for e, w in zip(committee.experts, committee.weights)))


if __name__ == "__main__":
    main()
