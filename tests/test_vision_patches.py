"""Tests for repro.vision.patches."""

import numpy as np
import pytest

from repro.vision.patches import (
    dense_patches,
    describe_image_patches,
    patch_descriptor,
)


class TestDensePatches:
    def test_count_and_shape(self, rng):
        patches = dense_patches(rng.random((32, 32)), patch_size=8, stride=4)
        # (32-8)/4+1 = 7 positions per axis.
        assert patches.shape == (49, 8, 8)

    def test_rgb_patches_keep_channels(self, rng):
        patches = dense_patches(rng.random((16, 16, 3)), patch_size=8, stride=8)
        assert patches.shape == (4, 8, 8, 3)

    def test_patch_content_matches_source(self, rng):
        image = rng.random((16, 16))
        patches = dense_patches(image, patch_size=8, stride=8)
        np.testing.assert_array_equal(patches[0], image[:8, :8])
        np.testing.assert_array_equal(patches[3], image[8:, 8:])

    def test_image_smaller_than_patch_raises(self):
        with pytest.raises(ValueError):
            dense_patches(np.zeros((4, 4)), patch_size=8)

    def test_invalid_stride_raises(self):
        with pytest.raises(ValueError):
            dense_patches(np.zeros((16, 16)), patch_size=8, stride=0)


class TestPatchDescriptor:
    def test_length(self, rng):
        desc = patch_descriptor(rng.random((8, 8)), n_bins=8)
        assert desc.shape == (10,)

    def test_histogram_part_normalized(self, rng):
        desc = patch_descriptor(rng.random((8, 8)), n_bins=8)
        assert np.linalg.norm(desc[:8]) <= 1.0 + 1e-6

    def test_flat_patch_zero_histogram(self):
        desc = patch_descriptor(np.full((8, 8), 0.3), n_bins=8)
        np.testing.assert_allclose(desc[:8], 0.0, atol=1e-6)
        assert desc[8] == pytest.approx(0.3)  # mean intensity retained
        assert desc[9] == pytest.approx(0.0)  # zero std

    def test_distinguishes_edge_orientations(self):
        vertical = np.zeros((8, 8))
        vertical[:, 4:] = 1.0
        horizontal = np.zeros((8, 8))
        horizontal[4:, :] = 1.0
        dv = patch_descriptor(vertical)
        dh = patch_descriptor(horizontal)
        assert not np.allclose(dv[:8], dh[:8])

    def test_invalid_bins_raise(self):
        with pytest.raises(ValueError):
            patch_descriptor(np.zeros((8, 8)), n_bins=0)


class TestDescribeImagePatches:
    def test_shape(self, rng):
        descs = describe_image_patches(
            rng.random((32, 32, 3)), patch_size=8, stride=4, n_bins=8
        )
        assert descs.shape == (49, 10)

    def test_deterministic(self, rng):
        image = rng.random((16, 16))
        a = describe_image_patches(image)
        b = describe_image_patches(image)
        np.testing.assert_array_equal(a, b)


class TestDescribePatchesParity:
    """The batched descriptor must reproduce patch_descriptor exactly."""

    def test_matches_scalar_descriptor_gray(self, rng):
        from repro.vision.patches import describe_patches

        patches = dense_patches(rng.random((32, 32)), patch_size=8, stride=4)
        batched = describe_patches(patches)
        expected = np.stack([patch_descriptor(p) for p in patches])
        np.testing.assert_array_equal(batched, expected)

    def test_matches_scalar_descriptor_rgb(self, rng):
        from repro.vision.patches import describe_patches

        patches = dense_patches(
            rng.random((24, 24, 3)), patch_size=8, stride=8
        )
        batched = describe_patches(patches, n_bins=6)
        expected = np.stack([patch_descriptor(p, n_bins=6) for p in patches])
        np.testing.assert_array_equal(batched, expected)

    def test_describe_image_patches_unchanged(self, rng):
        """The public per-image API is the batched path under the hood."""
        image = rng.random((32, 32, 3))
        descriptors = describe_image_patches(image, patch_size=8, stride=4)
        patches = dense_patches(image, patch_size=8, stride=4)
        expected = np.stack([patch_descriptor(p) for p in patches])
        np.testing.assert_array_equal(descriptors, expected)
