"""Tests for repro.truth.filtering."""

import numpy as np
import pytest

from repro.data.metadata import (
    DamageLabel,
    FailureArchetype,
    ImageMetadata,
    SceneType,
)
from repro.truth.filtering import QualityFilter, aggregate_by_filtering
from repro.utils.clock import TemporalContext


def meta(image_id=0, label=DamageLabel.SEVERE):
    return ImageMetadata(
        image_id=image_id,
        true_label=label,
        archetype=FailureArchetype.NONE,
        scene=SceneType.BUILDING,
        is_fake=False,
        people_in_danger=False,
        apparent_label=label,
    )


def grade_worker_history(platform, worker_id, n, n_correct):
    """Inject a synthetic graded history for one worker.

    Goes through ``_record_history`` + ``reveal_ground_truth`` (rather than
    appending pre-graded rows) so the platform's running per-worker
    graded/correct index sees every entry, exactly as live grading would.
    """
    from repro.crowd.platform import WorkerHistoryEntry

    for i in range(n):
        platform._record_history(
            WorkerHistoryEntry(
                worker_id=worker_id,
                query_id=10_000 + i,
                label=0 if i < n_correct else 1,
                correct=None,
            )
        )
        platform.reveal_ground_truth(10_000 + i, 0)


class TestQualityFilter:
    def test_cold_start_not_blacklisted(self, platform):
        filter_ = QualityFilter(platform=platform, min_history=5)
        assert not filter_.is_blacklisted(0)

    def test_poor_history_blacklisted(self, platform):
        grade_worker_history(platform, 7, n=10, n_correct=3)
        filter_ = QualityFilter(platform=platform, min_history=5, min_accuracy=0.7)
        assert filter_.is_blacklisted(7)

    def test_good_history_kept(self, platform):
        grade_worker_history(platform, 8, n=10, n_correct=9)
        filter_ = QualityFilter(platform=platform, min_history=5, min_accuracy=0.7)
        assert not filter_.is_blacklisted(8)

    def test_filtered_vote_drops_bad_workers(self, platform):
        result = platform.post_query(meta(), 8.0, TemporalContext.EVENING)
        # Blacklist every responder except the first; the aggregate must
        # then equal the first responder's label.
        keep = result.responses[0]
        for response in result.responses[1:]:
            grade_worker_history(platform, response.worker_id, n=10, n_correct=0)
        filter_ = QualityFilter(platform=platform)
        assert filter_.aggregate_one(result) == int(keep.label)

    def test_all_blacklisted_falls_back_to_plain_vote(self, platform):
        result = platform.post_query(meta(), 8.0, TemporalContext.EVENING)
        for response in result.responses:
            grade_worker_history(platform, response.worker_id, n=10, n_correct=0)
        filter_ = QualityFilter(platform=platform)
        from repro.truth.voting import majority_vote

        assert filter_.aggregate_one(result) == majority_vote(result)

    def test_aggregate_batch(self, platform):
        results = [
            platform.post_query(meta(i), 8.0, TemporalContext.EVENING)
            for i in range(10)
        ]
        labels = QualityFilter(platform=platform).aggregate(results)
        assert labels.shape == (10,)
        # On honest severe images with a decent pool, most should be right.
        assert np.mean(labels == int(DamageLabel.SEVERE)) > 0.7

    def test_empty_batch_raises(self, platform):
        with pytest.raises(ValueError):
            QualityFilter(platform=platform).aggregate([])

    def test_convenience_wrapper(self, platform):
        results = [
            platform.post_query(meta(i), 8.0, TemporalContext.EVENING)
            for i in range(5)
        ]
        labels = aggregate_by_filtering(results, platform)
        assert labels.shape == (5,)
