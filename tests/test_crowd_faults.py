"""Tests for repro.crowd.faults (chaos-engineering layer)."""

import numpy as np
import pytest

from repro.crowd.delay import DelayModel
from repro.crowd.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    PlatformUnavailable,
)
from repro.crowd.platform import CrowdsourcingPlatform
from repro.crowd.quality import QualityModel
from repro.data.metadata import (
    DamageLabel,
    FailureArchetype,
    ImageMetadata,
    SceneType,
)
from repro.utils.clock import TemporalContext


def meta(image_id=0, label=DamageLabel.SEVERE):
    return ImageMetadata(
        image_id=image_id,
        true_label=label,
        archetype=FailureArchetype.NONE,
        scene=SceneType.BUILDING,
        is_fake=False,
        people_in_danger=False,
        apparent_label=label,
    )


def make_platform(population, seed=0, faults=None):
    return CrowdsourcingPlatform(
        population=population,
        delay_model=DelayModel(),
        quality_model=QualityModel(),
        rng=np.random.default_rng(seed),
        workers_per_query=5,
        faults=faults,
    )


def injector(rng=None, **plan_kwargs):
    return FaultInjector(
        FaultPlan(**plan_kwargs), rng=rng or np.random.default_rng(99)
    )


class TestFaultPlan:
    def test_default_is_noop(self):
        assert FaultPlan().is_noop()

    def test_any_rate_breaks_noop(self):
        assert not FaultPlan(spam_rate=0.1).is_noop()
        assert not FaultPlan(outage_windows=((0, 1),)).is_noop()

    @pytest.mark.parametrize(
        "field", ["abandonment_rate", "spam_rate", "adversarial_rate",
                  "delay_spike_rate", "duplicate_rate", "malformed_rate"],
    )
    def test_rates_validated(self, field):
        with pytest.raises(ValueError):
            FaultPlan(**{field: -0.1})
        with pytest.raises(ValueError):
            FaultPlan(**{field: 1.5})

    def test_spike_factor_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(delay_spike_factor=0.5)

    def test_outage_windows_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(outage_windows=((5, 5),))
        with pytest.raises(ValueError):
            FaultPlan(outage_windows=((-1, 3),))

    def test_scaled_multiplies_and_clips(self):
        plan = FaultPlan(abandonment_rate=0.4, spam_rate=0.8)
        half = plan.scaled(0.5)
        assert half.abandonment_rate == pytest.approx(0.2)
        double = plan.scaled(2.0)
        assert double.spam_rate == 1.0

    def test_scaled_zero_drops_windows(self):
        plan = FaultPlan(abandonment_rate=0.5, outage_windows=((0, 3),))
        assert plan.scaled(0.0).is_noop()
        assert plan.scaled(0.1).outage_windows == ((0, 3),)

    def test_scaled_negative_raises(self):
        with pytest.raises(ValueError):
            FaultPlan().scaled(-1.0)


class TestOutageWindows:
    def test_raises_inside_window_only(self):
        inj = injector(outage_windows=((1, 3),))
        inj.on_post_attempt()  # attempt 0: fine
        with pytest.raises(PlatformUnavailable):
            inj.on_post_attempt()  # attempt 1
        with pytest.raises(PlatformUnavailable):
            inj.on_post_attempt()  # attempt 2
        inj.on_post_attempt()  # attempt 3: window is half-open
        assert inj.counters["outages"] == 2
        assert inj.attempts == 4

    def test_platform_raises_before_charging(self, population):
        from repro.bandit.budget import BudgetLedger

        platform = make_platform(
            population, faults=injector(outage_windows=((0, 1),))
        )
        ledger = BudgetLedger(100.0)
        with pytest.raises(PlatformUnavailable):
            platform.post_query(
                meta(), 8.0, TemporalContext.EVENING, ledger=ledger
            )
        assert ledger.spent == 0.0
        assert platform.n_queries_posted == 0
        # The platform recovers once the window has passed.
        result = platform.post_query(
            meta(), 8.0, TemporalContext.EVENING, ledger=ledger
        )
        assert result.responses
        assert ledger.spent == pytest.approx(8.0)


class TestAbandonment:
    def test_full_abandonment_returns_no_responses(self, population):
        platform = make_platform(population, faults=injector(abandonment_rate=1.0))
        result = platform.post_query(meta(), 8.0, TemporalContext.EVENING)
        assert result.responses == []
        assert platform.history == []
        assert platform.faults.counters["abandonments"] == 5

    def test_zero_rate_draws_nothing(self):
        rng = np.random.default_rng(5)
        before = rng.bit_generator.state
        inj = FaultInjector(FaultPlan(), rng=rng)
        assert not inj.worker_abandons()
        assert rng.bit_generator.state == before


class TestResponseFaults:
    def test_spam_randomizes_label_and_questionnaire(self, population):
        platform = make_platform(population, faults=injector(spam_rate=1.0))
        results = [
            platform.post_query(meta(i), 8.0, TemporalContext.EVENING)
            for i in range(10)
        ]
        labels = {int(r.label) for res in results for r in res.responses}
        assert len(labels) > 1  # uniform noise, not the true label every time
        assert platform.faults.counters["spam"] == sum(
            len(r.responses) for r in results
        )

    def test_adversarial_is_deliberately_wrong(self, population):
        platform = make_platform(
            population, faults=injector(adversarial_rate=1.0)
        )
        result = platform.post_query(meta(), 8.0, TemporalContext.EVENING)
        for response in result.responses:
            assert response.label != DamageLabel.SEVERE
            assert response.questionnaire.says_fake is True  # inverted
            assert response.questionnaire.scene != SceneType.BUILDING

    def test_malformed_unattributable(self, population):
        platform = make_platform(population, faults=injector(malformed_rate=1.0))
        result = platform.post_query(meta(), 8.0, TemporalContext.EVENING)
        assert all(r.worker_id == -1 for r in result.responses)
        # Malformed entries still land in history (under worker_id -1).
        assert all(e.worker_id == -1 for e in platform.history)

    def test_delay_spike_multiplies(self):
        inj = injector(delay_spike_rate=1.0, delay_spike_factor=10.0)
        from repro.crowd.tasks import QuestionnaireAnswers, WorkerResponse

        response = WorkerResponse(
            worker_id=3,
            label=DamageLabel.MODERATE,
            questionnaire=QuestionnaireAnswers(
                says_fake=False, scene=SceneType.ROAD,
                says_people_in_danger=False,
            ),
            delay_seconds=50.0,
        )
        (out,) = inj.transform_response(response, meta())
        assert out.delay_seconds == pytest.approx(500.0)
        assert out.label == DamageLabel.MODERATE  # only the delay changed

    def test_duplicates_double_responses(self, population):
        platform = make_platform(population, faults=injector(duplicate_rate=1.0))
        result = platform.post_query(meta(), 8.0, TemporalContext.EVENING)
        assert len(result.responses) == 10  # 5 workers, each submitted twice
        # ... but history is deduped per (worker, query), so the Filtering
        # baseline sees each worker's submission exactly once.
        assert len(platform.history) == 5
        assert len({(e.worker_id, e.query_id) for e in platform.history}) == 5
        assert platform.faults.counters["duplicates"] == 5

    def test_duplicate_history_dedupe_grades_once(self, population):
        """Regression: a duplicated answer must not double-count in grading."""
        platform = make_platform(population, faults=injector(duplicate_rate=1.0))
        result = platform.post_query(meta(), 8.0, TemporalContext.EVENING)
        truth = int(result.responses[0].label)
        platform.reveal_ground_truth(result.query.query_id, truth)
        for worker_id in set(result.worker_ids()):
            graded, correct = platform.worker_track_record(worker_id)
            assert graded == 1  # one query answered -> one graded entry
            assert correct <= 1

    def test_counters_cover_all_kinds(self):
        inj = injector()
        assert set(inj.counters) == set(FAULT_KINDS)
        assert inj.total_events() == 0


class TestNoopParity:
    def test_noop_injector_is_invisible(self, population):
        """A wired no-op plan leaves the response stream byte-identical."""
        plain = make_platform(population, seed=7)
        wired = make_platform(population, seed=7, faults=injector())
        for i in range(6):
            a = plain.post_query(meta(i), 6.0, TemporalContext.MORNING)
            b = wired.post_query(meta(i), 6.0, TemporalContext.MORNING)
            assert a.responses == b.responses
            assert a.query == b.query
        assert plain.history == wired.history
        assert wired.faults.total_events() == 0
