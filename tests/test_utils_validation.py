"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    as_float_array,
    check_array_shape,
    check_distribution,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestScalarChecks:
    def test_probability_accepts_bounds(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        assert check_probability(0.5) == 0.5

    @pytest.mark.parametrize("bad", [-0.01, 1.01, 2.0])
    def test_probability_rejects(self, bad):
        with pytest.raises(ValueError, match="must be in"):
            check_probability(bad, name="p")

    def test_positive(self):
        assert check_positive(0.1) == 0.1
        with pytest.raises(ValueError):
            check_positive(0.0)
        with pytest.raises(ValueError):
            check_positive(-1.0)

    def test_non_negative(self):
        assert check_non_negative(0.0) == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-1e-9)

    def test_in_range(self):
        assert check_in_range(5, 0, 10) == 5.0
        with pytest.raises(ValueError):
            check_in_range(11, 0, 10)

    def test_error_message_names_argument(self):
        with pytest.raises(ValueError, match="epsilon"):
            check_probability(2.0, name="epsilon")


class TestArrayChecks:
    def test_shape_match(self):
        arr = check_array_shape(np.zeros((3, 4)), (3, 4))
        assert arr.shape == (3, 4)

    def test_shape_wildcard(self):
        check_array_shape(np.zeros((7, 4)), (None, 4))

    def test_shape_rank_mismatch(self):
        with pytest.raises(ValueError, match="dimensions"):
            check_array_shape(np.zeros(3), (3, 1))

    def test_shape_axis_mismatch(self):
        with pytest.raises(ValueError, match="axis 1"):
            check_array_shape(np.zeros((3, 4)), (3, 5))

    def test_distribution_valid(self):
        dist = check_distribution(np.array([0.25, 0.75]))
        assert dist.sum() == pytest.approx(1.0)

    def test_distribution_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            check_distribution(np.array([1.2, -0.2]))

    def test_distribution_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            check_distribution(np.array([0.5, 0.4]))

    def test_distribution_rejects_empty_and_2d(self):
        with pytest.raises(ValueError):
            check_distribution(np.array([]))
        with pytest.raises(ValueError):
            check_distribution(np.ones((2, 2)) / 4)

    def test_as_float_array_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            as_float_array([1.0, np.nan])

    def test_as_float_array_converts(self):
        out = as_float_array([1, 2, 3])
        assert out.dtype == np.float64
