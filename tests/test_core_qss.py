"""Tests for repro.core.qss (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.qss import QuerySetSelector


class TestQuerySetSelector:
    def test_greedy_picks_highest_entropy(self, rng):
        selector = QuerySetSelector(epsilon=0.0)
        entropy = np.array([0.1, 0.9, 0.3, 0.7, 0.5])
        chosen = selector.select(entropy, 2, rng)
        assert set(chosen) == {1, 3}
        # Selection order: highest first.
        assert chosen[0] == 1

    def test_selects_requested_count(self, rng):
        selector = QuerySetSelector(epsilon=0.3)
        entropy = rng.random(20)
        assert selector.select(entropy, 7, rng).shape == (7,)

    def test_no_duplicates(self, rng):
        selector = QuerySetSelector(epsilon=0.5)
        entropy = rng.random(30)
        chosen = selector.select(entropy, 15, rng)
        assert len(set(chosen.tolist())) == 15

    def test_zero_query_size(self, rng):
        selector = QuerySetSelector()
        assert selector.select(np.array([0.5]), 0, rng).size == 0

    def test_full_query_size_selects_all(self, rng):
        selector = QuerySetSelector(epsilon=0.2)
        entropy = rng.random(6)
        chosen = selector.select(entropy, 6, rng)
        assert set(chosen.tolist()) == set(range(6))

    def test_epsilon_zero_never_explores(self, rng):
        selector = QuerySetSelector(epsilon=0.0)
        entropy = np.array([0.0, 0.0, 0.0, 1.0])
        for _ in range(20):
            chosen = selector.select(entropy, 1, rng)
            assert chosen[0] == 3

    def test_epsilon_exploration_catches_confident_samples(self):
        """The design point: ε-greedy occasionally queries low-entropy
        samples, which is how confidently-wrong fakes get caught."""
        selector = QuerySetSelector(epsilon=0.3)
        entropy = np.zeros(10)
        entropy[:5] = 1.0  # five uncertain samples, five confident ones
        rng = np.random.default_rng(0)
        hit_confident = 0
        for _ in range(200):
            chosen = selector.select(entropy, 5, rng)
            if any(i >= 5 for i in chosen):
                hit_confident += 1
        assert hit_confident > 100  # most runs include a confident sample

    def test_exploration_rate_scales_with_epsilon(self):
        entropy = np.concatenate([np.ones(5), np.zeros(5)])

        def confident_rate(epsilon, seed):
            selector = QuerySetSelector(epsilon=epsilon)
            rng = np.random.default_rng(seed)
            count = 0
            for _ in range(300):
                chosen = selector.select(entropy, 3, rng)
                count += sum(1 for i in chosen if i >= 5)
            return count

        assert confident_rate(0.6, 1) > confident_rate(0.1, 1)

    def test_invalid_epsilon_raises(self):
        with pytest.raises(ValueError):
            QuerySetSelector(epsilon=-0.1)
        with pytest.raises(ValueError):
            QuerySetSelector(epsilon=1.1)

    def test_oversized_query_raises(self, rng):
        selector = QuerySetSelector()
        with pytest.raises(ValueError):
            selector.select(np.array([0.5, 0.6]), 3, rng)

    def test_ties_broken_stably_when_greedy(self, rng):
        selector = QuerySetSelector(epsilon=0.0)
        entropy = np.array([0.5, 0.5, 0.5])
        chosen = selector.select(entropy, 3, rng)
        np.testing.assert_array_equal(chosen, [0, 1, 2])
