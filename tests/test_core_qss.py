"""Tests for repro.core.qss (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.qss import QuerySetSelector


class TestQuerySetSelector:
    def test_greedy_picks_highest_entropy(self, rng):
        selector = QuerySetSelector(epsilon=0.0)
        entropy = np.array([0.1, 0.9, 0.3, 0.7, 0.5])
        chosen = selector.select(entropy, 2, rng)
        assert set(chosen) == {1, 3}
        # Selection order: highest first.
        assert chosen[0] == 1

    def test_selects_requested_count(self, rng):
        selector = QuerySetSelector(epsilon=0.3)
        entropy = rng.random(20)
        assert selector.select(entropy, 7, rng).shape == (7,)

    def test_no_duplicates(self, rng):
        selector = QuerySetSelector(epsilon=0.5)
        entropy = rng.random(30)
        chosen = selector.select(entropy, 15, rng)
        assert len(set(chosen.tolist())) == 15

    def test_zero_query_size(self, rng):
        selector = QuerySetSelector()
        assert selector.select(np.array([0.5]), 0, rng).size == 0

    def test_full_query_size_selects_all(self, rng):
        selector = QuerySetSelector(epsilon=0.2)
        entropy = rng.random(6)
        chosen = selector.select(entropy, 6, rng)
        assert set(chosen.tolist()) == set(range(6))

    def test_epsilon_zero_never_explores(self, rng):
        selector = QuerySetSelector(epsilon=0.0)
        entropy = np.array([0.0, 0.0, 0.0, 1.0])
        for _ in range(20):
            chosen = selector.select(entropy, 1, rng)
            assert chosen[0] == 3

    def test_epsilon_exploration_catches_confident_samples(self):
        """The design point: ε-greedy occasionally queries low-entropy
        samples, which is how confidently-wrong fakes get caught."""
        selector = QuerySetSelector(epsilon=0.3)
        entropy = np.zeros(10)
        entropy[:5] = 1.0  # five uncertain samples, five confident ones
        rng = np.random.default_rng(0)
        hit_confident = 0
        for _ in range(200):
            chosen = selector.select(entropy, 5, rng)
            if any(i >= 5 for i in chosen):
                hit_confident += 1
        assert hit_confident > 100  # most runs include a confident sample

    def test_exploration_rate_scales_with_epsilon(self):
        entropy = np.concatenate([np.ones(5), np.zeros(5)])

        def confident_rate(epsilon, seed):
            selector = QuerySetSelector(epsilon=epsilon)
            rng = np.random.default_rng(seed)
            count = 0
            for _ in range(300):
                chosen = selector.select(entropy, 3, rng)
                count += sum(1 for i in chosen if i >= 5)
            return count

        assert confident_rate(0.6, 1) > confident_rate(0.1, 1)

    def test_invalid_epsilon_raises(self):
        with pytest.raises(ValueError):
            QuerySetSelector(epsilon=-0.1)
        with pytest.raises(ValueError):
            QuerySetSelector(epsilon=1.1)

    def test_oversized_query_raises(self, rng):
        selector = QuerySetSelector()
        with pytest.raises(ValueError):
            selector.select(np.array([0.5, 0.6]), 3, rng)

    def test_ties_broken_stably_when_greedy(self, rng):
        selector = QuerySetSelector(epsilon=0.0)
        entropy = np.array([0.5, 0.5, 0.5])
        chosen = selector.select(entropy, 3, rng)
        np.testing.assert_array_equal(chosen, [0, 1, 2])


def _reference_select(entropy, query_size, epsilon, rng):
    """The original O(n^2) list.pop implementation, kept as the oracle."""
    if query_size == 0:
        return np.empty(0, dtype=np.int64)
    remaining = list(np.argsort(-entropy, kind="stable"))
    selected = []
    for _ in range(query_size):
        if rng.random() < epsilon and len(remaining) > 1:
            pick = int(rng.integers(len(remaining)))
        else:
            pick = 0
        selected.append(int(remaining.pop(pick)))
    return np.array(selected, dtype=np.int64)


class TestIndexMaskParity:
    """The index-mask rewrite must replay the pop-based RNG draw sequence.

    Bit-identical selection is what makes the vectorization invisible to
    seeded deployments: same entropy, same seed, same query set — for any
    epsilon, including the always-explore and never-explore extremes.
    """

    @pytest.mark.parametrize("epsilon", [0.0, 0.2, 0.5, 1.0])
    def test_matches_reference_across_trials(self, epsilon):
        selector = QuerySetSelector(epsilon=epsilon)
        for trial in range(50):
            trial_rng = np.random.default_rng(1000 + trial)
            n = int(trial_rng.integers(1, 40))
            query_size = int(trial_rng.integers(0, n + 1))
            entropy = trial_rng.random(n)
            got = selector.select(
                entropy, query_size, np.random.default_rng(trial)
            )
            expected = _reference_select(
                entropy, query_size, epsilon, np.random.default_rng(trial)
            )
            np.testing.assert_array_equal(got, expected)

    def test_rng_state_advances_identically(self, rng):
        """Later draws from the same generator must be unaffected."""
        entropy = np.random.default_rng(5).random(25)
        a, b = np.random.default_rng(9), np.random.default_rng(9)
        QuerySetSelector(epsilon=0.4).select(entropy, 10, a)
        _reference_select(entropy, 10, 0.4, b)
        assert a.random() == b.random()

    def test_duplicate_entropies_resolved_stably(self, rng):
        """Ties keep argsort's stable order, exactly as the pop loop did."""
        entropy = np.array([0.5, 0.5, 0.5, 0.9, 0.5])
        chosen = QuerySetSelector(epsilon=0.0).select(entropy, 5, rng)
        np.testing.assert_array_equal(chosen, [3, 0, 1, 2, 4])
