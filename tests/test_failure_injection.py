"""Failure injection: the system must degrade gracefully, never crash.

Hostile conditions exercised here: a crowd of coin-flipping workers, a
single worker per query, starvation budgets, empty query sets, and experts
that error out mid-committee.
"""

import numpy as np
import pytest

from repro.bandit.budget import BudgetLedger
from repro.core.cqc import CrowdQualityControl
from repro.crowd.delay import DelayModel
from repro.crowd.platform import CrowdsourcingPlatform
from repro.crowd.population import WorkerPopulation
from repro.crowd.quality import QualityModel
from repro.crowd.worker import Worker
from repro.truth.tdem import TruthDiscoveryEM
from repro.truth.voting import aggregate_by_voting
from repro.utils.clock import TemporalContext


def hostile_population(n=20):
    """Workers with chance-level reliability and zero insight."""
    population = WorkerPopulation.__new__(WorkerPopulation)
    population.workers = [
        Worker(
            worker_id=i,
            reliability=0.34,
            insight=0.0,
            speed=1.0,
            activity={c: 1.0 for c in TemporalContext},
        )
        for i in range(n)
    ]
    return population


def make_platform(population, rng, workers_per_query=5):
    return CrowdsourcingPlatform(
        population=population,
        delay_model=DelayModel(),
        quality_model=QualityModel(),
        rng=rng,
        workers_per_query=workers_per_query,
    )


class TestHostileCrowd:
    def test_aggregators_survive_chance_workers(self, small_dataset, rng):
        platform = make_platform(hostile_population(), rng)
        results = []
        truths = []
        for image in small_dataset.images[:30]:
            results.append(
                platform.post_query(image.metadata, 8.0, TemporalContext.EVENING)
            )
            truths.append(int(image.true_label))
        truths = np.array(truths)
        voted = aggregate_by_voting(results)
        em = TruthDiscoveryEM().aggregate(results)
        # No crash, valid labels; accuracy unconstrained (workers are noise).
        assert set(voted.tolist()) <= {0, 1, 2}
        assert set(em.tolist()) <= {0, 1, 2}

    def test_cqc_trained_on_noise_still_predicts(self, small_dataset, rng):
        platform = make_platform(hostile_population(), rng)
        results = []
        truths = []
        for image in small_dataset.images[:40]:
            results.append(
                platform.post_query(image.metadata, 8.0, TemporalContext.MORNING)
            )
            truths.append(int(image.true_label))
        cqc = CrowdQualityControl().fit(results, np.array(truths), rng=rng)
        predictions = cqc.truthful_labels(results)
        assert predictions.shape == (40,)


class TestSingleWorkerQueries:
    def test_voting_with_one_worker(self, population, rng):
        platform = make_platform(population, rng, workers_per_query=1)
        image = None
        from repro.data.dataset import build_dataset

        dataset = build_dataset(n_images=10, rng=rng)
        results = [
            platform.post_query(img.metadata, 8.0, TemporalContext.EVENING)
            for img in dataset
        ]
        labels = aggregate_by_voting(results)
        assert labels.shape == (10,)
        del image

    def test_tdem_with_one_worker_per_query(self, population, rng):
        from repro.data.dataset import build_dataset

        platform = make_platform(population, rng, workers_per_query=1)
        dataset = build_dataset(n_images=15, rng=rng)
        results = [
            platform.post_query(img.metadata, 8.0, TemporalContext.EVENING)
            for img in dataset
        ]
        labels = TruthDiscoveryEM().aggregate(results)
        assert labels.shape == (15,)


class TestStarvationBudget:
    def test_ledger_never_goes_negative(self, population, rng):
        from repro.data.dataset import build_dataset
        from repro.bandit.budget import BudgetExhausted

        platform = make_platform(population, rng)
        ledger = BudgetLedger(5.0)
        dataset = build_dataset(n_images=10, rng=rng)
        posted = 0
        for image in dataset:
            try:
                platform.post_query(
                    image.metadata, 2.0, TemporalContext.EVENING, ledger=ledger
                )
                posted += 1
            except BudgetExhausted:
                break
        assert posted == 2
        assert ledger.remaining >= 0


class TestBrokenExpert:
    def test_committee_propagates_expert_errors(self, small_dataset, rng):
        from repro.core.committee import Committee
        from repro.models.base import DDAModel

        class BrokenExpert(DDAModel):
            name = "broken"

            def fit(self, dataset, rng):
                return self

            def predict_proba(self, dataset):
                raise RuntimeError("expert exploded")

            def retrain(self, dataset, labels, rng):
                return self

        committee = Committee([BrokenExpert()])
        with pytest.raises(RuntimeError, match="exploded"):
            committee.expert_votes(small_dataset)


class TestDegenerateConfig:
    def test_one_image_per_cycle(self, rng):
        from repro.core.config import CrowdLearnConfig
        from repro.eval.runner import build_crowdlearn, prepare

        config = CrowdLearnConfig(
            n_cycles=4,
            images_per_cycle=1,
            cycles_per_context=1,
            query_fraction=1.0,
            budget_usd=1.0,
            pilot_queries_per_cell=2,
            n_workers=10,
            mic_replay_size=2,
        )
        setup = prepare(seed=2, config=config, n_images=60, n_train=40)
        system = build_crowdlearn(setup)
        outcome = system.run(setup.make_stream("degenerate"))
        assert outcome.y_pred().shape == (4,)
