"""Tests for repro.crowd.delay — the Figure 5 calibration."""

import numpy as np
import pytest

from repro.crowd.delay import INCENTIVE_LEVELS, DelayModel
from repro.utils.clock import TemporalContext


@pytest.fixture
def model():
    return DelayModel()


class TestMeanDelay:
    def test_morning_monotone_decreasing(self, model):
        delays = [
            model.mean_delay(TemporalContext.MORNING, level)
            for level in INCENTIVE_LEVELS
        ]
        assert all(a > b for a, b in zip(delays, delays[1:]))

    def test_afternoon_monotone_decreasing(self, model):
        delays = [
            model.mean_delay(TemporalContext.AFTERNOON, level)
            for level in INCENTIVE_LEVELS
        ]
        assert all(a > b for a, b in zip(delays, delays[1:]))

    def test_evening_flat_midrange(self, model):
        """Fig 5: at night only the extremes differ; 2c-10c are similar."""
        mid = [
            model.mean_delay(TemporalContext.EVENING, level)
            for level in (2.0, 4.0, 6.0, 8.0, 10.0)
        ]
        assert max(mid) - min(mid) < 0.1 * np.mean(mid)

    def test_evening_extremes(self, model):
        lowest = model.mean_delay(TemporalContext.EVENING, 1.0)
        mid = model.mean_delay(TemporalContext.EVENING, 6.0)
        highest = model.mean_delay(TemporalContext.EVENING, 20.0)
        assert lowest > 1.5 * mid
        assert highest < mid

    def test_daytime_slower_than_night_at_midrange(self, model):
        """Workers are scarcer during the day (the pilot's explanation)."""
        for level in (4.0, 6.0, 8.0):
            assert model.mean_delay(TemporalContext.MORNING, level) > (
                model.mean_delay(TemporalContext.EVENING, level)
            )

    def test_interpolates_between_levels(self, model):
        d4 = model.mean_delay(TemporalContext.MORNING, 4.0)
        d6 = model.mean_delay(TemporalContext.MORNING, 6.0)
        d5 = model.mean_delay(TemporalContext.MORNING, 5.0)
        assert d6 < d5 < d4

    def test_clamps_outside_range(self, model):
        below = model.mean_delay(TemporalContext.MORNING, 0.5)
        at_min = model.mean_delay(TemporalContext.MORNING, 1.0)
        assert below == pytest.approx(at_min)
        above = model.mean_delay(TemporalContext.MORNING, 50.0)
        at_max = model.mean_delay(TemporalContext.MORNING, 20.0)
        assert above == pytest.approx(at_max)

    def test_nonpositive_incentive_raises(self, model):
        with pytest.raises(ValueError):
            model.mean_delay(TemporalContext.MORNING, 0.0)


class TestSample:
    def test_sample_mean_matches(self, model, rng):
        samples = [
            model.sample(TemporalContext.EVENING, 8.0, rng) for _ in range(4000)
        ]
        expected = model.mean_delay(TemporalContext.EVENING, 8.0)
        assert np.mean(samples) == pytest.approx(expected, rel=0.05)

    def test_worker_speed_scales(self, model, rng):
        slow = [
            model.sample(TemporalContext.EVENING, 8.0, rng, worker_speed=0.5)
            for _ in range(2000)
        ]
        fast = [
            model.sample(TemporalContext.EVENING, 8.0, rng, worker_speed=2.0)
            for _ in range(2000)
        ]
        assert np.mean(slow) > 3 * np.mean(fast)

    def test_samples_positive(self, model, rng):
        samples = [
            model.sample(TemporalContext.MIDNIGHT, 1.0, rng) for _ in range(100)
        ]
        assert min(samples) > 0

    def test_zero_noise_is_deterministic(self, rng):
        model = DelayModel(noise_sigma=0.0)
        a = model.sample(TemporalContext.MORNING, 4.0, rng)
        assert a == pytest.approx(model.mean_delay(TemporalContext.MORNING, 4.0))

    def test_invalid_speed_raises(self, model, rng):
        with pytest.raises(ValueError):
            model.sample(TemporalContext.MORNING, 4.0, rng, worker_speed=0.0)

    def test_invalid_sigma_raises(self):
        with pytest.raises(ValueError):
            DelayModel(noise_sigma=-0.1)
