"""Tests for repro.bandit.regret."""

import numpy as np
import pytest

from repro.bandit.ccmb import UCBALPBandit
from repro.bandit.regret import RegretTracker


class TestRecording:
    def test_record_and_len(self):
        tracker = RegretTracker(2, 3)
        tracker.record(0, 1, -0.5)
        tracker.record(1, 2, -1.0)
        assert len(tracker) == 2

    def test_out_of_range_raises(self):
        tracker = RegretTracker(2, 3)
        with pytest.raises(IndexError):
            tracker.record(2, 0, 0.0)
        with pytest.raises(IndexError):
            tracker.record(0, 3, 0.0)

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            RegretTracker(0, 3)


class TestMeanMatrix:
    def test_means_and_nans(self):
        tracker = RegretTracker(2, 2)
        tracker.record(0, 0, -1.0)
        tracker.record(0, 0, -3.0)
        means = tracker.mean_payoff_matrix()
        assert means[0, 0] == pytest.approx(-2.0)
        assert np.isnan(means[0, 1])
        assert np.isnan(means[1, 0])

    def test_best_arm_per_context(self):
        tracker = RegretTracker(2, 2)
        tracker.record(0, 0, -1.0)
        tracker.record(0, 1, -0.2)
        best = tracker.best_arm_per_context()
        assert best[0] == 1
        assert best[1] == -1  # context 1 never pulled


class TestRegret:
    def test_always_best_arm_zero_regret(self):
        tracker = RegretTracker(1, 2)
        for _ in range(10):
            tracker.record(0, 0, -1.0)
        assert tracker.total_regret() == pytest.approx(0.0)

    def test_suboptimal_pulls_accumulate(self):
        tracker = RegretTracker(1, 2)
        for _ in range(5):
            tracker.record(0, 0, -1.0)  # bad arm
        for _ in range(5):
            tracker.record(0, 1, -0.2)  # good arm
        # Each bad pull regrets 0.8 relative to the best arm's mean.
        assert tracker.total_regret() == pytest.approx(5 * 0.8)

    def test_cumulative_is_nondecreasing_for_stationary_noiseless(self):
        tracker = RegretTracker(1, 3)
        rng = np.random.default_rng(0)
        for _ in range(50):
            arm = int(rng.integers(3))
            tracker.record(0, arm, [-1.0, -0.5, -0.1][arm])
        cumulative = tracker.cumulative_regret()
        assert np.all(np.diff(cumulative) >= -1e-12)

    def test_empty_history(self):
        tracker = RegretTracker(1, 1)
        assert tracker.cumulative_regret().size == 0
        assert tracker.total_regret() == 0.0
        assert not tracker.is_sublinear()


class TestConvergence:
    def test_ucb_bandit_has_sublinear_regret(self):
        """The UCB-ALP learner converges: late regret slope < early slope."""
        rng = np.random.default_rng(1)
        true_means = np.array([[-1.2, -0.6, -0.2], [-0.3, -0.9, -1.4]])
        bandit = UCBALPBandit(2, (1.0, 2.0, 4.0), exploration=0.6)
        tracker = RegretTracker(2, 3)
        for t in range(800):
            context = t % 2
            arm = bandit.select(context, None)
            payoff = float(true_means[context, arm] + rng.normal(0, 0.05))
            bandit.update(context, arm, payoff)
            tracker.record(context, arm, payoff)
        assert tracker.is_sublinear()
        # And it found the per-context best arms.
        np.testing.assert_array_equal(tracker.best_arm_per_context(), [2, 0])

    def test_window_fraction_validated(self):
        tracker = RegretTracker(1, 1)
        with pytest.raises(ValueError):
            tracker.is_sublinear(window_fraction=0.9)
